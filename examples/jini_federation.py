#!/usr/bin/env python
"""Jini services in the semantic space: leases, crash detection, bridging.

Demonstrates the extensibility claim of Section 3.2 in action: Jini is not
on the paper's supported-platform list, but adding it took exactly one new
mapper (plus the Jini platform simulation itself).  A Jini chat service
joins a lookup service under a lease; the Jini mapper bridges it; a
Bluetooth mouse on a *different* platform drives it through the common
space; and when the service crashes, its lease lapses and the translator
disappears.

Run:  python examples/jini_federation.py
"""

from repro.bridges import BluetoothMapper, JiniMapper
from repro.core import Query, Translator, UMessage
from repro.platforms.bluetooth import HidMouse, Piconet
from repro.platforms.jini import JiniLookupService, JoinManager
from repro.platforms.rmi import RmiExporter
from repro.testbed import build_testbed


class ClickToData(Translator):
    """Adapter: pointer clicks become octet-stream datagrams."""

    def __init__(self):
        super().__init__("click-to-data", role="adapter")
        self.add_digital_input(
            "clicks-in", "application/x-umiddle-click", self._on_click
        )
        self.out = self.add_digital_output("data-out", "application/octet-stream")
        self._count = 0

    def _on_click(self, message: UMessage) -> None:
        self._count += 1
        self.out.send(
            UMessage(
                "application/octet-stream", f"click #{self._count}", 64
            )
        )


def main():
    bed = build_testbed(hosts=["hub-host", "jini-host"])
    runtime = bed.add_runtime("hub-host")

    # The native Jini world: a lookup service plus a chat service that
    # records whatever it receives.
    lookup = JiniLookupService(bed.hosts["jini-host"], bed.calibration,
                               default_lease_s=10.0)
    received = []
    exporter = RmiExporter(bed.hosts["jini-host"], bed.calibration)
    ref = exporter.export({"receive": lambda args, size: received.append(args)})

    def join(kernel):
        manager = JoinManager(
            bed.hosts["jini-host"], bed.calibration, lookup.address, lookup.port,
            interface="chat.Wall", ref=ref, attributes={"name": "chat-wall"},
        )
        yield from manager.join()
        return manager

    manager = bed.run(join(bed.kernel))

    # The Bluetooth world: a mouse.
    piconet = Piconet(bed.network, bed.calibration)
    mouse = HidMouse(piconet, bed.calibration, name="clicker")

    # uMiddle bridges both.
    runtime.add_mapper(JiniMapper(runtime, poll_interval=2.0))
    runtime.add_mapper(BluetoothMapper(runtime, piconet))
    bed.settle(10.0)

    print("semantic space:",
          sorted(f"{p.name} ({p.platform})" for p in runtime.lookup(Query())))

    adapter = ClickToData()
    runtime.register_translator(adapter)
    mouse_translator = runtime.translators[
        runtime.lookup(Query(role="pointer"))[0].translator_id
    ]
    chat_translator = runtime.translators[
        runtime.lookup(Query(platform="jini"))[0].translator_id
    ]
    runtime.connect(
        mouse_translator.output_port("clicks"), adapter.input_port("clicks-in")
    )
    runtime.connect(adapter.out, chat_translator.input_port("data-in"))

    for _ in range(3):
        mouse.click()
        bed.settle(0.5)
    bed.settle(2.0)
    print(f"chat wall received {len(received)} message(s): {received}")

    # Crash the Jini service: its lease lapses and the translator goes away.
    manager.crash()
    bed.settle(20.0)
    remaining = [p.name for p in runtime.lookup(Query(platform="jini"))]
    print(f"after the service crashed (lease lapsed): jini translators = "
          f"{remaining}")

    assert received == ["click #1", "click #2", "click #3"]
    assert remaining == []
    print("\njini_federation OK: Bluetooth clicks drove a Jini service; "
          "lease expiry unmapped the crashed service")


if __name__ == "__main__":
    main()
