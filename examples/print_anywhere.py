#!/usr/bin/env python
"""Print anywhere: selecting devices by physical affordance (Section 3.3).

The paper's Service Shaping example: "If a user wishes to view a document
in one way or another, the application can select a device with an input
port of the document's MIME-type and physical output port of 'visible/*'.
If the user wants to print it, the application specifies 'visible/paper'."

We put a UPnP MediaRenderer TV (visible/screen) and a Bluetooth BIP photo
printer (visible/paper) in the same space and show that the two queries
select different devices for the same image -- the roles are expressed
purely through shapes, never through device-type names.

Run:  python examples/print_anywhere.py
"""

from repro.bridges import BluetoothMapper, UPnPMapper
from repro.core import Query, Translator, UMessage
from repro.platforms.bluetooth import BipPrinter, Piconet
from repro.platforms.upnp import make_media_renderer
from repro.testbed import build_testbed


def main():
    bed = build_testbed(hosts=["hub-host", "tv-host"])
    runtime = bed.add_runtime("hub-host")

    tv = make_media_renderer(bed.hosts["tv-host"], bed.calibration, "Office TV")
    tv.start()
    piconet = Piconet(bed.network, bed.calibration)
    printer = BipPrinter(piconet, bed.calibration, name="photo-printer")

    runtime.add_mapper(UPnPMapper(runtime))
    runtime.add_mapper(BluetoothMapper(runtime, piconet))
    bed.settle(4.0)

    # The user's document, held by a native uMiddle service.
    holder = Translator("document-holder", role="application")
    out = holder.add_digital_output("doc-out", "image/jpeg")
    runtime.register_translator(holder)

    view_query = Query(input_mime="image/jpeg", physical_output="visible/*")
    print_query = Query(input_mime="image/jpeg", physical_output="visible/paper")

    viewers = [p.name for p in runtime.lookup(view_query)]
    printers = [p.name for p in runtime.lookup(print_query)]
    print(f"devices that can VIEW the image (visible/*):     {sorted(viewers)}")
    print(f"devices that can PRINT the image (visible/paper): {printers}")

    # "View it": the template matches both; "print it": only the printer.
    assert set(viewers) == {"Office TV", "photo-printer"}
    assert printers == ["photo-printer"]

    # The user prints: one template-based connection, one send.
    binding = runtime.connect_query(out, print_query)
    bed.settle(0.5)
    out.send(UMessage("image/jpeg", "<jpeg vacation.jpg>", 56_000))
    bed.settle(6.0)  # radio transfer + print time

    print(f"printer produced {len(printer.printed)} page(s): "
          f"{[p['name'] for p in printer.printed]}")
    assert len(printer.printed) == 1
    assert tv.rendered == []  # viewing devices untouched by the print query
    binding.close()
    print("\nprint_anywhere OK: 'visible/paper' selected the printer, "
          "'visible/*' would select both")


if __name__ == "__main__":
    main()
