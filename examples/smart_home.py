#!/usr/bin/env python
"""Smart home: Pads-style virtual cabling across four platforms.

An event/control-oriented scenario in the spirit of Section 4.1: a
Bluetooth HIDP mouse works as a universal remote -- its clicks toggle a
UPnP light -- while a Berkeley mote's temperature readings drive a web
service logger, and the UPnP clock's chime is wired to the air conditioner.
All wiring happens on the Pads canvas: the application knows nothing about
SOAP, HID reports or active messages.

Run:  python examples/smart_home.py
"""

from repro.apps.pads import Pads
from repro.bridges import (
    BluetoothMapper,
    MotesMapper,
    UPnPMapper,
    WebServicesMapper,
)
from repro.core import Query, Translator, UMessage
from repro.platforms.bluetooth import HidMouse, Piconet
from repro.platforms.motes import BaseStation, Mote, sine_sensor
from repro.platforms.motes.mote import make_radio
from repro.platforms.upnp import make_binary_light
from repro.platforms.webservices import Operation, WebService
from repro.testbed import build_testbed


class ClickToSwitch(Translator):
    """A tiny native uMiddle service: turns pointer clicks into switch
    triggers (odd clicks -> on port, even clicks -> off port)."""

    def __init__(self):
        super().__init__("click-to-switch", role="adapter")
        self._count = 0
        self.add_digital_input(
            "clicks-in", "application/x-umiddle-click", self._on_click
        )
        self.on_out = self.add_digital_output(
            "switch-on", "application/x-umiddle-switch"
        )
        self.off_out = self.add_digital_output(
            "switch-off", "application/x-umiddle-switch"
        )

    def _on_click(self, message: UMessage) -> None:
        self._count += 1
        port = self.on_out if self._count % 2 else self.off_out
        port.send(UMessage("application/x-umiddle-switch", None, 8))


class SensorToInvoke(Translator):
    """Adapts sensor readings into web-service invocations."""

    def __init__(self):
        super().__init__("sensor-logger-adapter", role="adapter")
        self.add_digital_input(
            "readings-in", "application/x-umiddle-sensor", self._on_reading
        )
        self.out = self.add_digital_output(
            "invoke-out", "application/x-umiddle-invoke"
        )

    def _on_reading(self, message: UMessage) -> None:
        self.out.send(
            UMessage(
                "application/x-umiddle-invoke",
                {"sensor": message.payload["sensor"], "value": message.payload["value"]},
                48,
            )
        )


def main():
    bed = build_testbed(hosts=["hub-host", "device-host", "ws-host"])
    runtime = bed.add_runtime("hub-host")

    # Native platforms.
    light = make_binary_light(bed.hosts["device-host"], bed.calibration, "Hall Light")
    light.start()

    piconet = Piconet(bed.network, bed.calibration)
    mouse = HidMouse(piconet, bed.calibration, name="remote-mouse")

    radio = make_radio(bed.network, bed.calibration)
    station = BaseStation(bed.hosts["hub-host"], radio, bed.calibration)
    mote = Mote(
        radio,
        bed.calibration,
        {"temperature": sine_sensor(mean=22, amplitude=3, period_s=120)},
        sample_interval_s=5.0,
    )
    mote.attach_to(station.radio_address)

    log = []
    logger = WebService(bed.hosts["ws-host"], bed.calibration, "house-log")
    logger.add_operation(
        Operation("Record", ["sensor", "value"], ["ok"]),
        lambda params: (log.append(dict(params)) or {"ok": "1"}, 8),
    )

    # Mappers: one per platform.
    runtime.add_mapper(UPnPMapper(runtime))
    runtime.add_mapper(BluetoothMapper(runtime, piconet))
    runtime.add_mapper(MotesMapper(runtime, station))
    ws_mapper = WebServicesMapper(runtime)
    ws_mapper.add_endpoint(bed.hosts["ws-host"].address, logger.port)
    runtime.add_mapper(ws_mapper)

    # Native uMiddle adapter services (the "native uMiddle devices" of
    # Figure 8).
    click_adapter = ClickToSwitch()
    sensor_adapter = SensorToInvoke()
    runtime.register_translator(click_adapter)
    runtime.register_translator(sensor_adapter)

    bed.settle(8.0)

    # Virtual cabling on the Pads canvas.
    pads = Pads(runtime)
    print("Pads canvas:")
    print(pads.render_ascii())

    pads.wire("remote-mouse", "click-to-switch")
    pads.wire("click-to-switch", "Hall Light", source_port="switch-on",
              destination_port="power-on")
    pads.wire("click-to-switch", "Hall Light", source_port="switch-off",
              destination_port="power-off")
    pads.wire(f"mote-{mote.mote_id}", "sensor-logger-adapter")
    pads.wire("sensor-logger-adapter", "house-log")
    print(f"\nwired {len(pads.wires)} virtual cables")

    # Use the remote: click toggles the light on, click again -> off.
    mouse.click()
    bed.settle(2.0)
    state_after_first = light.get_state("SwitchPower", "Status")
    mouse.click()
    bed.settle(2.0)
    state_after_second = light.get_state("SwitchPower", "Status")
    print(f"\nlight after first click: {state_after_first!r} "
          f"(on), after second: {state_after_second!r} (off)")

    # Let the mote log a few readings through the web service.
    bed.settle(20.0)
    print(f"house-log received {len(log)} reading(s); last: {log[-1]}")

    assert state_after_first == "1" and state_after_second == "0"
    assert len(log) >= 3
    print("\nsmart_home OK: 4 platforms, one canvas, zero platform code "
          "in the app")


if __name__ == "__main__":
    main()
