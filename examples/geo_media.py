#!/usr/bin/env python
"""G2 UI: geographic media composition (Section 4.2).

Gadgets -- a Bluetooth camera (capture), a UPnP MediaRenderer TV (player)
and a MediaBroker storage stream (storage) -- are registered at coordinates
of a floor plan.  Dragging the camera into the living room triggers
*geoplay* (its photos show on the TV); dragging it to the studio triggers
*geostore* (photos are archived through MediaBroker).

Run:  python examples/geo_media.py
"""

from repro.apps.g2ui import CAPTURE, G2Space, PLAYER, Region, STORAGE
from repro.bridges import BluetoothMapper, MediaBrokerMapper, UPnPMapper
from repro.core import Query
from repro.platforms.bluetooth import BipCamera, Piconet
from repro.platforms.mediabroker import Broker, MBConsumer
from repro.platforms.upnp import make_media_renderer
from repro.testbed import build_testbed


def main():
    bed = build_testbed(hosts=["hub-host", "tv-host", "mb-host"])
    runtime = bed.add_runtime("hub-host")

    # Native devices on three platforms.
    piconet = Piconet(bed.network, bed.calibration)
    camera = BipCamera(piconet, bed.calibration, name="field-camera")

    tv = make_media_renderer(bed.hosts["tv-host"], bed.calibration, "LivingRoom TV")
    tv.start()

    Broker(bed.hosts["mb-host"], bed.calibration)
    archived = []

    def start_archive(kernel):
        # A native MB service that stores whatever is published to it: it
        # subscribes to the return stream of the bridged "archive" stream.
        from repro.platforms.mediabroker import MBProducer

        producer = MBProducer(
            bed.hosts["mb-host"], bed.calibration, bed.hosts["mb-host"].address,
            "archive", "image/jpeg",
        )
        yield from producer.register()
        consumer = MBConsumer(
            bed.hosts["mb-host"], bed.calibration, bed.hosts["mb-host"].address,
            "archive.return",
        )
        yield from consumer.subscribe(
            lambda payload, size, mtype: archived.append((payload, size))
        )

    bed.run(start_archive(bed.kernel))

    runtime.add_mapper(BluetoothMapper(runtime, piconet))
    runtime.add_mapper(UPnPMapper(runtime))
    runtime.add_mapper(MediaBrokerMapper(runtime, bed.hosts["mb-host"].address))
    bed.settle(5.0)

    # The floor plan.
    space = G2Space(runtime)
    living_room = space.add_region(Region("living-room", 0, 0, 10, 10))
    studio = space.add_region(Region("studio", 20, 0, 30, 10))

    camera_profile = runtime.lookup(Query(role="camera"))[0]
    tv_profile = runtime.lookup(Query(role="display"))[0]
    archive_profile = runtime.lookup(Query(platform="mediabroker"))[0]

    space.register(tv_profile, PLAYER, 5, 5)          # TV in the living room
    space.register(archive_profile, STORAGE, 25, 5)   # archive in the studio
    space.register(camera_profile, CAPTURE, 50, 50)   # camera: nowhere yet
    print("gadgets registered; no co-location yet:",
          space.active_connections)

    # Walk into the living room: geoplay.
    space.move(camera_profile.translator_id, 4, 4)
    print("camera moved to the living room ->",
          [f"{e.kind} in {e.region}" for e in space.events])
    camera.take_photo(32_000)
    bed.settle(4.0)
    print(f"TV now shows {len(tv.rendered)} photo(s)")

    # Walk to the studio: the TV path is torn down, geostore kicks in.
    space.move(camera_profile.translator_id, 24, 4)
    print("camera moved to the studio ->",
          [f"{e.kind} in {e.region}" for e in space.events])
    camera.take_photo(32_000)
    bed.settle(4.0)
    print(f"archive holds {len(archived)} photo(s); TV still shows "
          f"{len(tv.rendered)}")

    assert len(tv.rendered) == 1
    assert len(archived) == 1
    print("\ngeo_media OK: co-location drove geoplay then geostore across "
          "three platforms")


if __name__ == "__main__":
    main()
