#!/usr/bin/env python
"""Federated campus: mappers distributed across rooms (Section 3.6).

The paper: "If it is used to cover a larger area, such as a house or a
university campus, mappers can be located in different rooms based on the
specifics of the environment.  In a room where only Bluetooth devices are
used, an intermediary translation node would be configured with the
Bluetooth mapper.  In another room ... an intermediary node would host
mappers for those various platforms.  These intermediary nodes communicate
with one another through the directory and transport modules."

Topology: two room LANs joined by a campus router.  The Bluetooth room has
a camera; the media room has a UPnP TV.  Multicast discovery is
link-local, so the rooms federate their directories explicitly; the
application runs in the media room and uses the remote camera as if it
were local.

Run:  python examples/federated_campus.py
"""

from repro.bridges import BluetoothMapper, UPnPMapper
from repro.calibration import DEFAULT
from repro.core import Query, UMiddleRuntime
from repro.platforms.bluetooth import BipCamera, Piconet
from repro.platforms.upnp import make_media_renderer
from repro.simnet import Kernel, Network


def main():
    calibration = DEFAULT
    kernel = Kernel()
    network = Network(kernel)
    network_costs = calibration.network

    def room_lan(name):
        return network.add_hub(
            name,
            bandwidth_bps=network_costs.ethernet_bandwidth_bps,
            latency_s=network_costs.ethernet_latency_s,
            frame_overhead_bytes=network_costs.ethernet_frame_overhead_bytes,
        )

    bt_room = room_lan("bt-room-lan")
    media_room = room_lan("media-room-lan")
    router = network.add_node("campus-router", forwards=True)
    router.attach(bt_room)
    router.attach(media_room)

    # Bluetooth room: an intermediary node with only the Bluetooth mapper.
    bt_host = network.add_node("bt-room-host")
    bt_host.attach(bt_room)
    bt_runtime = UMiddleRuntime(bt_host, name="rt-bt-room")
    piconet = Piconet(network, calibration)
    camera = BipCamera(piconet, calibration, name="lab-camera")
    bt_runtime.add_mapper(BluetoothMapper(bt_runtime, piconet))

    # Media room: an intermediary node with the UPnP mapper, plus the TV.
    media_host = network.add_node("media-room-host")
    media_host.attach(media_room)
    media_runtime = UMiddleRuntime(media_host, name="rt-media-room")
    tv_host = network.add_node("tv-host")
    tv_host.attach(media_room)
    tv = make_media_renderer(tv_host, calibration, "Lecture Hall TV")
    tv.start()
    media_runtime.add_mapper(UPnPMapper(media_runtime))

    kernel.run(until=kernel.now + 3.0)

    # Before federation the rooms are isolated islands.
    assert not media_runtime.lookup(Query(role="camera"))
    print("before federation: media room sees",
          [p.name for p in media_runtime.lookup(Query())])

    # Federate the rooms (multicast does not cross the router).
    media_runtime.federate(bt_runtime)
    kernel.run(until=kernel.now + 3.0)
    print("after federation:  media room sees",
          [p.name for p in media_runtime.lookup(Query())])

    # The media-room application composes the remote camera with the TV.
    camera_profile = media_runtime.lookup(Query(role="camera"))[0]
    tv_profile = media_runtime.lookup(Query(role="display"))[0]
    media_runtime.connect(
        camera_profile.port_ref("image-out"), tv_profile.port_ref("image-in")
    )
    kernel.run(until=kernel.now + 1.0)

    camera.take_photo(size=40_000)
    kernel.run(until=kernel.now + 6.0)
    print(f"TV rendered {len(tv.rendered)} photo(s) from the remote room")

    # Federation is soft state: if the Bluetooth room's runtime dies, its
    # translators age out of the media room's directory.
    bt_runtime.shutdown()
    kernel.run(until=kernel.now + 20.0)
    remaining = [p.name for p in media_runtime.lookup(Query(role="camera"))]
    print(f"after bt-room shutdown, cameras visible: {remaining}")

    assert len(tv.rendered) == 1
    assert remaining == []
    print("\nfederated_campus OK: cross-room bridging via explicit "
          "directory federation")


if __name__ == "__main__":
    main()
