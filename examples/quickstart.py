#!/usr/bin/env python
"""Quickstart: bridge a Bluetooth camera to a UPnP TV with uMiddle.

This is the paper's running example (Figure 5): a Bluetooth BIP digital
camera and a UPnP MediaRenderer TV, which cannot talk to each other
natively, are bridged through the intermediary semantic space.  A
platform-independent application then wires them with one template-based
connection request: "send the camera's images to anything that accepts
image/jpeg and shows it (visible/*)".

Run:  python examples/quickstart.py
"""

from repro.bridges import BluetoothMapper, UPnPMapper
from repro.core import Query
from repro.platforms.bluetooth import BipCamera, Piconet
from repro.platforms.upnp import make_media_renderer
from repro.testbed import build_testbed


def main():
    # -- the environment: two uMiddle hosts on a LAN, one TV, one camera --
    bed = build_testbed(hosts=["bt-host", "upnp-host", "tv-host"])
    bt_runtime = bed.add_runtime("bt-host")
    upnp_runtime = bed.add_runtime("upnp-host")

    piconet = Piconet(bed.network, bed.calibration)
    camera = BipCamera(piconet, bed.calibration, name="holiday-camera")

    tv = make_media_renderer(bed.hosts["tv-host"], bed.calibration, "LivingRoom TV")
    tv.start()

    # -- the bridging infrastructure: one mapper per platform --
    bt_runtime.add_mapper(BluetoothMapper(bt_runtime, piconet))
    upnp_runtime.add_mapper(UPnPMapper(upnp_runtime))

    # Let discovery and directory gossip converge.
    bed.settle(3.0)

    print("Translators in the intermediary semantic space:")
    for profile in bt_runtime.lookup(Query()):
        ports = ", ".join(spec.describe() for spec in profile.shape)
        print(f"  [{profile.platform:>9}] {profile.name}: {ports}")

    # -- the application: platform-independent composition --
    camera_profile = bt_runtime.lookup(Query(role="camera"))[0]
    camera_translator = bt_runtime.translators[camera_profile.translator_id]

    binding = bt_runtime.connect_query(
        camera_translator.output_port("image-out"),
        Query(input_mime="image/jpeg", physical_output="visible/*"),
    )
    bed.settle(0.5)
    print(f"\nDynamic binding bound to: {binding.bound_translators}")

    # -- use it: take photos; they appear on the TV --
    for _ in range(3):
        name = camera.take_photo(size=48_000)
        print(f"  camera took {name}")
        bed.settle(3.0)

    print(f"\nTV rendered {len(tv.rendered)} item(s):")
    for item in tv.rendered:
        print(f"  showing: {item['data']} ({item['content_type']})")

    assert len(tv.rendered) == 3, "expected all three photos on the TV"
    print("\nquickstart OK: Bluetooth camera -> uMiddle -> UPnP TV")


if __name__ == "__main__":
    main()
