"""uMiddle Pads: cross-platform virtual cabling (Section 4.1).

Pads is the paper's GUI application generator: it (1) visualizes the
intermediary semantic space as a canvas of translator icons, (2) lets the
user hot-wire devices by drawing lines between icons, and (3) backs each
line with an end-to-end uMiddle connection.  This is the headless model of
that application: the canvas is a data structure, ``wire`` is the
line-drawing gesture, and everything underneath uses only the public
directory/transport APIs -- so "application development is as low as
drawing lines on a GUI".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.directory import DirectoryListener
from repro.core.errors import UMiddleError
from repro.core.profile import PortRef, TranslatorProfile
from repro.core.qos import QosPolicy
from repro.core.query import Query
from repro.core.runtime import UMiddleRuntime

__all__ = ["PadsError", "Icon", "Wire", "Pads"]


class PadsError(UMiddleError):
    """Bad wiring gestures (unknown icons, incompatible ports...)."""


@dataclass
class Icon:
    """One translator's representation on the canvas."""

    profile: TranslatorProfile
    position: Tuple[float, float] = (0.0, 0.0)

    @property
    def label(self) -> str:
        return self.profile.name

    @property
    def translator_id(self) -> str:
        return self.profile.translator_id


@dataclass
class Wire:
    """One drawn connection, backed by a live message path."""

    source: PortRef
    destination: PortRef
    path: object = field(repr=False, default=None)

    def close(self) -> None:
        if self.path is not None:
            self.path.close()


class Pads(DirectoryListener):
    """The Pads canvas bound to one uMiddle runtime."""

    def __init__(self, runtime: UMiddleRuntime):
        self.runtime = runtime
        self.icons: Dict[str, Icon] = {}
        self.wires: List[Wire] = []
        runtime.add_directory_listener(self)
        # Populate with everything already in the semantic space.
        for profile in runtime.lookup(Query()):
            self.translator_added(profile)

    # -- canvas maintenance (DirectoryListener) --------------------------------

    def translator_added(self, profile: TranslatorProfile) -> None:
        index = len(self.icons)
        self.icons[profile.translator_id] = Icon(
            profile=profile,
            position=(40.0 + 90.0 * (index % 8), 40.0 + 90.0 * (index // 8)),
        )

    def translator_removed(self, profile: TranslatorProfile) -> None:
        self.icons.pop(profile.translator_id, None)
        for wire in [
            w
            for w in self.wires
            if profile.translator_id
            in (w.source.translator_id, w.destination.translator_id)
        ]:
            wire.close()
            self.wires.remove(wire)

    # -- inspection -----------------------------------------------------------------

    def icon(self, label: str) -> Icon:
        """Find an icon by its (unique) label."""
        matches = [icon for icon in self.icons.values() if icon.label == label]
        if not matches:
            raise PadsError(f"no icon labelled {label!r} on the canvas")
        if len(matches) > 1:
            raise PadsError(f"ambiguous label {label!r}: {len(matches)} icons")
        return matches[0]

    def labels(self) -> List[str]:
        return sorted(icon.label for icon in self.icons.values())

    def compatible_pairs(
        self, source_label: str, destination_label: str
    ) -> List[Tuple[str, str]]:
        """Port-name pairs through which source could feed destination."""
        source = self.icon(source_label).profile.shape
        destination = self.icon(destination_label).profile.shape
        return [
            (out_spec.name, in_spec.name)
            for out_spec, in_spec in source.flows_to(destination)
        ]

    # -- the hot-wiring gesture ----------------------------------------------------------

    def wire(
        self,
        source_label: str,
        destination_label: str,
        source_port: Optional[str] = None,
        destination_port: Optional[str] = None,
        qos: Optional[QosPolicy] = None,
    ) -> Wire:
        """Draw a line between two icons.

        Without explicit port names, Pads picks the first type-compatible
        (output, input) pair -- the user just connects devices; types make
        the gesture valid or not, exactly as in the paper's GUI.
        """
        source_icon = self.icon(source_label)
        destination_icon = self.icon(destination_label)
        if source_port is None or destination_port is None:
            pairs = source_icon.profile.shape.flows_to(destination_icon.profile.shape)
            if not pairs:
                raise PadsError(
                    f"{source_label!r} has no output type-compatible with "
                    f"{destination_label!r}"
                )
            picked_out, picked_in = pairs[0]
            source_port = source_port or picked_out.name
            destination_port = destination_port or picked_in.name
        source_ref = source_icon.profile.port_ref(source_port)
        destination_ref = destination_icon.profile.port_ref(destination_port)
        path = self.runtime.connect(source_ref, destination_ref, qos=qos)
        wire = Wire(source=source_ref, destination=destination_ref, path=path)
        self.wires.append(wire)
        return wire

    def unwire(self, wire: Wire) -> None:
        if wire in self.wires:
            wire.close()
            self.wires.remove(wire)

    def clear_wires(self) -> None:
        for wire in list(self.wires):
            self.unwire(wire)

    def render_ascii(self) -> str:
        """A textual 'screenshot' of the canvas (Figure 8, headlessly)."""
        lines = ["uMiddle Pads -- intermediary semantic space"]
        for icon in sorted(self.icons.values(), key=lambda i: i.label):
            ports = ", ".join(spec.describe() for spec in icon.profile.shape)
            lines.append(f"  [{icon.label}] ({icon.profile.platform}) {ports}")
        lines.append(f"  wires: {len(self.wires)}")
        for wire in self.wires:
            lines.append(f"    {wire.source} --> {wire.destination}")
        return "\n".join(lines)
