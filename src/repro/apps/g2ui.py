"""G2 UI: the Geographical User Interface (Section 4.2).

G2 UI registers gadgets -- media storage, player and capture devices -- at
regions of a geographic coordinate system.  Co-location of devices inside
one region triggers:

- **geoplay**: media from co-located storage/capture devices plays on the
  co-located player(s);
- **geostore**: a co-located storage device records data produced by a
  co-located capture device.

Because G2 UI is built entirely on the common semantic space (shape-based
queries plus dynamic message paths), the paper's example "co-locate a
Bluetooth digital camera and a UPnP MediaRenderer TV and the images in the
camera serve as the source for the TV" works across platforms unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import UMiddleError
from repro.core.profile import TranslatorProfile
from repro.core.query import Query
from repro.core.runtime import UMiddleRuntime

__all__ = ["G2Error", "Region", "Gadget", "GeoEvent", "G2Space"]


class G2Error(UMiddleError):
    """Bad gadget registrations or region definitions."""


@dataclass(frozen=True)
class Region:
    """An axis-aligned region of the coordinate space."""

    name: str
    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def contains(self, x: float, y: float) -> bool:
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max


#: The roles G2 UI distinguishes (Section 4.2's gadget kinds).
CAPTURE = "capture"
PLAYER = "player"
STORAGE = "storage"
KINDS = (CAPTURE, PLAYER, STORAGE)


@dataclass
class Gadget:
    """One registered device with a location."""

    profile: TranslatorProfile
    kind: str
    x: float
    y: float

    def __post_init__(self):
        if self.kind not in KINDS:
            raise G2Error(f"unknown gadget kind {self.kind!r} (expected {KINDS})")

    @property
    def translator_id(self) -> str:
        return self.profile.translator_id


@dataclass(frozen=True)
class GeoEvent:
    """A geoplay or geostore activation, for inspection by tests/apps."""

    kind: str               # "geoplay" | "geostore"
    region: str
    source_id: str
    sink_id: str


class G2Space:
    """The coordinate space, gadget registry and co-location engine."""

    def __init__(self, runtime: UMiddleRuntime):
        self.runtime = runtime
        self.regions: List[Region] = []
        self.gadgets: Dict[str, Gadget] = {}
        #: (source_id, sink_id) -> path, the live geo connections
        self._paths: Dict[Tuple[str, str], object] = {}
        self.events: List[GeoEvent] = []

    # -- setup -----------------------------------------------------------------

    def add_region(self, region: Region) -> Region:
        self.regions.append(region)
        return region

    def register(
        self, profile: TranslatorProfile, kind: str, x: float, y: float
    ) -> Gadget:
        """Register a device at coordinates; re-evaluates co-location."""
        gadget = Gadget(profile=profile, kind=kind, x=x, y=y)
        self.gadgets[profile.translator_id] = gadget
        self._evaluate()
        return gadget

    def move(self, translator_id: str, x: float, y: float) -> None:
        """Relocate a gadget (the user dragging it on the atlas)."""
        gadget = self.gadgets.get(translator_id)
        if gadget is None:
            raise G2Error(f"unknown gadget {translator_id!r}")
        gadget.x, gadget.y = x, y
        self._evaluate()

    def unregister(self, translator_id: str) -> None:
        self.gadgets.pop(translator_id, None)
        self._evaluate()

    # -- co-location engine ----------------------------------------------------------

    def region_of(self, gadget: Gadget) -> Optional[Region]:
        for region in self.regions:
            if region.contains(gadget.x, gadget.y):
                return region
        return None

    def co_located(self, region: Region) -> List[Gadget]:
        return [g for g in self.gadgets.values() if self.region_of(g) is region]

    def _evaluate(self) -> None:
        """Recompute the wanted geo connections and diff against the live set."""
        wanted: Dict[Tuple[str, str], Tuple[str, Region]] = {}
        for region in self.regions:
            members = self.co_located(region)
            sources = [g for g in members if g.kind == CAPTURE]
            players = [g for g in members if g.kind == PLAYER]
            storages = [g for g in members if g.kind == STORAGE]
            # geoplay: capture/storage media -> players
            for player in players:
                for source in sources + storages:
                    if self._flow(source, player):
                        wanted[(source.translator_id, player.translator_id)] = (
                            "geoplay",
                            region,
                        )
            # geostore: capture -> storage
            for storage in storages:
                for source in sources:
                    if self._flow(source, storage):
                        wanted[(source.translator_id, storage.translator_id)] = (
                            "geostore",
                            region,
                        )

        # Tear down paths no longer wanted.
        for key in list(self._paths):
            if key not in wanted:
                self._paths.pop(key).close()
        # Establish newly wanted paths.
        for key, (kind, region) in wanted.items():
            if key in self._paths:
                continue
            path = self._connect(*key)
            if path is not None:
                self._paths[key] = path
                self.events.append(
                    GeoEvent(
                        kind=kind, region=region.name, source_id=key[0], sink_id=key[1]
                    )
                )

    @staticmethod
    def _flow(source: Gadget, sink: Gadget) -> bool:
        return source.profile.shape.can_send_to(sink.profile.shape)

    def _connect(self, source_id: str, sink_id: str):
        source = self.gadgets[source_id].profile
        sink = self.gadgets[sink_id].profile
        pairs = source.shape.flows_to(sink.shape)
        if not pairs:
            return None
        out_spec, in_spec = pairs[0]
        return self.runtime.connect(
            source.port_ref(out_spec.name), sink.port_ref(in_spec.name)
        )

    # -- inspection -------------------------------------------------------------------

    @property
    def active_connections(self) -> List[Tuple[str, str]]:
        return sorted(self._paths)

    def render_ascii(self) -> str:
        """A textual 'atlas' of the coordinate space (Figure 9, headlessly)."""
        lines = ["G2 UI -- geographic atlas"]
        for region in self.regions:
            members = self.co_located(region)
            lines.append(
                f"  [{region.name}] ({region.x_min},{region.y_min})-"
                f"({region.x_max},{region.y_max}): "
                + (", ".join(
                    f"{g.profile.name}({g.kind}@{g.x:g},{g.y:g})" for g in members
                ) or "empty")
            )
        homeless = [
            g for g in self.gadgets.values() if self.region_of(g) is None
        ]
        if homeless:
            lines.append(
                "  (outside all regions): "
                + ", ".join(f"{g.profile.name}@{g.x:g},{g.y:g}" for g in homeless)
            )
        lines.append(f"  active geo connections: {len(self._paths)}")
        for kind, region, source, sink in (
            (e.kind, e.region, e.source_id, e.sink_id) for e in self.events
        ):
            lines.append(f"    {kind} in {region}: {source} -> {sink}")
        return "\n".join(lines)

    def auto_register(self, kind_by_role: Optional[Dict[str, str]] = None) -> int:
        """Register every translator in the space whose role maps to a
        gadget kind, placing them at the origin (the application moves them
        later).  Returns how many gadgets were added."""
        kind_by_role = kind_by_role or {
            "camera": CAPTURE,
            "display": PLAYER,
            "storage": STORAGE,
            "media-stream": STORAGE,
        }
        added = 0
        for profile in self.runtime.lookup(Query()):
            kind = kind_by_role.get(profile.role)
            if kind is None or profile.translator_id in self.gadgets:
                continue
            self.register(profile, kind, 0.0, 0.0)
            added += 1
        return added
