"""The paper's applications, built on the uMiddle public API.

- :mod:`repro.apps.pads` -- uMiddle Pads (Section 4.1): a GUI-less model of
  the visual "virtual cabling" application generator.
- :mod:`repro.apps.g2ui` -- G2 UI (Section 4.2): the geographical user
  interface with geoplay/geostore triggered by device co-location.
"""

from repro.apps.pads import Pads, PadsError, Wire
from repro.apps.g2ui import G2Space, Gadget, GeoEvent, Region

__all__ = ["Pads", "PadsError", "Wire", "G2Space", "Region", "Gadget", "GeoEvent"]
