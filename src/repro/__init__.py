"""uMiddle reproduction: a bridging framework for universal interoperability.

This package reproduces the system described in "A Bridging Framework for
Universal Interoperability in Pervasive Systems" (ICDCS 2006).  It contains:

- :mod:`repro.simnet` -- a discrete-event simulation kernel and network
  substrate standing in for the paper's physical testbed.
- :mod:`repro.platforms` -- simulated native middleware platforms (UPnP,
  Bluetooth, Java RMI, MediaBroker, Berkeley Motes, web services).
- :mod:`repro.core` -- the uMiddle middleware itself: shapes, ports,
  translators, mappers, USDL, directory, transport and dynamic binding.
- :mod:`repro.bridges` -- the per-platform mappers and translators.
- :mod:`repro.apps` -- the paper's two applications (Pads and G2 UI).
- :mod:`repro.designspace` -- the Section 2 design-space model (Table 1).

See DESIGN.md for the full system inventory and EXPERIMENTS.md for
paper-versus-measured results for every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
