"""Calibration constants for the simulated testbed.

The paper's numbers were measured on three IBM ThinkPad T42p laptops
(Pentium M 2.0 GHz) connected by a 10 Mbps Ethernet hub, with real Bluetooth
hardware (BlueZ) and the CyberLink UPnP stack.  Our substrate is a
discrete-event simulation, so every per-operation cost that the real testbed
incurred implicitly must be modelled explicitly here.

Each constant states what it models and, where applicable, which paper
number it was calibrated against.  Benchmarks are expected to reproduce the
paper's *shape* -- orderings, ratios and crossovers -- not the absolute
milliseconds; EXPERIMENTS.md records paper-versus-measured values.

The constants live in one module (rather than scattered through the stacks)
so that the ablation benchmarks can perturb them and show which costs each
result is sensitive to.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "NetworkCosts",
    "UPnPCosts",
    "BluetoothCosts",
    "RmiCosts",
    "MediaBrokerCosts",
    "MoteCosts",
    "UMiddleCosts",
    "Calibration",
    "DEFAULT",
]


@dataclass(frozen=True)
class NetworkCosts:
    """Ethernet-hub and TCP/UDP cost model (Section 5 testbed)."""

    #: Shared 10 Mbps hub, as in the paper's testbed.
    ethernet_bandwidth_bps: float = 10_000_000.0
    #: One-way propagation + hub forwarding latency.
    ethernet_latency_s: float = 0.000_05
    #: Per-frame layer-2 overhead: preamble 8 + MAC header 14 + FCS 4 +
    #: inter-frame gap 12 bytes.
    ethernet_frame_overhead_bytes: int = 38
    #: TCP/IP header bytes per segment.
    tcp_header_bytes: int = 40
    #: UDP/IP header bytes per datagram.
    udp_header_bytes: int = 28
    #: Maximum transmission unit (payload + transport headers).
    mtu_bytes: int = 1500
    #: Host-side per-segment processing (interrupts, checksums, socket
    #: copies, and the ack-clocking stall of a real TCP on a half-duplex
    #: hub) on a 2.0 GHz Pentium M.  This is the sender-side bottleneck:
    #: calibrated so a 1400-byte-message TCP stream achieves ~7.9 Mbps on
    #: the 10 Mbps hub (Figure 11 baseline).
    tcp_segment_processing_s: float = 0.001_42
    #: Host-side per-datagram processing.
    udp_datagram_processing_s: float = 0.000_060
    #: TCP connection establishment handshake cost beyond the RTT.
    tcp_handshake_processing_s: float = 0.000_200


@dataclass(frozen=True)
class UPnPCosts:
    """CyberLink-like UPnP stack costs (Sections 5.1 and 5.2)."""

    #: SSDP advertisement/response interval jitter bound (seconds).
    ssdp_response_delay_s: float = 0.020
    #: HTTP GET round trip to fetch a device description, excluding wire
    #: time (server-side generation of the description document).
    description_generation_s: float = 0.060
    #: XML parse cost per description element (device/service/action/state
    #: variable) in the control point / mapper.
    xml_parse_per_element_s: float = 0.004
    #: SOAP request marshaling (build + serialize the action envelope).
    soap_marshal_s: float = 0.030
    #: SOAP response/request parse (unmarshal) cost.
    soap_unmarshal_s: float = 0.030
    #: Device-side action execution (e.g. actually switching the light).
    #: Calibrated with the marshal costs so one SetPower control takes
    #: ~150 ms inside the UPnP domain (Section 5.2).
    device_action_processing_s: float = 0.085
    #: GENA event notification generation cost.
    gena_notify_s: float = 0.010


@dataclass(frozen=True)
class BluetoothCosts:
    """Bluetooth 1.2 stack costs (BlueZ-like; Sections 5.1 and 5.2)."""

    #: Effective ACL payload bandwidth (DH5 packets, asymmetric).
    acl_bandwidth_bps: float = 723_200.0
    #: Baseband round-trip/polling latency inside a piconet.
    baseband_latency_s: float = 0.005
    #: Inquiry scan takes seconds in reality; mappers in the paper react to
    #: already-discovered devices, so this models the *page* (connect) step.
    #: Together with the SDP confirmation, the HIDP channel setup and the
    #: translator construction, calibrated so generating the mouse
    #: translator takes ~0.2 s, i.e. ~5 instantiations/second (Figure 10).
    page_connect_s: float = 0.025
    #: SDP service-search processing (request build + response parse).
    sdp_query_s: float = 0.015
    #: L2CAP channel establishment processing (per endpoint).
    l2cap_connect_s: float = 0.004
    #: OBEX session setup (CONNECT request/response).
    obex_connect_s: float = 0.030
    #: Per-HID-report processing in the host stack.
    hid_report_processing_s: float = 0.003
    #: Maximum simultaneously active slaves in one piconet.
    piconet_capacity: int = 7


@dataclass(frozen=True)
class RmiCosts:
    """Java-RMI-like costs (Section 5.3, "RMI test")."""

    #: Java object serialization is the dominant RMI cost.  Calibrated so a
    #: 1400-byte echo through uMiddle sustains ~3.2 Mbps (Figure 11): the
    #: bridging node's per-message work (serialize + TCP send) must come to
    #: ~3.5 ms.
    marshal_fixed_s: float = 0.000_45
    marshal_per_byte_s: float = 0.000_001_09
    #: Registry lookup round trip (excluding wire time).
    registry_lookup_s: float = 0.002
    #: Stub dispatch overhead per call.
    dispatch_s: float = 0.000_15


@dataclass(frozen=True)
class MediaBrokerCosts:
    """MediaBroker stream costs (Section 5.3, "MB test").

    MediaBroker was designed for streaming and has a much lighter per-message
    path than RMI; calibrated so the MB echo sustains ~6.2 Mbps.
    """

    marshal_fixed_s: float = 0.000_10
    marshal_per_byte_s: float = 0.000_000_12
    #: Broker relay processing per message.
    relay_s: float = 0.000_08
    #: Stream registration with the broker.
    register_s: float = 0.001_5


@dataclass(frozen=True)
class MoteCosts:
    """Berkeley-mote (TinyOS-like) costs."""

    #: 19.2 kbps MICA-era radio.
    radio_bandwidth_bps: float = 19_200.0
    radio_latency_s: float = 0.010
    #: Active-message payload limit.
    am_payload_bytes: int = 29
    #: Sensor sampling cost on the mote.
    sample_s: float = 0.002


@dataclass(frozen=True)
class UMiddleCosts:
    """uMiddle runtime costs (Java, Pentium M 2.0 GHz).

    ``translator_per_port_s`` and friends are calibrated against Figure 10:
    instantiating the 14-port UPnP clock translator (plus two extra entities
    for the UPnP service/device hierarchy) takes ~1.4 s, i.e. ~0.7
    instantiations/second, while the simpler light and air-conditioner
    translators reach ~4/s and the Bluetooth HIDP mouse ~5/s.
    """

    #: USDL document parse cost per port element (digital or physical).
    usdl_parse_per_port_s: float = 0.012
    #: Reflection-heavy construction of one *digital* port object (Java
    #: class loading, protocol plumbing, registration, shape indexing).
    #: With 12 digital + 2 physical ports and 2 extra entities this puts
    #: the UPnP clock translator at ~1.43 s, i.e. ~0.7 instantiations per
    #: second (Figure 10).
    translator_per_digital_port_s: float = 0.091_8
    #: Physical ports are passive descriptors and much cheaper to build.
    translator_per_physical_port_s: float = 0.010
    #: Construction of one auxiliary uMiddle entity (the UPnP service/device
    #: hierarchy nodes in Figure 10's clock configuration).
    translator_per_entity_s: float = 0.055
    #: Fixed translator instantiation overhead (object graph + directory
    #: registration).
    translator_fixed_s: float = 0.030
    #: Translating one message between a native representation and the
    #: common representation (Section 5.2: "the rest in uMiddle" ~10 ms for
    #: a UPnP action; part of the 23 ms for a Bluetooth mouse event).
    message_translation_s: float = 0.010
    #: Common-representation (VML/JDOM-like) document build for small events
    #: such as mouse clicks.
    vml_build_s: float = 0.012
    #: Transport-module enqueue/dequeue per message.
    transport_dispatch_s: float = 0.000_05
    #: Converting stream data between two *different* platforms' native
    #: representations through the common format (paid only on
    #: cross-platform paths; same-platform echoes skip it).  Calibrated so
    #: the RMI-MB test lands below the RMI test in Figure 11 (2.9 Mbps).
    cross_representation_fixed_s: float = 0.000_08
    cross_representation_per_byte_s: float = 0.000_000_2
    #: Marshal/unmarshal of the uMiddle inter-node message envelope, per
    #: byte.  Together with the platform costs this produces Figure 11's
    #: RMI-MB crossover (2.9 Mbps).
    envelope_fixed_s: float = 0.000_08
    envelope_per_byte_s: float = 0.000_000_05
    #: Directory advertisement processing per entry.
    directory_entry_s: float = 0.000_4
    #: Default capacity (messages) of a message path's translation buffer.
    translation_buffer_capacity: int = 64


@dataclass(frozen=True)
class Calibration:
    """Aggregate of all cost models; pass to builders to perturb for ablation."""

    network: NetworkCosts = field(default_factory=NetworkCosts)
    upnp: UPnPCosts = field(default_factory=UPnPCosts)
    bluetooth: BluetoothCosts = field(default_factory=BluetoothCosts)
    rmi: RmiCosts = field(default_factory=RmiCosts)
    mediabroker: MediaBrokerCosts = field(default_factory=MediaBrokerCosts)
    motes: MoteCosts = field(default_factory=MoteCosts)
    umiddle: UMiddleCosts = field(default_factory=UMiddleCosts)

    def with_overrides(self, **sections) -> "Calibration":
        """Return a copy with whole sections replaced (for ablations)."""
        return replace(self, **sections)


#: The default calibration used throughout the reproduction.
DEFAULT = Calibration()
