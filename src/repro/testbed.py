"""Reusable scenario builders: simulated replicas of the paper's testbeds.

Examples, integration tests and benchmarks all need the same scaffolding --
a kernel, a LAN, uMiddle runtimes, native platforms and their mappers.
These builders construct them consistently so every consumer exercises the
same code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.calibration import Calibration, DEFAULT
from repro.core.runtime import UMiddleRuntime
from repro.simnet.kernel import Kernel
from repro.simnet.net import Hub, Network, Node
from repro.simnet.trace import TraceRecorder

__all__ = ["Testbed", "build_testbed"]


@dataclass
class Testbed:
    """A built scenario: kernel, network, LAN hub, hosts and runtimes."""

    kernel: Kernel
    network: Network
    lan: Hub
    calibration: Calibration
    hosts: Dict[str, Node] = field(default_factory=dict)
    runtimes: Dict[str, UMiddleRuntime] = field(default_factory=dict)

    def add_host(self, name: str) -> Node:
        node = self.network.add_node(name)
        node.attach(self.lan)
        self.hosts[name] = node
        return node

    def add_runtime(self, host_name: str, **kwargs) -> UMiddleRuntime:
        node = self.hosts.get(host_name) or self.add_host(host_name)
        runtime = UMiddleRuntime(node, name=f"rt-{host_name}", **kwargs)
        self.runtimes[host_name] = runtime
        return runtime

    @property
    def trace(self):
        """The network's trace recorder (chaos + recovery records land here)."""
        return self.network.trace

    def add_chaos(self, plan) -> "object":
        """Arm a :class:`~repro.chaos.FaultPlan` against this testbed.

        Returns the armed :class:`~repro.chaos.ChaosController`; faults
        fire as the testbed settles.
        """
        from repro.chaos import ChaosController

        return ChaosController(self.kernel, self.network.trace, plan).arm()

    def settle(self, duration: float) -> None:
        """Advance simulated time (discovery, gossip, transfers...)."""
        self.kernel.run(until=self.kernel.now + duration)

    def run(self, generator, name: str = "scenario"):
        """Run one process to completion and return its value."""
        return self.kernel.run_process(generator, name=name)


def build_testbed(
    calibration: Calibration = DEFAULT,
    lan_name: str = "lan",
    hosts: Optional[List[str]] = None,
    trace_max_records: Optional[int] = None,
) -> Testbed:
    """A 10 Mbps shared-hub LAN (the paper's Section 5 testbed).

    ``trace_max_records`` bounds the trace recorder with a ring buffer --
    soak runs and throughput benchmarks keep only the newest records while
    cumulative counters stay exact.
    """
    kernel = Kernel()
    if trace_max_records is not None:
        network = Network(kernel, trace=TraceRecorder(max_records=trace_max_records))
    else:
        network = Network(kernel)
    lan = network.add_hub(
        lan_name,
        bandwidth_bps=calibration.network.ethernet_bandwidth_bps,
        latency_s=calibration.network.ethernet_latency_s,
        frame_overhead_bytes=calibration.network.ethernet_frame_overhead_bytes,
    )
    testbed = Testbed(
        kernel=kernel, network=network, lan=lan, calibration=calibration
    )
    for host in hosts or []:
        testbed.add_host(host)
    return testbed
