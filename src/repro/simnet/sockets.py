"""Transport endpoints over the simulated network.

Three endpoint types, mirroring what the real testbed used:

- :class:`DatagramSocket` -- unreliable datagrams (UDP), including
  link-local multicast groups (UPnP's SSDP runs on these).
- :class:`StreamListener` / :class:`StreamSocket` -- reliable, ordered,
  connection-oriented message streams (TCP-like), used by SOAP, OBEX, RMI
  and uMiddle's own inter-node transport.

Streams are message-preserving: each ``send()`` is delivered by exactly one
``recv()`` on the peer.  Wire costs are still charged per segment: messages
are split at the MTU, every segment pays the host's per-segment processing
cost, occupies the medium for its serialization time, and is acknowledged.
Lost segments (on lossy media) are recovered with a go-back-N retransmission
scheme, so streams stay reliable while datagrams stay lossy.

All blocking operations return kernel :class:`~repro.simnet.kernel.Event`
objects, to be ``yield``-ed from simulation processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.calibration import NetworkCosts
from repro.simnet.addresses import Address
from repro.simnet.kernel import Event, Kernel
from repro.simnet.net import Frame, Interface, Medium, NetworkError, Node

__all__ = [
    "SocketError",
    "ConnectionClosed",
    "ConnectionRefused",
    "Datagram",
    "DatagramSocket",
    "MulticastGroup",
    "StreamListener",
    "StreamSocket",
]

_EPHEMERAL_BASE = 49152


class SocketError(Exception):
    """Raised for socket misuse (double bind, send after close, ...)."""


class ConnectionClosed(SocketError):
    """The peer closed the stream (raised from pending/future ``recv``)."""


class ConnectionRefused(SocketError):
    """No listener at the destination port."""


@dataclass(frozen=True)
class Datagram:
    """A received datagram with its source endpoint."""

    payload: Any
    size: int
    src: Address
    sport: int


class _NodeStack:
    """Per-node demultiplexer installed as a frame handler.

    Created lazily the first time a socket is opened on a node.
    """

    def __init__(self, node: Node, costs: NetworkCosts):
        self.node = node
        self.costs = costs
        self.kernel: Kernel = node.network.kernel
        self.udp_sockets: Dict[int, "DatagramSocket"] = {}
        self.multicast_sockets: Dict[Tuple[str, int], List["DatagramSocket"]] = {}
        self.listeners: Dict[int, "StreamListener"] = {}
        self.streams: Dict[Tuple[int, Address, int], "StreamSocket"] = {}
        self._next_ephemeral = _EPHEMERAL_BASE
        node.add_frame_handler(self._handle_frame)

    @classmethod
    def of(cls, node: Node, costs: NetworkCosts) -> "_NodeStack":
        stack = getattr(node, "_socket_stack", None)
        if stack is None:
            stack = cls(node, costs)
            node._socket_stack = stack  # type: ignore[attr-defined]
        return stack

    def ephemeral_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # -- demultiplexing ---------------------------------------------------

    def _handle_frame(self, frame: Frame, interface: Interface) -> bool:
        if frame.protocol == "udp":
            return self._handle_udp(frame, interface)
        if frame.protocol == "tcp":
            return self._handle_tcp(frame, interface)
        return False

    def _handle_udp(self, frame: Frame, interface: Interface) -> bool:
        # Payload size travels in metadata so that multi-homed nodes whose
        # media use different header sizes still report it exactly.
        size = frame.metadata.get(
            "payload_size", frame.wire_size - self.costs.udp_header_bytes
        )
        datagram = Datagram(
            payload=frame.payload,
            size=size,
            src=frame.src,
            sport=frame.sport,
        )
        if frame.multicast_group is not None:
            sockets = self.multicast_sockets.get((frame.multicast_group, frame.dport), [])
            for socket in sockets:
                socket._enqueue(datagram)
            return bool(sockets)
        socket = self.udp_sockets.get(frame.dport)
        if socket is None:
            return False
        socket._enqueue(datagram)
        return True

    def _handle_tcp(self, frame: Frame, interface: Interface) -> bool:
        kind = frame.metadata.get("kind")
        key = (frame.dport, frame.src, frame.sport)
        if kind == "syn":
            listener = self.listeners.get(frame.dport)
            if listener is None:
                reply = Frame(
                    src=interface.address,
                    dst=frame.src,
                    protocol="tcp",
                    sport=frame.dport,
                    dport=frame.sport,
                    payload=None,
                    wire_size=self.costs.tcp_header_bytes,
                    metadata={"kind": "rst"},
                )
                self.node.send_frame(reply)
                return True
            listener._handle_syn(frame, interface)
            return True
        stream = self.streams.get(key)
        if stream is None:
            if kind in ("rst", "ack", "fin"):
                return True  # stale traffic for a dead stream: swallow
            # Data/syn-ack for a connection we know nothing about (e.g. the
            # peer accepted a handshake we already abandoned): reset it so
            # the peer tears down its half-open stream.
            reset = Frame(
                src=interface.address,
                dst=frame.src,
                protocol="tcp",
                sport=frame.dport,
                dport=frame.sport,
                payload=None,
                wire_size=self.costs.tcp_header_bytes,
                metadata={"kind": "rst"},
            )
            self.node.send_frame(reset)
            return True
        stream._handle_frame(frame)
        return True


class DatagramSocket:
    """An unreliable datagram endpoint (UDP-like).

    >>> sock = DatagramSocket(node, costs, port=1900)
    >>> sock.sendto(payload, size=120, dst=peer, dport=1900)
    >>> datagram = yield sock.recv()          # inside a kernel process
    """

    def __init__(
        self,
        node: Node,
        costs: NetworkCosts,
        port: Optional[int] = None,
    ):
        self._stack = _NodeStack.of(node, costs)
        self.node = node
        self.costs = costs
        self.kernel = node.network.kernel
        self.port = port if port is not None else self._stack.ephemeral_port()
        if self.port in self._stack.udp_sockets:
            raise SocketError(f"UDP port {self.port} already bound on {node.name}")
        self._stack.udp_sockets[self.port] = self
        self._queue: Deque[Datagram] = deque()
        self._waiters: Deque[Event] = deque()
        self._groups: List[Tuple[str, int]] = []
        self.closed = False

    # -- sending -------------------------------------------------------------

    def sendto(self, payload: Any, size: int, dst: Address, dport: int) -> None:
        """Send one datagram (fire and forget)."""
        if self.closed:
            raise SocketError("socket is closed")
        frame = Frame(
            src=self.node.address,
            dst=dst,
            protocol="udp",
            sport=self.port,
            dport=dport,
            payload=payload,
            wire_size=size + self.costs.udp_header_bytes,
            metadata={"payload_size": size},
        )
        delay = self.costs.udp_datagram_processing_s
        self.kernel.call_later(delay, lambda: self.node.send_frame(frame))

    def send_multicast(
        self,
        payload: Any,
        size: int,
        group: str,
        dport: int,
        medium: Optional[Medium] = None,
    ) -> None:
        """Send one datagram to a link-local multicast group."""
        if self.closed:
            raise SocketError("socket is closed")
        frame = Frame(
            src=self.node.address,
            dst=None,
            protocol="udp",
            sport=self.port,
            dport=dport,
            payload=payload,
            wire_size=size + self.costs.udp_header_bytes,
            multicast_group=group,
            metadata={"payload_size": size},
        )
        delay = self.costs.udp_datagram_processing_s
        self.kernel.call_later(delay, lambda: self.node.send_frame(frame, medium=medium))

    # -- group membership ------------------------------------------------------

    def join(self, group: str, port: Optional[int] = None) -> None:
        """Join multicast ``group``; datagrams to (group, port) arrive here."""
        port = self.port if port is None else port
        self.node.join_multicast(group)
        members = self._stack.multicast_sockets.setdefault((group, port), [])
        if self not in members:
            members.append(self)
            self._groups.append((group, port))

    def leave(self, group: str, port: Optional[int] = None) -> None:
        port = self.port if port is None else port
        members = self._stack.multicast_sockets.get((group, port), [])
        if self in members:
            members.remove(self)
            self._groups.remove((group, port))

    # -- receiving ---------------------------------------------------------------

    def recv(self) -> Event:
        """Event that succeeds with the next :class:`Datagram`."""
        event = self.kernel.event(name=f"udp-recv:{self.node.name}:{self.port}")
        if self._queue:
            event.succeed(self._queue.popleft())
        elif self.closed:
            event.fail(ConnectionClosed("socket closed"))
            event.defused = True
        else:
            self._waiters.append(event)
        return event

    def cancel_recv(self, event: Event) -> None:
        """Withdraw a pending :meth:`recv` event (e.g. a scan timed out).

        Without this, abandoned waiters would silently consume future
        datagrams.  No-op if the event already fired or is unknown.
        """
        try:
            self._waiters.remove(event)
        except ValueError:
            pass

    def _enqueue(self, datagram: Datagram) -> None:
        if self.closed:
            return
        if self._waiters:
            self._waiters.popleft().succeed(datagram)
        else:
            self._queue.append(datagram)

    def pending(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._stack.udp_sockets.pop(self.port, None)
        for group, port in list(self._groups):
            self.leave(group, port)
        while self._waiters:
            waiter = self._waiters.popleft()
            waiter.defused = True
            waiter.fail(ConnectionClosed("socket closed"))


class MulticastGroup:
    """Convenience wrapper binding a well-known multicast group + port.

    Gives SSDP-style usage a compact API::

        ssdp = MulticastGroup("239.255.255.250", 1900)
        sock = ssdp.open(node, costs)          # joined and bound
        sock.send_multicast(...)  /  yield sock.recv()
    """

    def __init__(self, group: str, port: int):
        self.group = group
        self.port = port

    def open(self, node: Node, costs: NetworkCosts) -> DatagramSocket:
        socket = DatagramSocket(node, costs, port=None)
        socket.join(self.group, self.port)
        return socket

    def send(self, socket: DatagramSocket, payload: Any, size: int,
             medium: Optional[Medium] = None) -> None:
        socket.send_multicast(payload, size, self.group, self.port, medium=medium)


@dataclass
class _Segment:
    seq: int
    size: int
    payload: Any          # full message object, carried on the final segment
    message_final: bool
    message_size: int


class StreamListener:
    """A passive (listening) TCP-like endpoint."""

    def __init__(self, node: Node, costs: NetworkCosts, port: int):
        self._stack = _NodeStack.of(node, costs)
        if port in self._stack.listeners:
            raise SocketError(f"TCP port {port} already listening on {node.name}")
        self.node = node
        self.costs = costs
        self.kernel = node.network.kernel
        self.port = port
        self._stack.listeners[port] = self
        self._backlog: Deque["StreamSocket"] = deque()
        self._waiters: Deque[Event] = deque()
        self.closed = False

    def accept(self) -> Event:
        """Event that succeeds with the next accepted :class:`StreamSocket`."""
        event = self.kernel.event(name=f"accept:{self.node.name}:{self.port}")
        if self._backlog:
            event.succeed(self._backlog.popleft())
        elif self.closed:
            event.fail(ConnectionClosed("listener closed"))
            event.defused = True
        else:
            self._waiters.append(event)
        return event

    def _handle_syn(self, frame: Frame, interface: Interface) -> None:
        key = (self.port, frame.src, frame.sport)
        if key in self._stack.streams:
            # Duplicate SYN: our SYN-ACK was probably lost -- resend it.
            reply = Frame(
                src=interface.address,
                dst=frame.src,
                protocol="tcp",
                sport=self.port,
                dport=frame.sport,
                payload=None,
                wire_size=self.costs.tcp_header_bytes,
                metadata={"kind": "syn-ack"},
            )
            self.node.send_frame(reply)
            return
        stream = StreamSocket(
            self.node,
            self.costs,
            local_port=self.port,
            remote=frame.src,
            remote_port=frame.sport,
            connected=True,
        )
        reply = Frame(
            src=interface.address,
            dst=frame.src,
            protocol="tcp",
            sport=self.port,
            dport=frame.sport,
            payload=None,
            wire_size=self.costs.tcp_header_bytes,
            metadata={"kind": "syn-ack"},
        )
        self.kernel.call_later(
            self.costs.tcp_handshake_processing_s,
            lambda: self.node.send_frame(reply),
        )
        if self._waiters:
            self._waiters.popleft().succeed(stream)
        else:
            self._backlog.append(stream)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._stack.listeners.pop(self.port, None)
        while self._waiters:
            waiter = self._waiters.popleft()
            waiter.defused = True
            waiter.fail(ConnectionClosed("listener closed"))


class StreamSocket:
    """A reliable, ordered, message-preserving stream (TCP-like).

    Obtain one either from :meth:`StreamListener.accept` or from
    :meth:`StreamSocket.connect`::

        sock = yield StreamSocket.connect(node, costs, peer_addr, 80)
        sock.send(request, size=512)
        response = yield sock.recv()

    Reliability: segments carry sequence numbers; the receiver accepts only
    in-order segments and acknowledges cumulatively; the sender retransmits
    from the first unacknowledged segment on timeout (go-back-N).
    """

    #: Retransmission timeout (generous: simulated RTTs are sub-millisecond).
    RTO = 0.25
    #: Maximum retransmission attempts before the stream fails.
    MAX_RETRIES = 20
    #: SYN retransmission interval and attempt budget for connect().
    SYN_INTERVAL = 0.5
    MAX_SYN_ATTEMPTS = 6
    #: Send window: maximum unacknowledged segments in flight.  Bounds how
    #: much data a sender can pre-commit to the wire -- a host that dies
    #: mid-transfer takes at most a window's worth of frames with it.
    WINDOW = 64

    def __init__(
        self,
        node: Node,
        costs: NetworkCosts,
        local_port: int,
        remote: Address,
        remote_port: int,
        connected: bool = False,
    ):
        self._stack = _NodeStack.of(node, costs)
        self.node = node
        self.costs = costs
        self.kernel = node.network.kernel
        self.local_port = local_port
        self.remote = remote
        self.remote_port = remote_port
        self._key = (local_port, remote, remote_port)
        if self._key in self._stack.streams:
            raise SocketError(f"stream {self._key} already exists on {node.name}")
        self._stack.streams[self._key] = self

        self.connected = connected
        self.closed = False
        self._connect_event: Optional[Event] = None

        # Sender state.
        self._send_queue: Deque[_Segment] = deque()
        self._unacked: Deque[_Segment] = deque()
        self._next_seq = 0
        self._pump_running = False
        self._retransmit_timer: Optional[Event] = None
        self._retries = 0
        self._drained_waiters: Deque[Event] = deque()
        #: Reusable parked event for :meth:`drained_wait`: hot senders wait
        #: for the drain barrier once per batch, so recycling one event per
        #: stream avoids an allocation per wait.
        self._drained_parked: Optional[Event] = None
        self._window_waiters: Deque[Event] = deque()

        # Receiver state.
        self._expected_seq = 0
        self._recv_queue: Deque[Tuple[Any, int]] = deque()
        self._recv_waiters: Deque[Event] = deque()
        self._assembling_bytes = 0

        # Metrics.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.retransmissions = 0

    # -- connection establishment ------------------------------------------------

    @classmethod
    def connect(
        cls, node: Node, costs: NetworkCosts, dst: Address, dport: int
    ) -> Event:
        """Event that succeeds with a connected :class:`StreamSocket`."""
        stack = _NodeStack.of(node, costs)
        sport = stack.ephemeral_port()
        stream = cls(node, costs, local_port=sport, remote=dst, remote_port=dport)
        kernel = node.network.kernel
        event = kernel.event(name=f"connect:{node.name}->{dst}:{dport}")
        stream._connect_event = event

        def send_syn(attempt: int) -> None:
            if stream.connected or stream.closed or stream._connect_event is None:
                return
            if attempt >= cls.MAX_SYN_ATTEMPTS:
                pending, stream._connect_event = stream._connect_event, None
                pending.defused = True
                pending.fail(
                    ConnectionRefused(f"{dst}:{dport} (no answer after SYN retries)")
                )
                stream._teardown()
                return
            syn = Frame(
                src=node.address,
                dst=dst,
                protocol="tcp",
                sport=sport,
                dport=dport,
                payload=None,
                wire_size=costs.tcp_header_bytes,
                metadata={"kind": "syn"},
            )
            node.send_frame(syn)
            kernel.call_later(cls.SYN_INTERVAL, lambda: send_syn(attempt + 1))

        kernel.call_later(costs.tcp_handshake_processing_s, lambda: send_syn(0))
        return event

    # -- sending ------------------------------------------------------------------

    def _segment_message(self, payload: Any, size: int) -> List[_Segment]:
        if self.closed:
            raise SocketError("stream is closed")
        if not self.connected:
            raise SocketError("stream is not connected yet")
        if size < 0:
            raise SocketError("negative message size")
        mss = self.costs.mtu_bytes - self.costs.tcp_header_bytes
        segments: List[_Segment] = []
        remaining = max(size, 1)
        while remaining > 0:
            chunk = min(remaining, mss)
            remaining -= chunk
            final = remaining == 0
            segments.append(
                _Segment(
                    seq=self._next_seq,
                    size=chunk,
                    payload=payload if final else None,
                    message_final=final,
                    message_size=size,
                )
            )
            self._next_seq += 1
        self.messages_sent += 1
        self.bytes_sent += size
        return segments

    def send(self, payload: Any, size: int) -> None:
        """Queue one message of ``size`` bytes for reliable delivery.

        Per-segment processing is charged by a background pump process, so
        ``send`` itself never blocks the caller.  Use :meth:`send_inline`
        when the caller should pay the processing cost itself.
        """
        self._send_queue.extend(self._segment_message(payload, size))
        self._start_pump()

    def send_inline(self, payload: Any, size: int):
        """Generator variant of :meth:`send`: the *calling process* charges
        the per-segment processing time before each transmission.

        Used by uMiddle's transport module, whose per-peer sender process
        serializes envelope marshaling with TCP processing the way a real
        single-threaded sender thread would.  Do not mix ``send`` and
        ``send_inline`` concurrently on one stream: segments must enter the
        wire in sequence order.
        """
        segments = self._segment_message(payload, size)
        for segment in segments:
            yield from self._await_window()
            yield self.kernel.timeout(self.costs.tcp_segment_processing_s)
            if self.closed:
                raise ConnectionClosed("stream closed during send")
            self._transmit_segment(segment)
            self._unacked.append(segment)
            self._arm_retransmit()

    def drained(self) -> Event:
        """Event that succeeds once all queued data has been acknowledged."""
        event = self.kernel.event(name=f"drained:{self._key}")
        if not self._send_queue and not self._unacked:
            event.succeed()
        else:
            self._drained_waiters.append(event)
        return event

    def drained_wait(self):
        """Generator variant of :meth:`drained` for hot senders.

        Returns immediately (no event allocation, no kernel round-trip)
        when the stream is already fully acknowledged; otherwise parks on
        a single reusable per-stream event.  Raises
        :class:`ConnectionClosed` if the stream dies while waiting, like a
        ``yield stream.drained()`` would.
        """
        while self._send_queue or self._unacked:
            if self.closed:
                raise ConnectionClosed("stream closed")
            event = self._drained_parked
            if event is None or event.triggered:
                if event is not None and event.processed:
                    event = event.reset()
                else:
                    event = self.kernel.event(name=f"drained:{self._key}")
                self._drained_parked = event
                self._drained_waiters.append(event)
            yield event
        if self.closed:
            raise ConnectionClosed("stream closed")

    def batch_budget(self, total_bytes: int) -> int:
        """Wire segments a message of ``total_bytes`` would occupy.

        Sizing helper for frame coalescing: callers packing many small
        messages into one stream frame can see how many MTU-sized segments
        (each paying per-segment processing) the coalesced frame costs.
        """
        mss = self.costs.mtu_bytes - self.costs.tcp_header_bytes
        return max(1, -(-max(total_bytes, 1) // mss))

    def _start_pump(self) -> None:
        if not self._pump_running and self.connected and not self.closed:
            self._pump_running = True
            self.kernel.process(self._pump(), name=f"pump:{self._key}")

    def _await_window(self):
        """Generator: parks until the send window has room."""
        while len(self._unacked) >= self.WINDOW and not self.closed:
            waiter = self.kernel.event(name=f"window:{self._key}")
            self._window_waiters.append(waiter)
            yield waiter

    def _pump(self):
        try:
            while self._send_queue and not self.closed:
                segment = self._send_queue.popleft()
                yield from self._await_window()
                yield self.kernel.timeout(self.costs.tcp_segment_processing_s)
                if self.closed:
                    return
                self._transmit_segment(segment)
                self._unacked.append(segment)
                self._arm_retransmit()
        finally:
            self._pump_running = False

    def _transmit_segment(self, segment: _Segment) -> None:
        frame = Frame(
            src=self.node.address,
            dst=self.remote,
            protocol="tcp",
            sport=self.local_port,
            dport=self.remote_port,
            payload=segment,
            wire_size=segment.size + self.costs.tcp_header_bytes,
            metadata={"kind": "data"},
        )
        self.node.send_frame(frame)

    def _arm_retransmit(self) -> None:
        if self._retransmit_timer is not None:
            return
        timer = self.kernel.timeout(self.RTO)
        self._retransmit_timer = timer
        timer.add_callback(lambda _evt: self._on_retransmit_timer(timer))

    def _on_retransmit_timer(self, timer: Event) -> None:
        if self._retransmit_timer is not timer or self.closed:
            return  # stale timer (acks progressed and re-armed a fresh one)
        self._retransmit_timer = None
        if not self._unacked:
            return
        self._retries += 1
        if self._retries > self.MAX_RETRIES:
            self._fail(ConnectionClosed("too many retransmissions"))
            return
        self.retransmissions += len(self._unacked)
        for segment in self._unacked:
            self._transmit_segment(segment)
        self._arm_retransmit()

    # -- frame handling --------------------------------------------------------------

    def _handle_frame(self, frame: Frame) -> None:
        kind = frame.metadata.get("kind")
        if kind == "syn-ack":
            if not self.connected:
                self.connected = True
                if self._connect_event is not None:
                    self._connect_event.succeed(self)
                    self._connect_event = None
                self._start_pump()
        elif kind == "rst":
            if self._connect_event is not None:
                event, self._connect_event = self._connect_event, None
                event.defused = True
                event.fail(ConnectionRefused(f"{self.remote}:{self.remote_port}"))
                self._teardown()
            else:
                self._fail(ConnectionClosed("connection reset by peer"))
        elif kind == "data":
            self._handle_data(frame.payload)
        elif kind == "ack":
            self._handle_ack(frame.metadata["ack_seq"])
        elif kind == "fin":
            self._send_ack(frame.metadata.get("seq", self._expected_seq))
            self._fail(ConnectionClosed("peer closed the stream"), graceful=True)

    def _handle_data(self, segment: _Segment) -> None:
        if segment.seq > self._expected_seq:
            # Out of order (an earlier segment was lost): re-ack last good.
            self._send_ack(self._expected_seq)
            return
        if segment.seq < self._expected_seq:
            # Duplicate from a retransmission burst.
            self._send_ack(self._expected_seq)
            return
        self._expected_seq += 1
        self._assembling_bytes += segment.size
        self._send_ack(self._expected_seq)
        if segment.message_final:
            size = segment.message_size
            self._assembling_bytes = 0
            self.bytes_received += size
            self.messages_received += 1
            if self._recv_waiters:
                self._recv_waiters.popleft().succeed((segment.payload, size))
            else:
                self._recv_queue.append((segment.payload, size))

    def _send_ack(self, ack_seq: int) -> None:
        frame = Frame(
            src=self.node.address,
            dst=self.remote,
            protocol="tcp",
            sport=self.local_port,
            dport=self.remote_port,
            payload=None,
            wire_size=self.costs.tcp_header_bytes,
            metadata={"kind": "ack", "ack_seq": ack_seq},
        )
        self.node.send_frame(frame)

    def _handle_ack(self, ack_seq: int) -> None:
        progressed = False
        while self._unacked and self._unacked[0].seq < ack_seq:
            self._unacked.popleft()
            progressed = True
        if progressed and len(self._unacked) < self.WINDOW:
            while self._window_waiters:
                waiter = self._window_waiters.popleft()
                if not waiter.triggered:
                    waiter.succeed()
        if progressed:
            self._retries = 0
            self._retransmit_timer = None  # disarm; re-armed on next send
            if self._unacked:
                self._arm_retransmit()
        if not self._send_queue and not self._unacked:
            while self._drained_waiters:
                self._drained_waiters.popleft().succeed()

    # -- receiving ----------------------------------------------------------------------

    def recv(self) -> Event:
        """Event that succeeds with ``(payload, size)`` of the next message."""
        event = self.kernel.event(name=f"recv:{self._key}")
        if self._recv_queue:
            event.succeed(self._recv_queue.popleft())
        elif self.closed:
            event.fail(ConnectionClosed("stream closed"))
            event.defused = True
        else:
            self._recv_waiters.append(event)
        return event

    def pending(self) -> int:
        return len(self._recv_queue)

    # -- teardown ----------------------------------------------------------------------

    def close(self) -> None:
        """Gracefully close: notify the peer, fail local waiters."""
        if self.closed:
            return
        fin = Frame(
            src=self.node.address,
            dst=self.remote,
            protocol="tcp",
            sport=self.local_port,
            dport=self.remote_port,
            payload=None,
            wire_size=self.costs.tcp_header_bytes,
            metadata={"kind": "fin", "seq": self._next_seq},
        )
        try:
            self.node.send_frame(fin)
        except NetworkError:
            pass
        self._fail(ConnectionClosed("locally closed"), graceful=True)

    def abort(self) -> None:
        """Tear down abruptly, without notifying the peer (crash semantics).

        The peer discovers the death only when its next segment is answered
        with an RST by our node's stack (or its retransmissions exhaust).
        """
        self._fail(ConnectionClosed("aborted"))

    def _fail(self, exc: SocketError, graceful: bool = False) -> None:
        if self.closed:
            return
        self.closed = True
        self._retransmit_timer = None
        while self._recv_waiters:
            waiter = self._recv_waiters.popleft()
            waiter.defused = True
            waiter.fail(exc)
        while self._drained_waiters:
            waiter = self._drained_waiters.popleft()
            waiter.defused = True
            waiter.fail(exc)
        while self._window_waiters:
            waiter = self._window_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()  # wake parked senders; they observe closed
        if self._connect_event is not None:
            event, self._connect_event = self._connect_event, None
            event.defused = True
            event.fail(exc)
        self._teardown()

    def _teardown(self) -> None:
        self.closed = True
        self._stack.streams.pop(self._key, None)
