"""Structured event tracing for simulations.

A :class:`TraceRecorder` collects timestamped, categorized records emitted by
the network, the platform stacks and the uMiddle runtime.  Tests assert on
traces; benchmarks aggregate them (e.g. bytes-on-wire per category).

Long soak runs can bound memory with ``TraceRecorder(max_records=...)``: the
record store becomes a ring buffer that evicts the oldest entries, while
per-category counters stay cumulative so :meth:`TraceRecorder.count` keeps
reporting how many records were *emitted*, not merely how many are retained.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: simulated time, category, human message, details."""

    time: float
    category: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.category:<18} {self.message}"


class TraceRecorder:
    """Accumulates :class:`TraceRecord` entries.

    The recorder is intentionally permissive: any component may emit any
    category.  Filters are applied at read time, keeping the write path
    cheap (simulation inner loops call :meth:`emit` frequently).

    With ``max_records`` set, only the newest ``max_records`` entries are
    retained (a ring buffer); counts stay cumulative but :meth:`records`,
    :meth:`total`, iteration and ``len()`` see only the retained window.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_records: Optional[int] = None,
    ):
        self._clock = clock or (lambda: 0.0)
        self.max_records = max_records
        if max_records is not None:
            self._records: "deque[TraceRecord]" = deque(maxlen=max_records)
        else:
            self._records = deque()
        self._counts: Dict[str, int] = {}
        self.emitted = 0
        self.enabled = True

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated-time source (usually ``kernel.now``)."""
        self._clock = clock

    def emit(self, category: str, message: str, **details: Any) -> None:
        """Record one trace entry at the current simulated time."""
        if not self.enabled:
            return
        self._records.append(
            TraceRecord(self._clock(), category, message, dict(details))
        )
        self.emitted += 1
        self._counts[category] = self._counts.get(category, 0) + 1

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """Retained records, optionally filtered to one category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def count(self, category: Optional[str] = None) -> int:
        """Cumulative emit count (survives ring-buffer eviction)."""
        if category is None:
            return self.emitted
        return self._counts.get(category, 0)

    def total(self, category: str, key: str) -> float:
        """Sum a numeric detail field across one category's records."""
        return sum(r.details.get(key, 0) for r in self._records if r.category == category)

    def clear(self) -> None:
        self._records.clear()
        self._counts.clear()
        self.emitted = 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)
