"""Structured event tracing for simulations.

A :class:`TraceRecorder` collects timestamped, categorized records emitted by
the network, the platform stacks and the uMiddle runtime.  Tests assert on
traces; benchmarks aggregate them (e.g. bytes-on-wire per category).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: simulated time, category, human message, details."""

    time: float
    category: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.category:<18} {self.message}"


class TraceRecorder:
    """Accumulates :class:`TraceRecord` entries.

    The recorder is intentionally permissive: any component may emit any
    category.  Filters are applied at read time, keeping the write path
    cheap (simulation inner loops call :meth:`emit` frequently).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self._records: List[TraceRecord] = []
        self.enabled = True

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated-time source (usually ``kernel.now``)."""
        self._clock = clock

    def emit(self, category: str, message: str, **details: Any) -> None:
        """Record one trace entry at the current simulated time."""
        if not self.enabled:
            return
        self._records.append(
            TraceRecord(self._clock(), category, message, dict(details))
        )

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """All records, optionally filtered to one category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def count(self, category: Optional[str] = None) -> int:
        return len(self.records(category))

    def total(self, category: str, key: str) -> float:
        """Sum a numeric detail field across one category's records."""
        return sum(r.details.get(key, 0) for r in self._records if r.category == category)

    def clear(self) -> None:
        self._records.clear()

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)
