"""Discrete-event simulation substrate for the uMiddle reproduction.

The paper's evaluation ran on three ThinkPad laptops connected by a 10 Mbps
Ethernet hub, with real Bluetooth and UPnP hardware.  This package replaces
that testbed with a deterministic discrete-event simulation:

- :mod:`repro.simnet.kernel` -- the event scheduler, simulated clock and
  generator-based process model (a from-scratch mini ``simpy``).
- :mod:`repro.simnet.net` -- nodes, links and shared media with bandwidth,
  latency and loss models.
- :mod:`repro.simnet.sockets` -- datagram, multicast and reliable stream
  endpoints used by the simulated platforms and by uMiddle itself.
- :mod:`repro.simnet.addresses` -- address allocation and name resolution.
- :mod:`repro.simnet.trace` -- structured event tracing for tests/benches.

All timing in the reproduction is *simulated* time produced by this package,
so benchmark results are deterministic and hardware-independent.
"""

from repro.simnet.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Kernel,
    Process,
    ProcessKilled,
    SimulationError,
    Timeout,
)
from repro.simnet.net import Hub, Link, Network, Node
from repro.simnet.addresses import Address, AddressAllocator
from repro.simnet.sockets import (
    DatagramSocket,
    Datagram,
    MulticastGroup,
    StreamListener,
    StreamSocket,
)
from repro.simnet.trace import TraceRecorder, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Kernel",
    "Process",
    "ProcessKilled",
    "SimulationError",
    "Timeout",
    "Hub",
    "Link",
    "Network",
    "Node",
    "Address",
    "AddressAllocator",
    "Datagram",
    "DatagramSocket",
    "MulticastGroup",
    "StreamListener",
    "StreamSocket",
    "TraceRecorder",
    "TraceRecord",
]
