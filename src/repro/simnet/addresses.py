"""Addressing for the simulated network.

Addresses are lightweight, hashable host identifiers ("10.0.0.7"-style
dotted strings by default).  The :class:`AddressAllocator` hands out unique
addresses for a network, and supports symbolic name registration so tests
and examples can refer to hosts by role ("upnp-host", "bt-host", ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

__all__ = ["Address", "AddressAllocator", "AddressError"]


class AddressError(Exception):
    """Raised for allocation/resolution failures."""


@dataclass(frozen=True, order=True)
class Address:
    """An immutable host address on the simulated network."""

    host: str

    def __str__(self) -> str:
        return self.host


class AddressAllocator:
    """Allocates unique :class:`Address` values and resolves symbolic names.

    >>> alloc = AddressAllocator(prefix="10.0.0.")
    >>> alloc.allocate("laptop-1")
    Address(host='10.0.0.1')
    >>> alloc.resolve("laptop-1")
    Address(host='10.0.0.1')
    """

    def __init__(self, prefix: str = "10.0.0."):
        self._prefix = prefix
        self._next_suffix = 1
        self._by_name: Dict[str, Address] = {}
        self._names_by_address: Dict[Address, str] = {}

    def allocate(self, name: str) -> Address:
        """Allocate a fresh address registered under ``name``."""
        if name in self._by_name:
            raise AddressError(f"name already registered: {name!r}")
        address = Address(f"{self._prefix}{self._next_suffix}")
        self._next_suffix += 1
        self._by_name[name] = address
        self._names_by_address[address] = name
        return address

    def resolve(self, name: str) -> Address:
        """Return the address registered under ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise AddressError(f"unknown name: {name!r}") from None

    def name_of(self, address: Address) -> str:
        """Reverse lookup: the symbolic name for ``address``."""
        try:
            return self._names_by_address[address]
        except KeyError:
            raise AddressError(f"unknown address: {address}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)
