"""Discrete-event simulation kernel.

A from-scratch, dependency-free mini implementation of the process-based
discrete-event style popularized by ``simpy``.  The rest of the reproduction
(the simulated network, the native platform stacks and the uMiddle runtime)
is written as generator *processes* scheduled by a :class:`Kernel`.

Core concepts
-------------

``Kernel``
    Owns the simulated clock and the event queue.  ``kernel.run()`` executes
    events in timestamp order until the queue drains or a deadline passes.

``Event``
    A one-shot occurrence.  Processes wait on events by ``yield``-ing them;
    user code triggers them with :meth:`Event.succeed` or :meth:`Event.fail`.

``Timeout``
    An event that triggers automatically after a simulated delay.

``Process``
    Wraps a generator.  Each ``yield``ed event suspends the process until the
    event triggers; the event's value is sent back into the generator.  A
    process is itself an event that triggers when the generator finishes, so
    processes can wait on each other.

``AnyOf`` / ``AllOf``
    Composite events for disjunction/conjunction waits.

Determinism
-----------

Events scheduled for the same timestamp execute in FIFO order of scheduling
(a monotonically increasing sequence number breaks ties), so simulations are
fully deterministic -- a property the benchmark harness relies on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "ProcessKilled",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Kernel",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Thrown into a process that was forcibly killed via :meth:`Process.kill`."""


class Event:
    """A one-shot simulation event.

    An event starts *pending*; it becomes *triggered* exactly once, either
    successfully (carrying a value) or with a failure (carrying an
    exception).  Callbacks registered before the trigger run when the kernel
    processes the trigger; callbacks registered afterwards run immediately
    at the current simulated time.
    """

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"

    def __init__(self, kernel: "Kernel", name: str = ""):
        self._kernel = kernel
        self.name = name or self.__class__.__name__
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = Event.PENDING
        #: Set True by a waiter that consumed the failure, to suppress the
        #: "unhandled failure" error at kernel level.
        self.defused = False

    # -- inspection ---------------------------------------------------

    @property
    def kernel(self) -> "Kernel":
        return self._kernel

    @property
    def triggered(self) -> bool:
        return self._state != Event.PENDING

    @property
    def processed(self) -> bool:
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"value of {self.name} is not yet available")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- triggering ---------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self.name} has already been triggered")
        self._value = value
        self._state = Event.TRIGGERED
        self._kernel._enqueue_trigger(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if self.triggered:
            raise SimulationError(f"{self.name} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = Event.TRIGGERED
        self._kernel._enqueue_trigger(self)
        return self

    # -- callbacks ----------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback is scheduled to
        run immediately (at the current simulated time) rather than being
        silently dropped.
        """
        if self.callbacks is not None:
            self.callbacks.append(callback)
        else:
            # Already processed: deliver asynchronously but without delay so
            # ordering relative to other immediate events is preserved.
            self._kernel.call_soon(lambda: callback(self))

    def reset(self) -> "Event":
        """Recycle a fully processed event back to *pending*.

        Hot loops (per-peer senders, stream drain barriers) park on one
        event per wait; resetting lets a single-owner waiter reuse the
        same object instead of allocating a fresh event per cycle.  Only
        legal once the previous trigger has been processed -- a pending or
        triggered-but-unprocessed event still owes its waiters a wakeup.
        """
        if self._state != Event.PROCESSED:
            raise SimulationError(f"cannot reset {self.name!r}: not processed yet")
        self.callbacks = []
        self._value = None
        self._exception = None
        self.defused = False
        self._state = Event.PENDING
        return self

    def _process_trigger(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = Event.PROCESSED
        for callback in callbacks or ():
            callback(self)
        if self._exception is not None and not self.defused:
            raise self._exception

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.__class__.__name__} {self.name!r} state={self._state}>"


class Timeout(Event):
    """An event that triggers automatically ``delay`` seconds in the future."""

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(kernel, name=f"Timeout({delay})")
        self.delay = delay
        self._value = value
        self._state = Event.TRIGGERED
        kernel._enqueue_trigger(self, delay=delay)


class _Initialize(Event):
    """Internal event that starts a freshly created process."""

    def __init__(self, kernel: "Kernel", process: "Process"):
        super().__init__(kernel, name=f"Init({process.name})")
        self._state = Event.TRIGGERED
        self.callbacks.append(process._resume)
        kernel._enqueue_trigger(self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is an :class:`Event` that triggers when the generator
    returns (successfully, with the return value) or raises (as a failure).
    """

    def __init__(self, kernel: "Kernel", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError("Process requires a generator")
        super().__init__(kernel, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        _Initialize(kernel, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        self._throw_in(Interrupt(cause))

    def kill(self, reason: str = "killed") -> None:
        """Forcibly terminate the process with :class:`ProcessKilled`.

        Unlike :meth:`interrupt` the resulting failure is pre-defused, so an
        unhandled kill does not abort the whole simulation.
        """
        self._throw_in(ProcessKilled(reason), defuse=True)

    def _throw_in(self, exc: BaseException, defuse: bool = False) -> None:
        if self.triggered:
            raise SimulationError(f"{self.name} has already terminated")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself this way")
        # Detach from whatever event the process is currently waiting on.
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        throw_event = Event(self._kernel, name=f"Throw({self.name})")
        throw_event._exception = exc
        throw_event._state = Event.TRIGGERED
        throw_event.defused = True
        throw_event.callbacks.append(self._resume)
        if defuse:
            self.defused = True
        self._kernel._enqueue_trigger(throw_event)

    # -- generator driving --------------------------------------------

    def _resume(self, event: Event) -> None:
        self._kernel._active_process = self
        try:
            while True:
                try:
                    if event._exception is None:
                        target = self._generator.send(event._value)
                    else:
                        event.defused = True
                        target = self._generator.throw(event._exception)
                except StopIteration as stop:
                    self._waiting_on = None
                    self._value = stop.value
                    self._state = Event.TRIGGERED
                    self._kernel._enqueue_trigger(self)
                    return
                except BaseException as exc:
                    self._waiting_on = None
                    self._exception = exc
                    self._state = Event.TRIGGERED
                    self._kernel._enqueue_trigger(self)
                    return

                if not isinstance(target, Event):
                    exc = SimulationError(
                        f"process {self.name!r} yielded a non-event: {target!r}"
                    )
                    event = Event(self._kernel)
                    event._exception = exc
                    event._state = Event.TRIGGERED
                    continue
                if target._kernel is not self._kernel:
                    exc = SimulationError("cannot wait on an event from another kernel")
                    event = Event(self._kernel)
                    event._exception = exc
                    event._state = Event.TRIGGERED
                    continue

                if target.callbacks is not None:
                    # Pending or triggered-but-unprocessed: park the process.
                    self._waiting_on = target
                    target.callbacks.append(self._resume)
                    return
                # Already processed: loop and feed its outcome immediately.
                event = target
        finally:
            self._kernel._active_process = None


class _Condition(Event):
    """Base class for :class:`AnyOf` / :class:`AllOf` composite waits."""

    def __init__(self, kernel: "Kernel", events: Iterable[Event], name: str):
        super().__init__(kernel, name=name)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event._kernel is not self._kernel:
                raise SimulationError("all events must belong to the same kernel")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict:
        # ``processed`` (not ``triggered``): a Timeout is born triggered but
        # has not *happened* until the kernel processes it.
        return {
            event: event._value
            for event in self._events
            if event.processed and event._exception is None
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when the first of ``events`` triggers.

    Succeeds with a dict of the already-triggered events and their values;
    fails if the first event to trigger failed.
    """

    def __init__(self, kernel: "Kernel", events: Iterable[Event]):
        super().__init__(kernel, events, name="AnyOf")

    def _check(self, event: Event) -> None:
        if self.triggered:
            if event._exception is not None:
                event.defused = True
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when every one of ``events`` has triggered.

    Succeeds with a dict of all events and their values; fails fast on the
    first failing constituent.
    """

    def __init__(self, kernel: "Kernel", events: Iterable[Event]):
        super().__init__(kernel, events, name="AllOf")

    def _check(self, event: Event) -> None:
        if self.triggered:
            if event._exception is not None:
                event.defused = True
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
            return
        done = sum(1 for e in self._events if e.processed)
        if done == len(self._events):
            self.succeed(self._collect())


class Kernel:
    """The simulation kernel: clock plus event queue.

    Typical use::

        kernel = Kernel()

        def worker(kernel):
            yield kernel.timeout(1.0)
            return "done"

        proc = kernel.process(worker(kernel))
        kernel.run()
        assert proc.value == "done"
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._queue: List = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._processed_events = 0

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> float:
        """The current simulated time, in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (for tests/metrics)."""
        return self._processed_events

    # -- event factories ------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_soon(self, func: Callable[[], None]) -> Event:
        """Schedule ``func`` to run at the current simulated time."""
        event = Event(self, name="call_soon")
        event.add_callback(lambda _evt: func())
        event.succeed()
        return event

    def call_later(self, delay: float, func: Callable[[], None]) -> Timeout:
        """Schedule ``func`` to run ``delay`` seconds in the future."""
        timeout = self.timeout(delay)
        timeout.add_callback(lambda _evt: func())
        return timeout

    # -- scheduling ------------------------------------------------------

    def _enqueue_trigger(self, event: Event, delay: float = 0.0) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    def peek(self) -> float:
        """Timestamp of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to its time."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past (kernel bug)")
        self._now = when
        self._processed_events += 1
        event._process_trigger()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or the clock would pass ``until``.

        When a deadline is given the clock is advanced exactly to it even if
        no event falls on the deadline, matching ``simpy`` semantics.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"deadline {until} is in the past (now={self._now})")
        while self._queue:
            if until is not None and self.peek() > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn ``generator`` and run until it completes.

        Returns the process return value; re-raises its failure.  Other
        queued events continue to be processed while waiting.
        """
        process = self.process(generator, name=name)
        while not process.triggered:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: process {process.name!r} cannot make progress"
                )
            self.step()
        process.defused = True
        return process.value
