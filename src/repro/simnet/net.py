"""Simulated network: nodes, links and shared media.

The model is deliberately close to the paper's testbed: hosts with one or
more network interfaces attached to *media*.  A :class:`Hub` models the
paper's shared 10 Mbps Ethernet hub (one transmission at a time on the whole
segment); a :class:`Link` models a dedicated point-to-point connection such
as a Bluetooth ACL link between a host and a device.

Frames carry an explicit ``wire_size`` (payload plus transport headers);
media add their layer-2 framing overhead on top.  Nodes with multiple
interfaces forward frames hop by hop, so multi-segment topologies (the
"campus" deployments of Section 3.6) work without a separate router class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.simnet.addresses import Address, AddressAllocator, AddressError
from repro.simnet.kernel import Kernel
from repro.simnet.trace import TraceRecorder

__all__ = [
    "Frame",
    "NetworkError",
    "Interface",
    "Medium",
    "Hub",
    "Switch",
    "Link",
    "Node",
    "Network",
]

#: Hop budget: frames are dropped (with a trace record) once exceeded.
MAX_HOPS = 16


class NetworkError(Exception):
    """Raised for malformed sends, unknown destinations and similar misuse."""


@dataclass
class Frame:
    """One frame in flight.

    ``payload`` is an arbitrary Python object (the simulation never inspects
    it); ``wire_size`` is the number of bytes the frame occupies on the wire
    *excluding* layer-2 overhead, which each medium adds itself.
    """

    src: Address
    dst: Optional[Address]
    protocol: str
    sport: int
    dport: int
    payload: Any
    wire_size: int
    multicast_group: Optional[str] = None
    hops: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)

    def clone(self) -> "Frame":
        return Frame(
            src=self.src,
            dst=self.dst,
            protocol=self.protocol,
            sport=self.sport,
            dport=self.dport,
            payload=self.payload,
            wire_size=self.wire_size,
            multicast_group=self.multicast_group,
            hops=self.hops,
            metadata=dict(self.metadata),
        )


class Interface:
    """One attachment point of a node to a medium."""

    def __init__(self, node: "Node", medium: "Medium", address: Address):
        self.node = node
        self.medium = medium
        self.address = address
        self.multicast_groups: Set[str] = set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Interface {self.address} on {self.medium.name} of {self.node.name}>"


class Medium:
    """Base class for transmission media.

    Subclasses decide contention (shared vs. per-direction) by implementing
    :meth:`_reserve`, which returns the transmission *start* time for a frame
    of a given duration and books the medium accordingly.
    """

    def __init__(
        self,
        network: "Network",
        name: str,
        bandwidth_bps: float,
        latency_s: float,
        frame_overhead_bytes: int = 0,
        loss_rate: float = 0.0,
        seed: int = 0,
    ):
        if bandwidth_bps <= 0:
            raise NetworkError("bandwidth must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError("loss_rate must be in [0, 1)")
        self.network = network
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.frame_overhead_bytes = frame_overhead_bytes
        self.loss_rate = loss_rate
        self._rng = random.Random(seed)
        self.interfaces: List[Interface] = []
        #: False while the medium is suffering a total outage: every frame
        #: offered to :meth:`transmit` is dropped (the chaos subsystem flips
        #: this to model link/segment failures).
        self.up = True
        #: Optional partition: a list of node-name sets.  Two interfaces can
        #: exchange frames only when some set contains both their nodes;
        #: nodes absent from every set are isolated.  ``None`` = healthy.
        self._partition: Optional[List[Set[str]]] = None
        #: Asymmetric link blocks: ``(src_node, dst_node)`` pairs whose
        #: frames are dropped in that direction only -- A can hear B while
        #: B no longer hears A (one-way radio fade, half-broken cable).
        self._blocked: Set[Tuple[str, str]] = set()
        #: Cumulative bytes transmitted (wire bytes incl. overhead).
        self.bytes_transmitted = 0
        self.frames_transmitted = 0
        self.frames_dropped = 0

    # -- attachment -----------------------------------------------------

    def _attach(self, interface: Interface) -> None:
        self.interfaces.append(interface)

    def interface_for(self, address: Address) -> Optional[Interface]:
        for interface in self.interfaces:
            if interface.address == address:
                return interface
        return None

    # -- dynamic properties (fault injection) ---------------------------

    def set_up(self, up: bool) -> None:
        """Bring the medium up or down; a down medium drops every frame."""
        if up == self.up:
            return
        self.up = up
        self.network.trace.emit(
            "net.medium", f"{self.name}: {'up' if up else 'down'}", up=up
        )

    def set_loss_rate(self, loss_rate: float) -> None:
        """Change the random-loss probability at the current simulated time."""
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate
        self.network.trace.emit(
            "net.medium", f"{self.name}: loss_rate={loss_rate}", loss_rate=loss_rate
        )

    def set_latency(self, latency_s: float) -> None:
        """Change the propagation latency at the current simulated time."""
        if latency_s < 0:
            raise NetworkError("latency must be non-negative")
        self.latency_s = latency_s
        self.network.trace.emit(
            "net.medium", f"{self.name}: latency_s={latency_s}", latency_s=latency_s
        )

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Change the serialization bandwidth at the current simulated time."""
        if bandwidth_bps <= 0:
            raise NetworkError("bandwidth must be positive")
        self.bandwidth_bps = bandwidth_bps
        self.network.trace.emit(
            "net.medium",
            f"{self.name}: bandwidth_bps={bandwidth_bps}",
            bandwidth_bps=bandwidth_bps,
        )

    def partition(self, groups: List) -> None:
        """Split the segment into isolated groups of node names.

        ``groups`` is a list of iterables of node names.  Frames cross the
        medium only between nodes sharing a group; nodes named in no group
        are isolated entirely.
        """
        self._partition = [set(group) for group in groups]
        self.network.trace.emit(
            "net.partition",
            f"{self.name}: partitioned into {len(self._partition)} group(s)",
            groups=[sorted(g) for g in self._partition],
        )

    def heal(self) -> None:
        """Remove any partition (no-op on a healthy medium)."""
        if self._partition is None:
            return
        self._partition = None
        self.network.trace.emit("net.partition", f"{self.name}: healed")

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def block_direction(self, src: str, dst: str) -> None:
        """Drop every frame ``src`` sends toward ``dst`` (by node name)
        while letting the reverse direction through -- the asymmetric-link
        fault partitions and outages cannot model."""
        pair = (src, dst)
        if pair in self._blocked:
            return
        self._blocked.add(pair)
        self.network.trace.emit(
            "net.asymmetry", f"{self.name}: {src} -/-> {dst}", src=src, dst=dst
        )

    def unblock_direction(self, src: str, dst: str) -> None:
        """Restore the ``src`` -> ``dst`` direction."""
        pair = (src, dst)
        if pair not in self._blocked:
            return
        self._blocked.discard(pair)
        self.network.trace.emit(
            "net.asymmetry",
            f"{self.name}: {src} -> {dst} restored",
            src=src,
            dst=dst,
        )

    def _same_side(self, a: Interface, b: Interface) -> bool:
        """True when the partition (if any) lets ``a`` and ``b`` talk."""
        if self._partition is None:
            return True
        for group in self._partition:
            if a.node.name in group and b.node.name in group:
                return True
        return False

    def _delivers(self, src: Interface, dst: Interface) -> bool:
        """True when a frame from ``src`` currently reaches ``dst``:
        same partition side and the direction is not asymmetrically
        blocked."""
        if (
            self._blocked
            and (src.node.name, dst.node.name) in self._blocked
        ):
            return False
        return self._same_side(src, dst)

    # -- transmission -----------------------------------------------------

    def _reserve(self, sender: Interface, duration: float) -> float:
        raise NotImplementedError

    def transmit(self, sender: Interface, frame: Frame) -> float:
        """Transmit ``frame`` from ``sender``; returns the delivery time.

        Delivery is scheduled on the kernel; lost frames are recorded and
        silently dropped (datagram semantics; the stream layer adds its own
        reliability on top).
        """
        kernel = self.network.kernel
        wire_bytes = frame.wire_size + self.frame_overhead_bytes
        if not self.up:
            self.frames_dropped += 1
            self.network.trace.emit(
                "net.outage",
                f"{self.name}: down, dropped frame {frame.src}->{frame.dst}",
                wire_bytes=wire_bytes,
            )
            return kernel.now + self.latency_s
        duration = wire_bytes * 8.0 / self.bandwidth_bps
        start = self._reserve(sender, duration)
        finish = start + duration
        delivery = finish + self.latency_s
        self.bytes_transmitted += wire_bytes
        self.frames_transmitted += 1

        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.frames_dropped += 1
            self.network.trace.emit(
                "net.drop",
                f"{self.name}: dropped frame {frame.src}->{frame.dst}",
                wire_bytes=wire_bytes,
            )
            return delivery

        kernel.call_later(delivery - kernel.now, lambda: self._deliver(sender, frame))
        if self.network.trace.enabled:
            # Hottest trace site in the simulator: skip the f-string work
            # entirely when tracing is off (bytes_transmitted still counts).
            self.network.trace.emit(
                "net.tx",
                f"{self.name}: {frame.src}:{frame.sport}->{frame.dst}:{frame.dport} "
                f"{frame.protocol} {wire_bytes}B",
                wire_bytes=wire_bytes,
                protocol=frame.protocol,
            )
        return delivery

    def _deliver(self, sender: Interface, frame: Frame) -> None:
        if frame.multicast_group is not None:
            for interface in self.interfaces:
                if interface is sender:
                    continue
                if not self._delivers(sender, interface):
                    continue
                if frame.multicast_group in interface.multicast_groups:
                    interface.node._receive(frame.clone(), interface)
            return
        if frame.dst is None:
            # Broadcast: every other interface on the segment.
            for interface in self.interfaces:
                if interface is not sender:
                    if self._delivers(sender, interface):
                        interface.node._receive(frame.clone(), interface)
            return
        target = self.interface_for(frame.dst)
        if target is not None:
            if not self._same_side(sender, target):
                self.frames_dropped += 1
                self.network.trace.emit(
                    "net.partition-drop",
                    f"{self.name}: partition blocks {frame.src}->{frame.dst}",
                )
                return
            if not self._delivers(sender, target):
                self.frames_dropped += 1
                self.network.trace.emit(
                    "net.asymmetry-drop",
                    f"{self.name}: one-way block eats {frame.src}->{frame.dst}",
                )
                return
            target.node._receive(frame, target)
            return
        # Not local to this segment: hand to any forwarding node.
        for interface in self.interfaces:
            if interface is sender:
                continue
            if not self._delivers(sender, interface):
                continue
            if interface.node.forwards and interface.node.can_reach(frame.dst):
                interface.node._forward(frame, interface)
                return
        self.frames_dropped += 1
        self.network.trace.emit(
            "net.unroutable", f"{self.name}: no route to {frame.dst}"
        )


class Hub(Medium):
    """A shared-medium segment: one transmission at a time (the paper's hub)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._busy_until = 0.0

    def _reserve(self, sender: Interface, duration: float) -> float:
        start = max(self.network.kernel.now, self._busy_until)
        self._busy_until = start + duration
        return start


class Switch(Medium):
    """A switched segment: each sender transmits at full rate concurrently.

    The paper's Figure 11 throughput numbers (6.2 Mbps of *application*
    echo throughput on "10 Mbps Ethernet") are only reachable if opposite
    directions do not contend, so the transport-bridging benchmark models
    the segment as switched full-duplex rather than a shared hub.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._busy_until: Dict[Address, float] = {}

    def _reserve(self, sender: Interface, duration: float) -> float:
        busy = self._busy_until.get(sender.address, 0.0)
        start = max(self.network.kernel.now, busy)
        self._busy_until[sender.address] = start + duration
        return start


class Link(Medium):
    """A full-duplex point-to-point link (per-direction contention)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._busy_until: Dict[Address, float] = {}

    def _attach(self, interface: Interface) -> None:
        if len(self.interfaces) >= 2:
            raise NetworkError(f"link {self.name} already has two endpoints")
        super()._attach(interface)

    def _reserve(self, sender: Interface, duration: float) -> float:
        busy = self._busy_until.get(sender.address, 0.0)
        start = max(self.network.kernel.now, busy)
        self._busy_until[sender.address] = start + duration
        return start


class Node:
    """A host on the simulated network.

    Frames arriving for one of the node's own addresses are dispatched to
    registered frame handlers (the socket layer installs one).  Frames for
    other destinations are forwarded if ``forwards`` is set, making any
    multi-homed node a router.
    """

    def __init__(self, network: "Network", name: str, forwards: bool = False):
        self.network = network
        self.name = name
        self.forwards = forwards
        #: False while the host is powered off: it neither sends, receives
        #: nor forwards (chaos-subsystem node churn flips this).
        self.up = True
        self.interfaces: List[Interface] = []
        self._frame_handlers: List[Callable[[Frame, Interface], bool]] = []

    # -- power state (fault injection) ----------------------------------

    def set_up(self, up: bool) -> None:
        """Power the host on or off; a down host drops all traffic."""
        if up == self.up:
            return
        self.up = up
        self.network.trace.emit(
            "net.node", f"{self.name}: {'up' if up else 'down'}", up=up
        )

    # -- attachment ----------------------------------------------------

    def attach(self, medium: Medium, address: Optional[Address] = None) -> Interface:
        """Attach this node to ``medium`` with a (possibly fresh) address."""
        if address is None:
            address = self.network.allocator.allocate(
                f"{self.name}@{medium.name}#{len(self.interfaces)}"
            )
        interface = Interface(self, medium, address)
        self.interfaces.append(interface)
        medium._attach(interface)
        self.network._register_interface(interface)
        return interface

    @property
    def address(self) -> Address:
        """The node's primary address (first interface)."""
        if not self.interfaces:
            raise NetworkError(f"node {self.name} has no interfaces")
        return self.interfaces[0].address

    def addresses(self) -> List[Address]:
        return [interface.address for interface in self.interfaces]

    def interface_on(self, medium: Medium) -> Optional[Interface]:
        for interface in self.interfaces:
            if interface.medium is medium:
                return interface
        return None

    def reachable(self, other: "Node") -> bool:
        """Best-effort check that a request/reply exchange with ``other``
        could traverse the network right now: both hosts powered, and some
        directly shared medium is up, unpartitioned between them and not
        asymmetrically blocked in either direction.  Nodes sharing no
        segment fall back to True (multi-hop routes are not modeled
        here).  In-process shortcuts -- the shard fabric's synchronous
        routed lookups -- consult this so a partition is not invisible to
        calls that never put a frame on the wire."""
        if self is other:
            return True
        if not self.up or not other.up:
            return False
        shared = False
        for interface in self.interfaces:
            medium = interface.medium
            peer = other.interface_on(medium)
            if peer is None:
                continue
            shared = True
            if not medium.up:
                continue
            if medium._delivers(interface, peer) and medium._delivers(
                peer, interface
            ):
                return True
        return not shared

    # -- multicast -------------------------------------------------------

    def join_multicast(self, group: str) -> None:
        for interface in self.interfaces:
            interface.multicast_groups.add(group)

    def leave_multicast(self, group: str) -> None:
        for interface in self.interfaces:
            interface.multicast_groups.discard(group)

    # -- sending -----------------------------------------------------------

    def send_frame(self, frame: Frame, medium: Optional[Medium] = None) -> None:
        """Send ``frame`` out of the appropriate interface.

        Unicast frames are routed via the network's next-hop computation;
        multicast/broadcast frames require an explicit ``medium`` (or a
        single-homed node).
        """
        if not self.interfaces:
            raise NetworkError(f"node {self.name} has no interfaces")
        if not self.up:
            self.network.trace.emit(
                "net.node-drop", f"{self.name}: down, cannot send to {frame.dst}"
            )
            return
        if frame.dst is None or frame.multicast_group is not None:
            if medium is None:
                # No explicit medium: send a copy on every attached segment
                # (receivers elsewhere ignore groups they have not joined).
                for interface in self.interfaces:
                    copy = frame.clone()
                    copy.src = interface.address
                    interface.medium.transmit(interface, copy)
                return
            interface = self.interface_on(medium)
            if interface is None:
                raise NetworkError(f"{self.name} is not attached to {medium.name}")
            frame.src = interface.address
            medium.transmit(interface, frame)
            return
        # Loopback: traffic to one of our own addresses never hits the wire.
        for interface in self.interfaces:
            if interface.address == frame.dst:
                self.network.kernel.call_soon(
                    lambda i=interface, f=frame: self._receive(f, i)
                )
                return
        interface = self.network.next_hop_interface(self, frame.dst)
        if interface is None:
            raise NetworkError(f"{self.name}: no route to {frame.dst}")
        # Stamp the egress interface's address so replies route back over
        # the same segment (multi-homed hosts: LAN + piconet + radio).
        frame.src = interface.address
        interface.medium.transmit(interface, frame)

    def can_reach(self, address: Address) -> bool:
        return self.network.next_hop_interface(self, address) is not None

    # -- receiving ----------------------------------------------------------

    def add_frame_handler(self, handler: Callable[[Frame, Interface], bool]) -> None:
        """Register a handler; handlers returning True consume the frame."""
        self._frame_handlers.append(handler)

    def _receive(self, frame: Frame, interface: Interface) -> None:
        if not self.up:
            return
        for handler in self._frame_handlers:
            if handler(frame, interface):
                return
        self.network.trace.emit(
            "net.unclaimed",
            f"{self.name}: unclaimed {frame.protocol} frame "
            f"{frame.src}:{frame.sport}->{frame.dst}:{frame.dport}",
        )

    def _forward(self, frame: Frame, arrived_on: Interface) -> None:
        if not self.up:
            return
        frame.hops += 1
        if frame.hops > MAX_HOPS:
            self.network.trace.emit(
                "net.ttl", f"{self.name}: hop budget exceeded for {frame.dst}"
            )
            return
        out = self.network.next_hop_interface(self, frame.dst, exclude=arrived_on.medium)
        if out is None:
            self.network.trace.emit(
                "net.unroutable", f"{self.name}: cannot forward to {frame.dst}"
            )
            return
        out.medium.transmit(out, frame)


class Network:
    """Container for nodes and media; owns addressing, routing and tracing."""

    def __init__(self, kernel: Kernel, trace: Optional[TraceRecorder] = None):
        self.kernel = kernel
        self.trace = trace or TraceRecorder()
        self.trace.bind_clock(lambda: kernel.now)
        self.allocator = AddressAllocator()
        self.nodes: Dict[str, Node] = {}
        self.media: Dict[str, Medium] = {}
        self._interfaces_by_address: Dict[Address, Interface] = {}
        self._route_cache: Dict[Tuple[str, Address], Optional[Interface]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, name: str, forwards: bool = False) -> Node:
        if name in self.nodes:
            raise NetworkError(f"duplicate node name: {name!r}")
        node = Node(self, name, forwards=forwards)
        self.nodes[name] = node
        return node

    def add_hub(
        self,
        name: str,
        bandwidth_bps: float,
        latency_s: float,
        frame_overhead_bytes: int = 0,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> Hub:
        return self._add_medium(
            Hub(self, name, bandwidth_bps, latency_s, frame_overhead_bytes, loss_rate, seed)
        )

    def add_link(
        self,
        name: str,
        bandwidth_bps: float,
        latency_s: float,
        frame_overhead_bytes: int = 0,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> Link:
        return self._add_medium(
            Link(self, name, bandwidth_bps, latency_s, frame_overhead_bytes, loss_rate, seed)
        )

    def add_switch(
        self,
        name: str,
        bandwidth_bps: float,
        latency_s: float,
        frame_overhead_bytes: int = 0,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> Switch:
        return self._add_medium(
            Switch(self, name, bandwidth_bps, latency_s, frame_overhead_bytes, loss_rate, seed)
        )

    def _add_medium(self, medium: Medium) -> Medium:
        if medium.name in self.media:
            raise NetworkError(f"duplicate medium name: {medium.name!r}")
        self.media[medium.name] = medium
        self._route_cache.clear()
        return medium

    def _register_interface(self, interface: Interface) -> None:
        if interface.address in self._interfaces_by_address:
            raise NetworkError(f"duplicate address: {interface.address}")
        self._interfaces_by_address[interface.address] = interface
        self._route_cache.clear()

    # -- lookup ------------------------------------------------------------

    def node_of(self, address: Address) -> Node:
        try:
            return self._interfaces_by_address[address].node
        except KeyError:
            raise AddressError(f"no node has address {address}") from None

    # -- routing ------------------------------------------------------------

    def next_hop_interface(
        self, node: Node, dst: Address, exclude: Optional[Medium] = None
    ) -> Optional[Interface]:
        """The interface ``node`` should send on to reach ``dst``.

        Breadth-first search over the medium/forwarding-node graph; results
        are cached (the cache is invalidated on topology changes).
        """
        if exclude is None:
            key = (node.name, dst)
            cached = self._route_cache.get(key, _MISSING)
            if cached is not _MISSING:
                return cached
        result = self._bfs_next_hop(node, dst, exclude)
        if exclude is None:
            self._route_cache[(node.name, dst)] = result
        return result

    def _bfs_next_hop(
        self, node: Node, dst: Address, exclude: Optional[Medium]
    ) -> Optional[Interface]:
        target = self._interfaces_by_address.get(dst)
        if target is None:
            return None
        # Direct delivery if a shared medium reaches the target.
        for interface in node.interfaces:
            if interface.medium is exclude:
                continue
            if interface.medium.interface_for(dst) is not None:
                return interface
        # BFS through forwarding nodes.
        visited_nodes = {node.name}
        queue: List[Tuple[Interface, Node]] = []
        for interface in node.interfaces:
            if interface.medium is exclude:
                continue
            for peer in interface.medium.interfaces:
                if peer.node.name not in visited_nodes and peer.node.forwards:
                    visited_nodes.add(peer.node.name)
                    queue.append((interface, peer.node))
        while queue:
            first_hop, current = queue.pop(0)
            for interface in current.interfaces:
                if interface.medium.interface_for(dst) is not None:
                    return first_hop
                for peer in interface.medium.interfaces:
                    if peer.node.name not in visited_nodes and peer.node.forwards:
                        visited_nodes.add(peer.node.name)
                        queue.append((first_hop, peer.node))
        return None


class _Missing:
    pass


_MISSING = _Missing()
