"""Platform bridges: the mappers and native handles for every platform.

Each module pairs a :class:`~repro.core.mapper.Mapper` subclass (discovery
plus translator lifecycle for one platform) with the
:class:`~repro.core.translator.NativeHandle` implementations that let the
generic, USDL-parameterized translators drive real (simulated) devices.
The USDL documents themselves live in
:mod:`repro.bridges.usdl_library`.
"""

from repro.bridges.usdl_library import document_for, KNOWN_DOCUMENTS
from repro.bridges.upnp_bridge import UPnPMapper
from repro.bridges.bluetooth_bridge import BluetoothMapper
from repro.bridges.rmi_bridge import RmiMapper
from repro.bridges.jini_bridge import JiniMapper
from repro.bridges.mediabroker_bridge import MediaBrokerMapper
from repro.bridges.motes_bridge import MotesMapper
from repro.bridges.webservices_bridge import WebServicesMapper

__all__ = [
    "document_for",
    "KNOWN_DOCUMENTS",
    "UPnPMapper",
    "BluetoothMapper",
    "RmiMapper",
    "JiniMapper",
    "MediaBrokerMapper",
    "MotesMapper",
    "WebServicesMapper",
]
