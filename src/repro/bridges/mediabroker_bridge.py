"""The MediaBroker bridge.

The mapper polls the broker's stream listing.  Each registered stream
``S`` becomes a translator with:

- ``data-out`` (source): a broker subscription to ``S`` -- whatever the
  native producer publishes surfaces on the output port;
- ``data-in`` (sink): a producer registration on ``S.return`` -- messages
  delivered to the translator are published there, where the native
  service can subscribe (the echo direction of the paper's MB test).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.core.errors import ShapeError
from repro.core.mapper import Mapper
from repro.core.messages import UMessage
from repro.core.shapes import Direction, DigitalType
from repro.core.translator import NativeHandle
from repro.core.usdl import UsdlBinding, UsdlDocument, UsdlPort
from repro.platforms.mediabroker.broker import BROKER_PORT, FRAME_OVERHEAD
from repro.platforms.mediabroker.service import MBConsumer, MBProducer
from repro.simnet.addresses import Address
from repro.simnet.sockets import StreamSocket

__all__ = ["MediaBrokerMapper", "MBStreamHandle", "usdl_for_stream"]

RETURN_SUFFIX = ".return"


def usdl_for_stream(stream_name: str, media_type: str) -> UsdlDocument:
    """Generate the USDL document for one MediaBroker stream.

    MB streams are typed, so the translator's port MIME types are
    parameterized by the stream's declared media type (a stream of
    ``image/jpeg`` interoperates with cameras and displays directly);
    unusable type strings fall back to ``application/octet-stream``.
    """
    try:
        mime = DigitalType(media_type)
        if mime.is_pattern:
            raise ShapeError("stream types must be concrete")
    except ShapeError:
        mime = DigitalType("application/octet-stream")
    ports = [
        UsdlPort(
            name="data-out",
            direction=Direction.OUT,
            digital_type=mime,
            binding=UsdlBinding(kind="source", target="outbound"),
        ),
        UsdlPort(
            name="data-in",
            direction=Direction.IN,
            digital_type=mime,
            binding=UsdlBinding(kind="sink", target="inbound"),
        ),
    ]
    return UsdlDocument(
        name=f"mb-stream-{stream_name}",
        platform="mediabroker",
        device_type="mb-stream",
        role="media-stream",
        description=f"MediaBroker stream {stream_name!r} ({mime})",
        ports=ports,
    )


class MBStreamHandle(NativeHandle):
    """Bridges one MediaBroker stream."""

    def __init__(self, mapper: "MediaBrokerMapper", stream_name: str, media_type: str):
        self.mapper = mapper
        self.stream_name = stream_name
        self.media_type = media_type
        runtime = mapper.runtime
        self.consumer = MBConsumer(
            runtime.node,
            runtime.calibration,
            mapper.broker_address,
            stream_name,
            broker_port=mapper.broker_port,
        )
        self.producer = MBProducer(
            runtime.node,
            runtime.calibration,
            mapper.broker_address,
            stream_name + RETURN_SUFFIX,
            media_type,
            broker_port=mapper.broker_port,
        )
        self._callback: Optional[Callable[[UMessage], None]] = None
        #: The MIME type carried by the translator's ports (set at map time
        #: from the generated USDL document).
        self.port_mime = DigitalType("application/octet-stream")

    def invoke(self, binding: UsdlBinding, message: UMessage) -> Generator:
        yield from self.producer.publish(message.payload, message.size)

    def subscribe(self, binding: UsdlBinding, callback) -> None:
        self._callback = callback

    def unsubscribe_all(self) -> None:
        self._callback = None
        self.consumer.close()
        self.producer.close()

    def activate(self) -> Generator:
        yield from self.producer.register()
        yield from self.consumer.subscribe(self._on_data)

    def _on_data(self, payload, size: int, media_type: str) -> None:
        if self._callback is not None:
            self._callback(
                UMessage(
                    mime=self.port_mime,
                    payload=payload,
                    size=size,
                    headers={"mb_stream": self.stream_name, "mb_type": media_type},
                )
            )


class MediaBrokerMapper(Mapper):
    """Service-level bridge for MediaBroker."""

    platform = "mediabroker"

    def __init__(
        self,
        runtime,
        broker_address: Address,
        poll_interval: float = 5.0,
        broker_port: int = BROKER_PORT,
    ):
        super().__init__(runtime)
        self.broker_address = broker_address
        self.broker_port = broker_port
        self.poll_interval = poll_interval
        self._control: Optional[StreamSocket] = None
        self._mapped: Dict[str, tuple] = {}

    def discover(self) -> Generator:
        while True:
            listing = yield from self._list_streams()
            names = {
                name for name in listing if not name.endswith(RETURN_SUFFIX)
            }
            for name in sorted(names - set(self._mapped)):
                yield from self._map(name, listing[name])
            for name in sorted(set(self._mapped) - names):
                translator, _handle = self._mapped.pop(name)
                self.unmap(translator)
            yield self.runtime.kernel.timeout(self.poll_interval)

    def _list_streams(self) -> Generator:
        if self._control is None or self._control.closed:
            self._control = yield StreamSocket.connect(
                self.runtime.node,
                self.runtime.calibration.network,
                self.broker_address,
                self.broker_port,
            )
        self._control.send({"op": "list"}, FRAME_OVERHEAD)
        response, _size = yield self._control.recv()
        return response.get("streams", {})

    def _map(self, name: str, media_type: str) -> Generator:
        document = usdl_for_stream(name, media_type)
        handle = MBStreamHandle(self, name, media_type)
        handle.port_mime = document.port("data-out").digital_type
        yield from handle.activate()
        translator = yield from self.map_device(
            document,
            handle,
            instance_name=name,
            extra_attributes={"mb_stream": name, "mb_type": media_type},
        )
        self._mapped[name] = (translator, handle)
        return translator
