"""The Java RMI bridge.

The mapper polls an RMI registry.  Each bound name becomes a translator
with two octet-stream ports:

- ``data-in`` (sink): messages are marshaled and delivered to the native
  service's ``receive`` remote method.
- ``data-out`` (source): the bridge exports an *ingress* remote object and
  binds it as ``<name>.umiddle`` so native services can send data into the
  semantic space with an ordinary RMI call (this is how the paper's RMI
  test pushes 1400-byte messages through uMiddle).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.bridges.usdl_library import KNOWN_DOCUMENTS
from repro.core.mapper import Mapper
from repro.core.messages import UMessage
from repro.core.translator import NativeHandle
from repro.core.usdl import UsdlBinding
from repro.platforms.rmi.registry import RegistryClient, RegistryError
from repro.platforms.rmi.remote import RemoteRef, RmiConnection, RmiExporter
from repro.simnet.addresses import Address

__all__ = ["RmiMapper", "RmiServiceHandle"]

INGRESS_SUFFIX = ".umiddle"


class RmiServiceHandle(NativeHandle):
    """Drives one remote RMI service; receives ingress calls for it."""

    def __init__(self, mapper: "RmiMapper", name: str, ref: RemoteRef):
        self.mapper = mapper
        self.name = name
        self.ref = ref
        self.connection = RmiConnection(
            mapper.runtime.node, mapper.runtime.calibration, ref
        )
        self._callback: Optional[Callable[[UMessage], None]] = None
        self._ingress_ref: Optional[RemoteRef] = None

    # -- sink: uMiddle -> native service ------------------------------------------

    def invoke(self, binding: UsdlBinding, message: UMessage) -> Generator:
        # Data pushes are pipelined (one-way) so a stream of messages is
        # not throttled to one per round-trip; see RmiConnection.call_oneway.
        yield from self.connection.call_oneway(
            binding.target, message.payload, message.size
        )

    # -- source: native service -> uMiddle -------------------------------------------

    def subscribe(self, binding: UsdlBinding, callback) -> None:
        self._callback = callback

    def unsubscribe_all(self) -> None:
        self._callback = None
        self.connection.close()

    def activate(self) -> Generator:
        """Export the ingress object and bind it next to the service."""

        def ingress_send(args, args_size):
            if self._callback is not None:
                self._callback(
                    UMessage(
                        mime="application/octet-stream",
                        payload=args,
                        size=args_size,
                        headers={"rmi_service": self.name},
                    )
                )
            return None, 0

        self._ingress_ref = self.mapper.exporter.export(
            {"send": ingress_send}, interface="umiddle.Ingress"
        )
        yield from self.mapper.registry_client.bind(
            self.name + INGRESS_SUFFIX, self._ingress_ref, rebind=True
        )

    def deactivate(self) -> Generator:
        if self._ingress_ref is not None:
            self.mapper.exporter.unexport(self._ingress_ref)
            try:
                yield from self.mapper.registry_client.unbind(
                    self.name + INGRESS_SUFFIX
                )
            except RegistryError:
                pass


class RmiMapper(Mapper):
    """Service-level bridge for Java RMI."""

    platform = "rmi"

    def __init__(
        self,
        runtime,
        registry_address: Address,
        poll_interval: float = 5.0,
        registry_port: int = 1099,
    ):
        super().__init__(runtime)
        self.poll_interval = poll_interval
        self.registry_client = RegistryClient(
            runtime.node, runtime.calibration, registry_address, port=registry_port
        )
        self.exporter = RmiExporter(runtime.node, runtime.calibration)
        #: service name -> (translator, handle)
        self._mapped: Dict[str, tuple] = {}

    def discover(self) -> Generator:
        while True:
            try:
                bindings = yield from self.registry_client.list()
            except RegistryError:
                yield self.runtime.kernel.timeout(self.poll_interval)
                continue
            names = {
                name
                for name in bindings
                if not name.endswith(INGRESS_SUFFIX)  # skip our own ingress refs
            }
            for name in sorted(names - set(self._mapped)):
                yield from self._map(name, bindings[name])
            for name in sorted(set(self._mapped) - names):
                translator, handle = self._mapped.pop(name)
                yield from handle.deactivate()
                self.unmap(translator)
            yield self.runtime.kernel.timeout(self.poll_interval)

    def _map(self, name: str, ref: RemoteRef) -> Generator:
        document = KNOWN_DOCUMENTS["rmi-remote-object"]
        handle = RmiServiceHandle(self, name, ref)
        yield from handle.activate()
        translator = yield from self.map_device(
            document,
            handle,
            instance_name=name,
            extra_attributes={"rmi_name": name, "interface": ref.interface},
        )
        self._mapped[name] = (translator, handle)
        return translator
