"""The Bluetooth bridge: mapper plus BIP/HIDP native handles.

The mapper plays the BlueZ role: it periodically runs inquiry on its
piconet, SDP-queries new devices to identify their profile, and maps each
through the matching USDL document.  Bluetooth translator generation
includes the profile channel setup (SDP + L2CAP/OBEX connections), which is
why the recorded mapping durations land near the paper's ~5 instantiations
per second for the HIDP mouse (Figure 10).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Generator, Optional

from repro.bridges.usdl_library import KNOWN_DOCUMENTS, MIME_CLICK
from repro.core.errors import TranslationError
from repro.core.mapper import Mapper
from repro.core.messages import UMessage
from repro.core.translator import NativeHandle
from repro.core.usdl import UsdlBinding
from repro.platforms.bluetooth.baseband import BluetoothAdapter, Piconet, RemoteDevice
from repro.platforms.bluetooth.l2cap import PSM_HID_INTERRUPT, PSM_OBEX
from repro.platforms.bluetooth.obex import OBEX_HEADER, ObexClient, ObexServer
from repro.simnet.sockets import ConnectionClosed, StreamSocket

__all__ = ["BluetoothMapper", "BipCameraHandle", "BipPrinterHandle", "HidMouseHandle"]

_push_psm_counter = itertools.count(5600)

#: device class -> USDL device type
_CLASS_TO_TYPE = {
    "imaging": "bip-imaging",
    "printing": "bip-printing",
    "peripheral": "hid-mouse",
}


class BipCameraHandle(NativeHandle):
    """BIP camera: registers as the camera's push target; every pushed
    image surfaces through the ``source`` binding."""

    def __init__(self, mapper: "BluetoothMapper", device: RemoteDevice):
        self.mapper = mapper
        self.device = device
        self._callback: Optional[Callable[[UMessage], None]] = None
        self._server: Optional[ObexServer] = None

    def invoke(self, binding: UsdlBinding, message: UMessage) -> Generator:
        raise TranslationError("a BIP camera has no inbound bindings")
        yield  # pragma: no cover

    def subscribe(self, binding: UsdlBinding, callback) -> None:
        self._callback = callback

    def unsubscribe_all(self) -> None:
        self._callback = None
        if self._server is not None:
            self._server.close()

    def activate(self) -> Generator:
        """Open our push-target OBEX server and register it with the camera."""
        adapter = self.mapper.adapter
        psm = next(_push_psm_counter)
        self._server = ObexServer(
            adapter.listen_l2cap(psm),
            self.mapper.runtime.calibration,
            on_put=self._on_image,
        )
        stream = yield from adapter.connect_l2cap(self.device.bd_addr, PSM_OBEX)
        client = ObexClient(stream, self.mapper.runtime.calibration)
        yield from client.connect()
        stream.send(
            {
                "op": "register-push",
                "address": str(adapter.bd_addr),
                "psm": psm,
            },
            OBEX_HEADER,
        )
        yield stream.recv()
        stream.close()

    def _on_image(self, name: str, body, size: int, content_type: str) -> None:
        if self._callback is not None:
            self._callback(
                UMessage(
                    mime=content_type or "image/jpeg",
                    payload=body,
                    size=size,
                    headers={"obex_name": name, "bd_addr": str(self.device.bd_addr)},
                )
            )


class BipPrinterHandle(NativeHandle):
    """BIP printer: the ``sink`` binding pushes images over OBEX PUT."""

    def __init__(self, mapper: "BluetoothMapper", device: RemoteDevice):
        self.mapper = mapper
        self.device = device
        self._client: Optional[ObexClient] = None

    def invoke(self, binding: UsdlBinding, message: UMessage) -> Generator:
        client = yield from self._session()
        yield from client.put(
            name=message.headers.get("obex_name", f"print-{message.sequence}.jpg"),
            body=message.payload,
            size=message.size,
            content_type=message.mime.mime,
        )

    def _session(self) -> Generator:
        if self._client is not None and not self._client.stream.closed:
            return self._client
        stream = yield from self.mapper.adapter.connect_l2cap(
            self.device.bd_addr, PSM_OBEX
        )
        client = ObexClient(stream, self.mapper.runtime.calibration)
        yield from client.connect()
        self._client = client
        return client

    def subscribe(self, binding: UsdlBinding, callback) -> None:
        raise TranslationError("a BIP printer has no outbound bindings")

    def unsubscribe_all(self) -> None:
        if self._client is not None:
            self._client.stream.close()
            self._client = None

    def activate(self) -> Generator:
        return
        yield  # pragma: no cover


class HidMouseHandle(NativeHandle):
    """HIDP mouse: reports from the interrupt channel feed the ``event``
    binding (paper Section 5.2: click signals translated to VML)."""

    def __init__(self, mapper: "BluetoothMapper", device: RemoteDevice):
        self.mapper = mapper
        self.device = device
        self._callback: Optional[Callable[[UMessage], None]] = None
        self._channel: Optional[StreamSocket] = None
        self._active = True

    def invoke(self, binding: UsdlBinding, message: UMessage) -> Generator:
        raise TranslationError("a HID mouse has no inbound bindings")
        yield  # pragma: no cover

    def subscribe(self, binding: UsdlBinding, callback) -> None:
        self._callback = callback

    def unsubscribe_all(self) -> None:
        self._active = False
        self._callback = None
        if self._channel is not None:
            self._channel.close()

    def activate(self) -> Generator:
        self._channel = yield from self.mapper.adapter.connect_l2cap(
            self.device.bd_addr, PSM_HID_INTERRUPT
        )
        self.mapper.runtime.kernel.process(
            self._report_loop(), name=f"hid-reports:{self.device.name}"
        )

    def _report_loop(self) -> Generator:
        kernel = self.mapper.runtime.kernel
        bt = self.mapper.runtime.calibration.bluetooth
        while self._active:
            try:
                report, size = yield self._channel.recv()
            except ConnectionClosed:
                return
            # Host-stack HID report processing.
            yield kernel.timeout(bt.hid_report_processing_s)
            if self._callback is not None:
                self._callback(
                    UMessage(
                        mime=MIME_CLICK,
                        payload=report,
                        size=size,
                        headers={"bd_addr": str(self.device.bd_addr)},
                    )
                )


_HANDLE_CLASSES = {
    "bip-imaging": BipCameraHandle,
    "bip-printing": BipPrinterHandle,
    "hid-mouse": HidMouseHandle,
}


class BluetoothMapper(Mapper):
    """Service-level bridge for Bluetooth (the paper's Bluetooth mapper)."""

    platform = "bluetooth"

    #: Consecutive missed inquiries before a mapped device is declared gone.
    #: One miss is routinely a busy radio (a long OBEX transfer overlaps the
    #: inquiry window); real stacks rely on link supervision timeouts.
    MISS_THRESHOLD = 3

    def __init__(self, runtime, piconet: Piconet, poll_interval: float = 5.0):
        super().__init__(runtime)
        self.piconet = piconet
        self.poll_interval = poll_interval
        self.adapter = BluetoothAdapter(runtime.node, piconet, runtime.calibration)
        #: bd_addr string -> translator
        self._mapped: Dict[str, object] = {}
        self._misses: Dict[str, int] = {}

    def discover(self) -> Generator:
        from repro.simnet.addresses import Address

        while True:
            devices = yield from self.adapter.inquiry()
            seen = set()
            for device in devices:
                key = str(device.bd_addr)
                seen.add(key)
                self._misses.pop(key, None)
                if key not in self._mapped:
                    yield from self._map(device)
            # Devices gone from inquiry range for several consecutive polls
            # are unmapped.
            for key in list(self._mapped):
                if key in seen:
                    continue
                self._misses[key] = self._misses.get(key, 0) + 1
                if self._misses[key] >= self.MISS_THRESHOLD:
                    translator = self._mapped.pop(key)
                    self._misses.pop(key, None)
                    self.adapter.detach(Address(key))
                    self.unmap(translator)
            yield self.runtime.kernel.timeout(self.poll_interval)

    def _map(self, device: RemoteDevice) -> Generator:
        device_type = _CLASS_TO_TYPE.get(device.device_class)
        if device_type is None:
            self.runtime.trace(
                "mapper.skipped",
                f"bluetooth: unsupported class {device.device_class!r}",
            )
            return None
        document = KNOWN_DOCUMENTS[device_type]
        started = self.runtime.kernel.now
        # Bluetooth translator generation includes the profile channel
        # setup: paging, an SDP confirmation, and the L2CAP/OBEX channels
        # opened in the handle's activation.
        yield from self.adapter.page(device.bd_addr)
        records = yield from self.adapter.sdp_query(device.bd_addr)
        if not records:
            self.runtime.trace(
                "mapper.skipped", f"bluetooth: {device.name} has no SDP records"
            )
            return None
        handle = _HANDLE_CLASSES[device_type](self, device)
        yield from handle.activate()
        translator = yield from self.map_device(
            document,
            handle,
            instance_name=device.name,
            extra_attributes={"bd_addr": str(device.bd_addr)},
            started_at=started,
        )
        self._mapped[str(device.bd_addr)] = translator
        return translator
