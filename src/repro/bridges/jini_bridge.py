"""The Jini bridge.

The mapper discovers a lookup service over Jini multicast announcement,
polls its registrations, and maps each (non-uMiddle) service into the
semantic space.  Like the RMI bridge it is bidirectional:

- ``data-in`` (sink): messages become remote calls on the native service's
  ``receive`` method;
- ``data-out`` (source): the bridge exports an ingress remote object and
  *joins it back into the lookup service* (interface ``umiddle.Ingress``,
  attribute ``for`` naming the bridged service) so native Jini clients can
  send data into uMiddle through ordinary Jini lookup + RMI.

Lease semantics drive unmapping: a crashed service stops renewing, its
registration evaporates from the lookup service, and the next poll unmaps
its translator.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.core.mapper import Mapper
from repro.core.messages import UMessage
from repro.core.shapes import Direction, DigitalType
from repro.core.translator import NativeHandle
from repro.core.usdl import UsdlBinding, UsdlDocument, UsdlPort
from repro.platforms.jini.lookup import LookupError
from repro.platforms.jini.service import JiniClient, JoinManager, discover_lookup
from repro.platforms.rmi.remote import RmiConnection, RmiExporter
from repro.simnet.addresses import Address

__all__ = ["JiniMapper", "JiniServiceHandle", "JINI_SERVICE_DOCUMENT"]

INGRESS_INTERFACE = "umiddle.Ingress"

JINI_SERVICE_DOCUMENT = UsdlDocument(
    name="jini-service",
    platform="jini",
    device_type="jini-service",
    role="service",
    description="A Jini service joined to a lookup service",
    ports=[
        UsdlPort(
            name="data-in",
            direction=Direction.IN,
            digital_type=DigitalType("application/octet-stream"),
            binding=UsdlBinding(kind="sink", target="receive"),
        ),
        UsdlPort(
            name="data-out",
            direction=Direction.OUT,
            digital_type=DigitalType("application/octet-stream"),
            binding=UsdlBinding(kind="source", target="ingress"),
        ),
    ],
)


class JiniServiceHandle(NativeHandle):
    """Drives one Jini service; receives ingress traffic for it."""

    def __init__(self, mapper: "JiniMapper", item):
        self.mapper = mapper
        self.item = item
        self.connection = RmiConnection(
            mapper.runtime.node, mapper.runtime.calibration, item.ref
        )
        self._callback: Optional[Callable[[UMessage], None]] = None
        self._join: Optional[JoinManager] = None

    def invoke(self, binding: UsdlBinding, message: UMessage) -> Generator:
        yield from self.connection.call_oneway(
            binding.target, message.payload, message.size
        )

    def subscribe(self, binding: UsdlBinding, callback) -> None:
        self._callback = callback

    def unsubscribe_all(self) -> None:
        self._callback = None
        self.connection.close()
        if self._join is not None:
            self.mapper.runtime.kernel.process(
                self._join.leave(), name=f"jini-leave:{self.item.service_id}"
            )

    def activate(self) -> Generator:
        """Export the ingress object and join it to the lookup service."""

        def ingress_send(args, args_size):
            if self._callback is not None:
                self._callback(
                    UMessage(
                        mime="application/octet-stream",
                        payload=args,
                        size=args_size,
                        headers={"jini_service": self.item.service_id},
                    )
                )
            return None, 0

        ref = self.mapper.exporter.export(
            {"send": ingress_send}, interface=INGRESS_INTERFACE
        )
        self._join = JoinManager(
            self.mapper.runtime.node,
            self.mapper.runtime.calibration,
            self.mapper.lookup_address,
            self.mapper.lookup_port,
            interface=INGRESS_INTERFACE,
            ref=ref,
            attributes={"for": self.item.service_id},
        )
        yield from self._join.join()


class JiniMapper(Mapper):
    """Service-level bridge for Jini."""

    platform = "jini"

    def __init__(self, runtime, poll_interval: float = 5.0):
        super().__init__(runtime)
        self.poll_interval = poll_interval
        self.exporter = RmiExporter(runtime.node, runtime.calibration)
        self.lookup_address: Optional[Address] = None
        self.lookup_port: Optional[int] = None
        self._client: Optional[JiniClient] = None
        #: lookup service_id -> translator
        self._mapped: Dict[str, object] = {}

    def discover(self) -> Generator:
        # Phase 1: find a lookup service via multicast announcement.
        while self.lookup_address is None:
            try:
                self.lookup_address, self.lookup_port = yield from discover_lookup(
                    self.runtime.node, self.runtime.calibration
                )
            except LookupError:
                yield self.runtime.kernel.timeout(self.poll_interval)
        self._client = JiniClient(
            self.runtime.node,
            self.runtime.calibration,
            self.lookup_address,
            self.lookup_port,
        )
        # Phase 2: poll registrations; map new services, unmap lapsed ones.
        while True:
            try:
                items = yield from self._client.lookup()
            except LookupError:
                yield self.runtime.kernel.timeout(self.poll_interval)
                continue
            current = {
                item.service_id: item
                for item in items
                if item.interface != INGRESS_INTERFACE  # skip our own joins
            }
            for service_id in sorted(set(current) - set(self._mapped)):
                yield from self._map(current[service_id])
            for service_id in sorted(set(self._mapped) - set(current)):
                translator = self._mapped.pop(service_id)
                self.unmap(translator)
            yield self.runtime.kernel.timeout(self.poll_interval)

    def _map(self, item) -> Generator:
        handle = JiniServiceHandle(self, item)
        yield from handle.activate()
        translator = yield from self.map_device(
            JINI_SERVICE_DOCUMENT,
            handle,
            instance_name=item.attributes.get("name", item.service_id),
            extra_attributes={
                "jini_service_id": item.service_id,
                "jini_interface": item.interface,
                **item.attributes,
            },
        )
        self._mapped[item.service_id] = translator
        return translator
