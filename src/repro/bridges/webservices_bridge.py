"""The web-services bridge.

Unlike the other platforms, web services have no fixed device types: the
mapper *generates* a USDL document from each service's description, one
action input port per operation plus one event output port per operation's
results.  This exercises the dynamic-translator-generation story of
Section 3.4 end to end.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Tuple

from repro.core.mapper import Mapper
from repro.core.messages import UMessage
from repro.core.shapes import Direction, DigitalType
from repro.core.translator import NativeHandle
from repro.core.usdl import UsdlBinding, UsdlDocument, UsdlPort
from repro.platforms.webservices.http import HttpError
from repro.platforms.webservices.service import Operation, WebServiceClient
from repro.simnet.addresses import Address
from repro.simnet.sockets import ConnectionRefused

__all__ = ["WebServicesMapper", "WebServiceHandle", "usdl_from_operations"]

MIME_INVOKE = "application/x-umiddle-invoke"


def usdl_from_operations(service_name: str, operations: List[Operation]) -> UsdlDocument:
    """Generate the USDL document for a described web service."""
    ports: List[UsdlPort] = []
    for operation in operations:
        ports.append(
            UsdlPort(
                name=f"call-{operation.name.lower()}",
                direction=Direction.IN,
                digital_type=DigitalType(MIME_INVOKE),
                binding=UsdlBinding(kind="action", target=operation.name),
            )
        )
        if operation.output_elements:
            ports.append(
                UsdlPort(
                    name=f"result-{operation.name.lower()}",
                    direction=Direction.OUT,
                    digital_type=DigitalType("text/plain"),
                    binding=UsdlBinding(kind="event", target=operation.name),
                )
            )
    return UsdlDocument(
        name=f"ws-{service_name}",
        platform="webservices",
        device_type=f"webservice:{service_name}",
        role="web-service",
        description=f"Generated from the description of {service_name!r}",
        ports=ports,
    )


class WebServiceHandle(NativeHandle):
    """Invokes operations; results surface on the matching event port."""

    def __init__(self, mapper: "WebServicesMapper", address: Address, port: int):
        self.mapper = mapper
        self.address = address
        self.port = port
        self.client = WebServiceClient(mapper.runtime.node, mapper.runtime.calibration)
        self._callbacks: Dict[str, Callable[[UMessage], None]] = {}

    def invoke(self, binding: UsdlBinding, message: UMessage) -> Generator:
        params = message.payload if isinstance(message.payload, dict) else {
            "value": message.payload
        }
        result = yield from self.client.invoke(
            self.address, self.port, binding.target, params, params_size=message.size
        )
        callback = self._callbacks.get(binding.target)
        if callback is not None:
            callback(
                UMessage(
                    mime="text/plain",
                    payload=str(result),
                    size=len(str(result)) + 16,
                    headers={"operation": binding.target},
                )
            )

    def subscribe(self, binding: UsdlBinding, callback) -> None:
        self._callbacks[binding.target] = callback

    def unsubscribe_all(self) -> None:
        self._callbacks.clear()
        self.client.close()


class WebServicesMapper(Mapper):
    """Service-level bridge for web services.

    Web services have no multicast discovery; endpoints are configured
    (``add_endpoint``) and probed periodically, mirroring how the paper's
    deployment would enumerate known service URLs.
    """

    platform = "webservices"

    def __init__(self, runtime, poll_interval: float = 10.0):
        super().__init__(runtime)
        self.poll_interval = poll_interval
        self._endpoints: List[Tuple[Address, int]] = []
        self._mapped: Dict[Tuple[Address, int], object] = {}

    def add_endpoint(self, address: Address, port: int) -> None:
        self._endpoints.append((address, port))

    def discover(self) -> Generator:
        probe_client = WebServiceClient(self.runtime.node, self.runtime.calibration)
        while True:
            for endpoint in list(self._endpoints):
                if endpoint in self._mapped:
                    continue
                try:
                    name, operations = yield from probe_client.describe(*endpoint)
                except (ConnectionRefused, HttpError):
                    continue
                yield from self._map(endpoint, name, operations)
            yield self.runtime.kernel.timeout(self.poll_interval)

    def _map(
        self,
        endpoint: Tuple[Address, int],
        name: str,
        operations: List[Operation],
    ) -> Generator:
        document = usdl_from_operations(name, operations)
        handle = WebServiceHandle(self, endpoint[0], endpoint[1])
        translator = yield from self.map_device(
            document,
            handle,
            instance_name=name,
            extra_attributes={"endpoint": f"{endpoint[0]}:{endpoint[1]}"},
        )
        self._mapped[endpoint] = translator
        return translator
