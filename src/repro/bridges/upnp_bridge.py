"""The UPnP bridge: mapper plus native handle.

The mapper plays the CyberLink control-point role of the paper's testbed:
it watches SSDP (both passive NOTIFY traffic and periodic active searches),
fetches device descriptions, and instantiates the USDL-parameterized
translator for each known device type.  Devices saying ``byebye`` -- or
silently vanishing, detected when a refresh search stops seeing them -- are
unmapped.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List

from repro.bridges.usdl_library import KNOWN_DOCUMENTS
from repro.core.mapper import Mapper
from repro.core.messages import UMessage
from repro.core.translator import NativeHandle
from repro.core.usdl import UsdlBinding
from repro.platforms.upnp.control_point import ControlPoint, DiscoveredDevice
from repro.platforms.upnp.description import DeviceDescription
from repro.platforms.upnp.soap import SoapFault

__all__ = ["UPnPMapper", "UPnPNativeHandle"]


class UPnPNativeHandle(NativeHandle):
    """Drives one UPnP device through the mapper's control point."""

    def __init__(
        self,
        control_point: ControlPoint,
        device: DiscoveredDevice,
        description: DeviceDescription,
    ):
        self.control_point = control_point
        self.device = device
        self.description = description
        #: action name -> (service_type, service_id)
        self._action_index: Dict[str, tuple] = {}
        #: evented variable -> (service_type, service_id)
        self._variable_index: Dict[str, tuple] = {}
        for service in description.services:
            for action in service.actions:
                self._action_index[action.name] = (
                    service.service_type,
                    service.service_id,
                )
            for variable in service.state_variables:
                if variable.evented:
                    self._variable_index[variable.name] = (
                        service.service_type,
                        service.service_id,
                    )
        #: binding target -> callback, populated before activation
        self._event_callbacks: Dict[str, Callable[[UMessage], None]] = {}
        self._sids: List[str] = []

    # -- inbound: uMiddle -> device -----------------------------------------------

    def invoke(self, binding: UsdlBinding, message: UMessage) -> Generator:
        entry = self._action_index.get(binding.target)
        if entry is None:
            raise SoapFault(401, f"device has no action {binding.target!r}")
        service_type, service_id = entry
        arguments = dict(binding.arguments)
        if binding.payload_argument:
            arguments[binding.payload_argument] = message.payload
        yield from self.control_point.invoke(
            self.device, service_type, service_id, binding.target, arguments
        )

    # -- outbound: device -> uMiddle ------------------------------------------------

    def subscribe(
        self, binding: UsdlBinding, callback: Callable[[UMessage], None]
    ) -> None:
        self._event_callbacks[binding.target] = callback

    def unsubscribe_all(self) -> None:
        for sid in self._sids:
            self.control_point.unsubscribe(sid)
        self._sids.clear()
        self._event_callbacks.clear()

    def activate(self) -> Generator:
        """Establish the GENA subscriptions behind the event bindings."""
        service_ids = set()
        for target in self._event_callbacks:
            entry = self._variable_index.get(target)
            if entry is not None:
                service_ids.add(entry[1])
        for service_id in sorted(service_ids):
            sid = yield from self.control_point.subscribe(
                self.device, service_id, self._on_gena_event
            )
            self._sids.append(sid)

    def _on_gena_event(self, variable: str, value: str) -> None:
        callback = self._event_callbacks.get(variable)
        if callback is None:
            return
        callback(
            UMessage(
                mime="text/plain",
                payload=value,
                size=len(str(value)) + 16,
                headers={"upnp_variable": variable, "udn": self.description.udn},
            )
        )


class UPnPMapper(Mapper):
    """Service-level bridge for UPnP (Section 3.2's UPnP mapper)."""

    platform = "upnp"

    def __init__(self, runtime, search_interval: float = 10.0):
        super().__init__(runtime)
        self.search_interval = search_interval
        self.control_point = ControlPoint(runtime.node, runtime.calibration)
        #: UDN -> translator
        self._mapped: Dict[str, object] = {}
        self._pending: set = set()
        self.control_point.on_presence(self._on_presence)

    # -- discovery -----------------------------------------------------------------

    def discover(self) -> Generator:
        while True:
            devices = yield from self.control_point.search()
            seen = {device.usn for device in devices}
            for device in devices:
                if device.usn not in self._mapped and device.usn not in self._pending:
                    yield from self._map(device)
            # Devices that dropped off the network without a byebye.
            for udn in list(self._mapped):
                if udn not in seen:
                    self._unmap_udn(udn)
            yield self.runtime.kernel.timeout(self.search_interval)

    def resync(self) -> Generator:
        """One active search pass: devices that vanished while suspended
        (missed byebyes) are unmapped immediately rather than waiting for
        the discovery loop's next refresh."""
        devices = yield from self.control_point.search()
        seen = {device.usn for device in devices}
        removed = 0
        for udn in list(self._mapped):
            if udn not in seen:
                self._unmap_udn(udn)
                removed += 1
        return removed

    def _on_presence(self, kind: str, device: DiscoveredDevice) -> None:
        if self.suspended:
            return  # a stalled/crashed mapper is deaf to notifications too
        if kind == "alive":
            if device.usn not in self._mapped and device.usn not in self._pending:
                self._pending.add(device.usn)
                self.runtime.kernel.process(
                    self._map_from_notify(device), name=f"upnp-map:{device.usn}"
                )
        elif kind == "byebye":
            self._unmap_udn(device.usn)

    def _map_from_notify(self, device: DiscoveredDevice) -> Generator:
        try:
            yield from self._map(device)
        finally:
            self._pending.discard(device.usn)

    # -- mapping ----------------------------------------------------------------------

    def _map(self, device: DiscoveredDevice) -> Generator:
        document = KNOWN_DOCUMENTS.get(device.device_type)
        if document is None:
            self.runtime.trace(
                "mapper.skipped", f"upnp: no USDL for {device.device_type}"
            )
            return None
        if device.usn in self._mapped:
            return self._mapped[device.usn]
        description = yield from self.control_point.fetch_description(device)
        if device.usn in self._mapped:  # mapped concurrently by notify path
            return self._mapped[device.usn]
        handle = UPnPNativeHandle(self.control_point, device, description)
        translator = yield from self.map_device(
            document,
            handle,
            instance_name=description.friendly_name,
            extra_attributes={"udn": device.usn, "location": device.location},
        )
        self._mapped[device.usn] = translator
        yield from handle.activate()
        return translator

    def _unmap_udn(self, udn: str) -> None:
        translator = self._mapped.pop(udn, None)
        if translator is not None:
            self.unmap(translator)
