"""The USDL document library: one document per supported device type.

Documents are stored as XML text and parsed through the real USDL parser at
import, so the library exercises the same code path a deployment would.
Port counts matter: they drive Figure 10's translator instantiation costs
(the clock's 12 digital + 2 physical ports and 2 hierarchy entities are the
paper's "fourteen ports and two more uMiddle entities").

Well-known uMiddle MIME types used across documents:

- ``application/x-umiddle-switch`` -- unit trigger (switch on/off, press).
- ``application/x-umiddle-click`` -- pointer click events.
- ``application/x-umiddle-sensor`` -- sensor readings.
- ``text/plain`` -- human-readable state (times, temperatures).
- ``image/jpeg`` -- images.
- ``application/octet-stream`` -- untyped data relays (RMI/MB bridging).
"""

from __future__ import annotations

from typing import Dict

from repro.core.errors import UsdlError
from repro.core.usdl import UsdlDocument, parse_usdl

__all__ = [
    "KNOWN_DOCUMENTS",
    "document_for",
    "register_document",
    "load_usdl_file",
    "load_usdl_directory",
    "unregister_document",
    "MIME_SWITCH",
    "MIME_CLICK",
    "MIME_SENSOR",
]

MIME_SWITCH = "application/x-umiddle-switch"
MIME_CLICK = "application/x-umiddle-click"
MIME_SENSOR = "application/x-umiddle-sensor"


UPNP_BINARY_LIGHT = """
<usdl name="upnp-binary-light" platform="upnp"
      device-type="urn:schemas-upnp-org:device:BinaryLight:1">
  <profile role="light" description="A switchable UPnP light"/>
  <ports>
    <digital name="power-on" direction="in" mime="application/x-umiddle-switch">
      <binding kind="action" target="SetPower">
        <argument name="Power" value="1"/>
      </binding>
    </digital>
    <digital name="power-off" direction="in" mime="application/x-umiddle-switch">
      <binding kind="action" target="SetPower">
        <argument name="Power" value="0"/>
      </binding>
    </digital>
    <physical name="illumination" direction="out" perception="visible" media="light"/>
  </ports>
</usdl>
"""

UPNP_CLOCK = """
<usdl name="upnp-clock" platform="upnp"
      device-type="urn:schemas-upnp-org:device:Clock:1">
  <profile role="clock" description="A UPnP clock with time/date/alarm/chime"/>
  <ports>
    <digital name="set-time" direction="in" mime="text/plain">
      <binding kind="action" target="SetTime" payload-argument="NewTime"/>
    </digital>
    <digital name="set-date" direction="in" mime="text/plain">
      <binding kind="action" target="SetDate" payload-argument="NewDate"/>
    </digital>
    <digital name="set-alarm" direction="in" mime="text/plain">
      <binding kind="action" target="SetAlarm" payload-argument="AlarmTime"/>
    </digital>
    <digital name="cancel-alarm" direction="in" mime="application/x-umiddle-switch">
      <binding kind="action" target="CancelAlarm"/>
    </digital>
    <digital name="query-time" direction="in" mime="application/x-umiddle-switch">
      <binding kind="action" target="GetTime"/>
    </digital>
    <digital name="query-date" direction="in" mime="application/x-umiddle-switch">
      <binding kind="action" target="GetDate"/>
    </digital>
    <digital name="chime-on" direction="in" mime="application/x-umiddle-switch">
      <binding kind="action" target="SetChime">
        <argument name="NewChime" value="1"/>
      </binding>
    </digital>
    <digital name="chime-off" direction="in" mime="application/x-umiddle-switch">
      <binding kind="action" target="SetChime">
        <argument name="NewChime" value="0"/>
      </binding>
    </digital>
    <digital name="time" direction="out" mime="text/plain">
      <binding kind="event" target="Time"/>
    </digital>
    <digital name="date" direction="out" mime="text/plain">
      <binding kind="event" target="Date"/>
    </digital>
    <digital name="alarm" direction="out" mime="text/plain">
      <binding kind="event" target="Alarm"/>
    </digital>
    <digital name="chime" direction="out" mime="text/plain">
      <binding kind="event" target="Chime"/>
    </digital>
    <physical name="face" direction="out" perception="visible" media="screen"/>
    <physical name="bell" direction="out" perception="audible" media="air"/>
  </ports>
  <entities>
    <entity name="upnp-device:Clock"/>
    <entity name="upnp-service:TimeService"/>
  </entities>
</usdl>
"""

UPNP_AIR_CONDITIONER = """
<usdl name="upnp-air-conditioner" platform="upnp"
      device-type="urn:schemas-upnp-org:device:AirConditioner:1">
  <profile role="climate" description="A UPnP air conditioner"/>
  <ports>
    <digital name="set-temperature" direction="in" mime="text/plain">
      <binding kind="action" target="SetTemperature"
               payload-argument="NewTemperature"/>
    </digital>
    <digital name="temperature" direction="out" mime="text/plain">
      <binding kind="event" target="Temperature"/>
    </digital>
    <physical name="airflow" direction="out" perception="tangible" media="air"/>
  </ports>
</usdl>
"""

UPNP_MEDIA_RENDERER = """
<usdl name="upnp-media-renderer" platform="upnp"
      device-type="urn:schemas-upnp-org:device:MediaRenderer:1">
  <profile role="display" description="A UPnP MediaRenderer TV"/>
  <ports>
    <digital name="image-in" direction="in" mime="image/jpeg">
      <binding kind="sink" target="Render" payload-argument="Data">
        <argument name="ContentType" value="image/jpeg"/>
      </binding>
    </digital>
    <digital name="now-showing" direction="out" mime="text/plain">
      <binding kind="event" target="CurrentItem"/>
    </digital>
    <physical name="screen" direction="out" perception="visible" media="screen"/>
    <physical name="speaker" direction="out" perception="audible" media="air"/>
  </ports>
</usdl>
"""

BLUETOOTH_BIP_CAMERA = """
<usdl name="bt-bip-camera" platform="bluetooth" device-type="bip-imaging">
  <profile role="camera" description="A Bluetooth Basic Imaging Profile camera"/>
  <ports>
    <digital name="image-out" direction="out" mime="image/jpeg">
      <binding kind="source" target="ImagePush"/>
    </digital>
    <physical name="lens" direction="in" perception="visible" media="light"/>
  </ports>
</usdl>
"""

BLUETOOTH_BIP_PRINTER = """
<usdl name="bt-bip-printer" platform="bluetooth" device-type="bip-printing">
  <profile role="printer" description="A Bluetooth BIP photo printer"/>
  <ports>
    <digital name="image-in" direction="in" mime="image/jpeg">
      <binding kind="sink" target="ImagePush"/>
    </digital>
    <physical name="output" direction="out" perception="visible" media="paper"/>
  </ports>
</usdl>
"""

BLUETOOTH_HID_MOUSE = """
<usdl name="bt-hid-mouse" platform="bluetooth" device-type="hid-mouse">
  <profile role="pointer" description="A Bluetooth HIDP mouse"/>
  <ports>
    <digital name="clicks" direction="out" mime="application/x-umiddle-click">
      <binding kind="event" target="Click"/>
    </digital>
  </ports>
</usdl>
"""

RMI_SERVICE = """
<usdl name="rmi-service" platform="rmi" device-type="rmi-remote-object">
  <profile role="service" description="A Java RMI remote service"/>
  <ports>
    <digital name="data-in" direction="in" mime="application/octet-stream">
      <binding kind="sink" target="receive"/>
    </digital>
    <digital name="data-out" direction="out" mime="application/octet-stream">
      <binding kind="source" target="ingress"/>
    </digital>
  </ports>
</usdl>
"""

MEDIABROKER_STREAM = """
<usdl name="mediabroker-stream" platform="mediabroker" device-type="mb-stream">
  <profile role="media-stream" description="A MediaBroker media stream"/>
  <ports>
    <digital name="data-out" direction="out" mime="application/octet-stream">
      <binding kind="source" target="outbound"/>
    </digital>
    <digital name="data-in" direction="in" mime="application/octet-stream">
      <binding kind="sink" target="inbound"/>
    </digital>
  </ports>
</usdl>
"""

MOTE_SENSOR = """
<usdl name="mote-sensor" platform="motes" device-type="berkeley-mote">
  <profile role="sensor" description="A Berkeley sensor mote"/>
  <ports>
    <digital name="readings" direction="out" mime="application/x-umiddle-sensor">
      <binding kind="event" target="reading"/>
    </digital>
    <digital name="set-interval" direction="in" mime="text/plain">
      <binding kind="action" target="set-interval" payload-argument="interval"/>
    </digital>
    <digital name="sample-now" direction="in" mime="application/x-umiddle-switch">
      <binding kind="action" target="sample-now"/>
    </digital>
    <physical name="environment" direction="in" perception="tangible" media="air"/>
  </ports>
</usdl>
"""

_RAW_DOCUMENTS = {
    "urn:schemas-upnp-org:device:BinaryLight:1": UPNP_BINARY_LIGHT,
    "urn:schemas-upnp-org:device:Clock:1": UPNP_CLOCK,
    "urn:schemas-upnp-org:device:AirConditioner:1": UPNP_AIR_CONDITIONER,
    "urn:schemas-upnp-org:device:MediaRenderer:1": UPNP_MEDIA_RENDERER,
    "bip-imaging": BLUETOOTH_BIP_CAMERA,
    "bip-printing": BLUETOOTH_BIP_PRINTER,
    "hid-mouse": BLUETOOTH_HID_MOUSE,
    "rmi-remote-object": RMI_SERVICE,
    "mb-stream": MEDIABROKER_STREAM,
    "berkeley-mote": MOTE_SENSOR,
}

#: device_type -> parsed, validated document.
KNOWN_DOCUMENTS: Dict[str, UsdlDocument] = {
    device_type: parse_usdl(text) for device_type, text in _RAW_DOCUMENTS.items()
}


def document_for(device_type: str) -> UsdlDocument:
    """The USDL document for ``device_type``; raises UsdlError if unknown."""
    try:
        return KNOWN_DOCUMENTS[device_type]
    except KeyError:
        raise UsdlError(f"no USDL document for device type {device_type!r}") from None


def register_document(document: UsdlDocument, replace: bool = False) -> UsdlDocument:
    """Add a USDL document to the library at runtime.

    This is the paper's extensibility story (Section 3.2): "a new device
    type in a known platform can be incorporated into uMiddle by simply
    writing a translator for that device" -- here, by writing its USDL
    document.  Mappers consult the library on discovery, so devices of the
    new type are bridged without any code changes.
    """
    if document.device_type in KNOWN_DOCUMENTS and not replace:
        raise UsdlError(
            f"device type {document.device_type!r} already registered "
            "(pass replace=True to override)"
        )
    KNOWN_DOCUMENTS[document.device_type] = document
    return document


def load_usdl_file(path, replace: bool = False) -> UsdlDocument:
    """Parse one USDL XML file and register it."""
    with open(path, encoding="utf-8") as handle:
        document = parse_usdl(handle.read())
    return register_document(document, replace=replace)


def load_usdl_directory(path, replace: bool = False) -> Dict[str, UsdlDocument]:
    """Register every ``*.xml`` USDL document under ``path``.

    Returns the documents loaded, keyed by device type.  This is how a
    deployment extends uMiddle declaratively: drop a USDL file into the
    library directory, no code changes.
    """
    import os

    loaded: Dict[str, UsdlDocument] = {}
    for name in sorted(os.listdir(path)):
        if not name.endswith(".xml"):
            continue
        document = load_usdl_file(os.path.join(path, name), replace=replace)
        loaded[document.device_type] = document
    return loaded


def unregister_document(device_type: str) -> None:
    """Remove a runtime-registered document (tests/teardown)."""
    if device_type not in KNOWN_DOCUMENTS:
        raise UsdlError(f"device type {device_type!r} is not registered")
    KNOWN_DOCUMENTS.pop(device_type)
