"""The Berkeley Motes bridge.

The mapper listens to a base station.  The first active message from an
unknown mote id maps a translator for it; motes silent for longer than the
presence timeout are unmapped (motes have no departure protocol -- they
just die or move away).  Readings surface on the translator's ``readings``
output port as ``application/x-umiddle-sensor`` messages.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.bridges.usdl_library import KNOWN_DOCUMENTS, MIME_SENSOR
from repro.core.mapper import Mapper
from repro.core.messages import UMessage
from repro.core.translator import NativeHandle
from repro.core.usdl import UsdlBinding
from repro.platforms.motes.am import ActiveMessage
from repro.platforms.motes.basestation import BaseStation
from repro.platforms.motes.mote import AM_SENSOR_READING

__all__ = ["MotesMapper", "MoteHandle"]


class MoteHandle(NativeHandle):
    """One mote's event conduit plus its command channel."""

    def __init__(self, mote_id: int, base_station: BaseStation):
        self.mote_id = mote_id
        self.base_station = base_station
        self._callback: Optional[Callable[[UMessage], None]] = None

    def invoke(self, binding: UsdlBinding, message: UMessage) -> Generator:
        """Command bindings: retask the mote via a command AM."""
        kernel = self.base_station.kernel
        yield kernel.timeout(0.001)  # command AM marshaling on the host
        payload = {"command": binding.target}
        if binding.payload_argument and message.payload is not None:
            payload[binding.payload_argument] = message.payload
        self.base_station.send_command(self.mote_id, payload)

    def subscribe(self, binding: UsdlBinding, callback) -> None:
        self._callback = callback

    def unsubscribe_all(self) -> None:
        self._callback = None

    def deliver(self, message: ActiveMessage) -> None:
        if self._callback is None:
            return
        self._callback(
            UMessage(
                mime=MIME_SENSOR,
                payload=dict(message.payload),
                size=message.payload_size,
                headers={"mote_id": self.mote_id},
            )
        )


class MotesMapper(Mapper):
    """Service-level bridge for the Berkeley Motes platform."""

    platform = "motes"

    def __init__(
        self,
        runtime,
        base_station: BaseStation,
        presence_timeout: float = 30.0,
        sweep_interval: float = 5.0,
    ):
        super().__init__(runtime)
        self.base_station = base_station
        self.presence_timeout = presence_timeout
        self.sweep_interval = sweep_interval
        #: mote id -> (translator, handle)
        self._mapped: Dict[int, tuple] = {}
        self._pending: set = set()
        base_station.on_message(self._on_message)

    def discover(self) -> Generator:
        """Presence sweep: unmap motes that have fallen silent."""
        while True:
            yield self.runtime.kernel.timeout(self.sweep_interval)
            deadline = self.runtime.kernel.now - self.presence_timeout
            for mote_id, (translator, _handle) in list(self._mapped.items()):
                last = self.base_station.last_heard.get(mote_id, 0.0)
                if last < deadline:
                    del self._mapped[mote_id]
                    self.unmap(translator)

    def resync(self) -> Generator:
        """One immediate presence sweep so motes that died while the mapper
        was suspended are unmapped now, not at the next periodic sweep."""
        yield self.runtime.kernel.timeout(0.0)
        removed = 0
        deadline = self.runtime.kernel.now - self.presence_timeout
        for mote_id, (translator, _handle) in list(self._mapped.items()):
            last = self.base_station.last_heard.get(mote_id, 0.0)
            if last < deadline:
                del self._mapped[mote_id]
                self.unmap(translator)
                removed += 1
        return removed

    def _on_message(self, message: ActiveMessage) -> None:
        if self.suspended:
            return  # a stalled/crashed mapper is deaf to the base station
        if message.am_type != AM_SENSOR_READING:
            return
        entry = self._mapped.get(message.source)
        if entry is not None:
            entry[1].deliver(message)
            return
        if message.source not in self._pending:
            self._pending.add(message.source)
            self.runtime.kernel.process(
                self._map(message.source), name=f"mote-map:{message.source}"
            )

    def _map(self, mote_id: int) -> Generator:
        try:
            document = KNOWN_DOCUMENTS["berkeley-mote"]
            handle = MoteHandle(mote_id, self.base_station)
            translator = yield from self.map_device(
                document,
                handle,
                instance_name=f"mote-{mote_id}",
                extra_attributes={"mote_id": mote_id},
            )
            self._mapped[mote_id] = (translator, handle)
        finally:
            self._pending.discard(mote_id)
