"""Quantifying Section 2.2.3: coarse- versus fine-grained representation.

The paper argues that coarse-grained representation (device types as the
unit of compatibility) (a) requires an ever-growing device-type ontology
that applications must track, and (b) treats "partially compatible"
devices -- its example: MediaRenderer vs Printer, both of which accept and
render content -- as incompatible.  Fine-grained representation (typed
ports) keys compatibility on *data types*, which are fewer and more stable.

This module makes the argument measurable.  A deterministic generator
grows a population of device types out of a (much smaller, slowly growing)
pool of data types; for each population size we count:

- device pairs that can interoperate under **fine-grained** matching
  (some output data type of one equals some input data type of the other);
- pairs that interoperate under **coarse-grained** matching (identical
  device-type names -- the UPnP/Bluetooth-profile model, where only
  same-profile devices interwork);
- how many of the fine-compatible pairs are the paper's "partially
  compatible" cases that coarse granularity loses;
- the reach of an application written on day one: how many of today's
  devices it can use without modification.

The ``granularity`` ablation benchmark tabulates these counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Set, Tuple

__all__ = [
    "SyntheticDeviceType",
    "generate_population",
    "fine_grained_pairs",
    "coarse_grained_pairs",
    "application_reach",
    "GranularityStudy",
    "run_study",
]


@dataclass(frozen=True)
class SyntheticDeviceType:
    """One device type: a name plus typed input/output endpoints."""

    name: str
    inputs: FrozenSet[str]
    outputs: FrozenSet[str]

    def can_send_to(self, other: "SyntheticDeviceType") -> bool:
        return bool(self.outputs & other.inputs)

    def compatible_fine(self, other: "SyntheticDeviceType") -> bool:
        return self.can_send_to(other) or other.can_send_to(self)

    def compatible_coarse(self, other: "SyntheticDeviceType") -> bool:
        return self.name == other.name


def generate_population(
    count: int,
    seed: int = 7,
    initial_data_types: int = 6,
    new_data_type_every: int = 8,
) -> List[SyntheticDeviceType]:
    """Grow ``count`` device types deterministically.

    Mirrors the paper's observation that "new data types are
    less-frequently defined than device types": the data-type pool starts
    at ``initial_data_types`` and gains one member only every
    ``new_data_type_every`` device types.
    """
    rng = random.Random(seed)
    data_types = [f"type-{index}" for index in range(initial_data_types)]
    population: List[SyntheticDeviceType] = []
    for index in range(count):
        if index and index % new_data_type_every == 0:
            data_types.append(f"type-{len(data_types)}")
        n_inputs = rng.randint(0, 2)
        n_outputs = rng.randint(0 if n_inputs else 1, 2)
        inputs = frozenset(rng.sample(data_types, min(n_inputs, len(data_types))))
        outputs = frozenset(rng.sample(data_types, min(n_outputs, len(data_types))))
        population.append(
            SyntheticDeviceType(
                name=f"device-type-{index}", inputs=inputs, outputs=outputs
            )
        )
    return population


def _pairs(population: Sequence[SyntheticDeviceType], predicate) -> int:
    count = 0
    for i, first in enumerate(population):
        for second in population[i + 1:]:
            if predicate(first, second):
                count += 1
    return count


def fine_grained_pairs(population: Sequence[SyntheticDeviceType]) -> int:
    """Distinct interoperable pairs under port-type matching."""
    return _pairs(population, lambda a, b: a.compatible_fine(b))


def coarse_grained_pairs(population: Sequence[SyntheticDeviceType]) -> int:
    """Distinct interoperable pairs under device-type-name matching.

    Distinct *types* never share a name, so with one instance per type this
    counts the pairs a type-name ontology grants without a new translator
    or application update -- the paper's MediaRenderer-vs-Printer loss.
    """
    return _pairs(population, lambda a, b: a.compatible_coarse(b))


def application_reach(
    population: Sequence[SyntheticDeviceType],
    known_at: int,
) -> Tuple[int, int]:
    """(coarse_reach, fine_reach) of an application frozen at ``known_at``.

    The application was written when only the first ``known_at`` device
    types existed.  Under coarse granularity it can drive exactly the
    device types it was coded against; under fine granularity it can drive
    any device accepting a data type that existed back then.
    """
    known_types = {d.name for d in population[:known_at]}
    known_data_types: Set[str] = set()
    for device in population[:known_at]:
        known_data_types |= device.inputs | device.outputs
    coarse_reach = sum(1 for d in population if d.name in known_types)
    fine_reach = sum(
        1 for d in population if (d.inputs | d.outputs) & known_data_types
    )
    return coarse_reach, fine_reach


@dataclass
class GranularityStudy:
    """One row of the granularity study."""

    population: int
    data_types: int
    fine_pairs: int
    coarse_pairs: int
    app_reach_coarse: int
    app_reach_fine: int


def run_study(
    sizes: Sequence[int] = (8, 16, 32, 64),
    seed: int = 7,
    app_written_at: int = 8,
) -> List[GranularityStudy]:
    """The full study: one row per population size."""
    rows = []
    for size in sizes:
        population = generate_population(size, seed=seed)
        data_types = set()
        for device in population:
            data_types |= device.inputs | device.outputs
        coarse_reach, fine_reach = application_reach(population, app_written_at)
        rows.append(
            GranularityStudy(
                population=size,
                data_types=len(data_types),
                fine_pairs=fine_grained_pairs(population),
                coarse_pairs=coarse_grained_pairs(population),
                app_reach_coarse=coarse_reach,
                app_reach_fine=fine_reach,
            )
        )
    return rows
