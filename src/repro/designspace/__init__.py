"""The Section 2 design-space model: dimensions, approaches, Table 1.

Reifies the paper's four architectural dimensions and eight approaches,
the dependency rules among them, and the mutual-compatibility chart
(Table 1), which the ``table1`` benchmark regenerates from the rules.
"""

from repro.designspace.model import (
    APPROACHES,
    DIMENSIONS,
    SPEAKEASY_CHOICES,
    UIC_CHOICES,
    UMIDDLE_CHOICES,
    Approach,
    Dimension,
    approach,
)
from repro.designspace.compatibility import (
    DesignError,
    compatibility_chart,
    compatible,
    format_chart,
    validate_design,
)
from repro.designspace.granularity import (
    GranularityStudy,
    SyntheticDeviceType,
    application_reach,
    coarse_grained_pairs,
    fine_grained_pairs,
    generate_population,
    run_study,
)

__all__ = [
    "Dimension",
    "Approach",
    "DIMENSIONS",
    "APPROACHES",
    "approach",
    "UMIDDLE_CHOICES",
    "UIC_CHOICES",
    "SPEAKEASY_CHOICES",
    "compatible",
    "compatibility_chart",
    "format_chart",
    "validate_design",
    "DesignError",
    "SyntheticDeviceType",
    "generate_population",
    "fine_grained_pairs",
    "coarse_grained_pairs",
    "application_reach",
    "GranularityStudy",
    "run_study",
]
