"""Mutual compatibility of design approaches (Section 2.3, Table 1).

Two approaches can coexist in one design unless:

- they are alternatives along the *same* dimension, or
- one of them presupposes an approach that conflicts with the other
  (aggregated visibility and both granularity choices presuppose mediated
  translation, so none of them coexists with direct translation).

``compatibility_chart`` derives the full 8x8 chart from those rules; the
``table1`` benchmark asserts it reproduces the paper's table cell by cell.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.designspace.model import DIMENSIONS, approach

__all__ = [
    "DesignError",
    "compatible",
    "compatibility_chart",
    "format_chart",
    "validate_design",
]

ORDER: List[str] = ["1-a", "1-b", "2-a", "2-b", "3-a", "3-b", "4-a", "4-b"]


class DesignError(Exception):
    """An inconsistent set of design choices."""


def compatible(first_id: str, second_id: str) -> bool:
    """Can the two approaches coexist in one design?"""
    first = approach(first_id)
    second = approach(second_id)
    if first.id == second.id:
        return True
    if first.dimension == second.dimension:
        return False
    # A requirement on an approach from another dimension excludes that
    # dimension's alternative.
    for left, right in ((first, second), (second, first)):
        for required_id in left.requires:
            required = approach(required_id)
            if right.dimension == required.dimension and right.id != required.id:
                return False
    return True


def compatibility_chart() -> Dict[Tuple[str, str], bool]:
    """The full chart: (row, column) -> coexists? (diagonal omitted)."""
    chart = {}
    for row in ORDER:
        for column in ORDER:
            if row == column:
                continue
            chart[(row, column)] = compatible(row, column)
    return chart


def format_chart() -> str:
    """Render the chart the way Table 1 prints it (O / -)."""
    chart = compatibility_chart()
    header = "     " + "  ".join(f"{c:>3}" for c in ORDER)
    lines = [header]
    for row in ORDER:
        cells = []
        for column in ORDER:
            if row == column:
                cells.append("  .")
            else:
                cells.append("  O" if chart[(row, column)] else "  -")
        lines.append(f"{row:>4} " + "  ".join(cells))
    return "\n".join(lines)


def validate_design(choices: Iterable[str]) -> None:
    """Check a full design: one approach per dimension, pairwise compatible.

    Raises :class:`DesignError` describing the first violation.
    """
    chosen = [approach(c) for c in choices]
    by_dimension: Dict[int, str] = {}
    for item in chosen:
        if item.dimension in by_dimension:
            raise DesignError(
                f"two choices along dimension {item.dimension} "
                f"({DIMENSIONS[item.dimension].name}): "
                f"{by_dimension[item.dimension]} and {item.id}"
            )
        by_dimension[item.dimension] = item.id
    missing = set(DIMENSIONS) - set(by_dimension)
    if missing:
        raise DesignError(f"no choice along dimension(s) {sorted(missing)}")
    ids = [item.id for item in chosen]
    for i, first in enumerate(ids):
        for second in ids[i + 1:]:
            if not compatible(first, second):
                raise DesignError(f"{first} cannot coexist with {second}")
