"""Dimensions and approaches of the interoperability design space.

Section 2.2's four dimensions, each with two approaches:

1. Translation model -- direct (1-a) vs mediated (1-b).
2. Semantic distribution -- scattered (2-a) vs aggregated (2-b) proxies.
3. Intermediary semantics granularity -- coarse- (3-a) vs fine-grained (3-b).
4. Location of the interoperability layer -- at-the-edge (4-a) vs in the
   infrastructure (4-b).

Each approach records the paper's stated advantages and drawbacks, plus its
dependencies (aggregation and both granularity choices presuppose a
mediated translation).  Section 3.1's uMiddle choices and Section 6's
characterizations of UIC and Speakeasy are exported as named designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "Dimension",
    "Approach",
    "DIMENSIONS",
    "APPROACHES",
    "approach",
    "UMIDDLE_CHOICES",
    "UIC_CHOICES",
    "SPEAKEASY_CHOICES",
]


@dataclass(frozen=True)
class Dimension:
    """One architectural dimension (Section 2.2)."""

    number: int
    name: str
    question: str


@dataclass(frozen=True)
class Approach:
    """One point along a dimension."""

    id: str                      # "1-a", "3-b", ...
    dimension: int
    name: str
    summary: str
    pros: Tuple[str, ...] = ()
    cons: Tuple[str, ...] = ()
    #: Approaches this one presupposes (e.g. aggregation needs mediation).
    requires: Tuple[str, ...] = ()


DIMENSIONS: Dict[int, Dimension] = {
    1: Dimension(1, "Translation Model", "How are device semantics translated?"),
    2: Dimension(
        2,
        "Semantic Distribution",
        "Are devices visible/usable from applications native to other platforms?",
    ),
    3: Dimension(
        3,
        "Intermediary Semantics Granularity",
        "How are native devices represented in the intermediary space?",
    ),
    4: Dimension(
        4,
        "Location of Interoperability Layer",
        "Where does translation happen at runtime?",
    ),
}


APPROACHES: Dict[str, Approach] = {
    a.id: a
    for a in [
        Approach(
            id="1-a",
            dimension=1,
            name="Direct Translation",
            summary="Translate one platform's semantics directly into another's.",
            pros=("Minimized semantic loss: a dedicated translator per type pair.",),
            cons=(
                "Does not scale: n(n-1) translators for n device types.",
            ),
        ),
        Approach(
            id="1-b",
            dimension=1,
            name="Mediated Translation",
            summary="Translate to/from common intermediary representations.",
            pros=("Scales: at most one translator per device type.",),
            cons=(
                "Platform-neutral common representation may lose original "
                "device semantics.",
            ),
        ),
        Approach(
            id="2-a",
            dimension=2,
            name="Scattered Proxies",
            summary="Proxy representations of a device appear on peer platforms.",
            pros=(
                "Native applications can use foreign devices without "
                "modification.",
            ),
            cons=("Per-platform proxies must be maintained everywhere.",),
        ),
        Approach(
            id="2-b",
            dimension=2,
            name="Aggregated Proxies",
            summary="Proxies are visible only in the intermediary semantic space.",
            pros=(
                "Applications atop the intermediary space see every platform; "
                "such applications are portable across smart spaces.",
            ),
            cons=(
                "Native (per-platform) applications cannot reach devices on "
                "other platforms.",
            ),
            requires=("1-b",),
        ),
        Approach(
            id="3-a",
            dimension=3,
            name="Coarse-grained Representation",
            summary="Device types encapsulate all operations and semantics.",
            pros=("Simple matching of devices to requests by type name.",),
            cons=(
                "Needs an ever-growing device-type ontology; applications only "
                "use currently defined types.",
                "Partially compatible devices (MediaRenderer vs Printer) are "
                "treated as incompatible.",
            ),
            requires=("1-b",),
        ),
        Approach(
            id="3-b",
            dimension=3,
            name="Fine-grained Representation",
            summary="Devices decompose into typed communication endpoints.",
            pros=(
                "Data types change far less often than device types, so "
                "applications cope with new devices without modification.",
            ),
            cons=(
                "Interfaces no longer encode device roles; applications need "
                "an extra facility to specify roles (Service Shaping).",
            ),
            requires=("1-b",),
        ),
        Approach(
            id="4-a",
            dimension=4,
            name="At-the-Edge",
            summary="Each device translates its own semantics for its peers.",
            pros=("Direct communication without an intermediary node.",),
            cons=(
                "Devices need extra facilities (mobile code runtimes).",
                "Cannot bridge different physical transports.",
            ),
        ),
        Approach(
            id="4-b",
            dimension=4,
            name="In-the-Infrastructure",
            summary="Intermediary network nodes perform the translation.",
            pros=(
                "No device modification; bridges different physical "
                "transports.",
            ),
            cons=("Requires deployed intermediary nodes.",),
        ),
    ]
}


def approach(approach_id: str) -> Approach:
    try:
        return APPROACHES[approach_id]
    except KeyError:
        raise KeyError(
            f"unknown approach {approach_id!r}; expected one of {sorted(APPROACHES)}"
        ) from None


#: Section 3.1: uMiddle's position in the design space.
UMIDDLE_CHOICES: Tuple[str, ...] = ("1-b", "2-b", "3-b", "4-b")
#: Section 6: UIC and Speakeasy "take the same design choices".
UIC_CHOICES: Tuple[str, ...] = ("1-b", "2-b", "3-a", "4-a")
SPEAKEASY_CHOICES: Tuple[str, ...] = ("1-b", "2-b", "3-a", "4-a")
