"""Exception hierarchy for the uMiddle core."""

from __future__ import annotations

__all__ = [
    "UMiddleError",
    "ShapeError",
    "PortError",
    "UsdlError",
    "TranslationError",
    "TransportError",
    "DirectoryError",
    "BindingError",
    "CodecError",
]


class UMiddleError(Exception):
    """Base class for all uMiddle errors."""


class ShapeError(UMiddleError):
    """Malformed data types, port specs or shapes."""


class PortError(UMiddleError):
    """Port misuse: wrong direction, detached translator, duplicate names."""


class UsdlError(UMiddleError):
    """Invalid USDL documents (parse or validation failures)."""


class TranslationError(UMiddleError):
    """A device-level translation failed (native invocation errors)."""


class TransportError(UMiddleError):
    """Message-path failures: unknown ports, unreachable runtimes."""


class DirectoryError(UMiddleError):
    """Directory failures: duplicate registrations, unknown translators."""


class BindingError(UMiddleError):
    """Dynamic-binding failures: incompatible ports, bad queries."""


class CodecError(UMiddleError):
    """Malformed or truncated binary wire frames and journal bodies."""
