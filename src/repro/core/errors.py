"""Exception hierarchy for the uMiddle core."""

from __future__ import annotations

__all__ = [
    "UMiddleError",
    "ShapeError",
    "PortError",
    "UsdlError",
    "TranslationError",
    "InvokeError",
    "TransportError",
    "DirectoryError",
    "ShardUnavailable",
    "BindingError",
    "CodecError",
    "SagaError",
]


class UMiddleError(Exception):
    """Base class for all uMiddle errors."""


class ShapeError(UMiddleError):
    """Malformed data types, port specs or shapes."""


class PortError(UMiddleError):
    """Port misuse: wrong direction, detached translator, duplicate names."""


class UsdlError(UMiddleError):
    """Invalid USDL documents (parse or validation failures)."""


class TranslationError(UMiddleError):
    """A device-level translation failed (native invocation errors)."""


class InvokeError(TranslationError):
    """One failed translator invocation, in structured form.

    Raised by :meth:`Translator.invoke` (and the generic translator's
    native-invoke path) instead of letting bare platform exceptions
    escape.  The saga coordinator reads ``retryable`` to decide between
    re-driving the step and running compensations; other callers get a
    stable exception surface carrying the failing translator.

    Attributes:
        translator_id: the translator whose invocation failed.
        step: saga step index when invoked from a saga, else ``None``.
        cause: the underlying platform exception, if any.
        retryable: True when the failure is transient (breaker shed, or
            the platform exception declared ``retryable = True``); a saga
            burns retry budget on these and compensates on the rest.
    """

    def __init__(
        self,
        translator_id: str,
        detail: str = "",
        step=None,
        cause: "Exception | None" = None,
        retryable: bool = False,
    ):
        self.translator_id = translator_id
        self.step = step
        self.cause = cause
        self.retryable = retryable
        self.detail = detail or (str(cause) if cause is not None else "")
        label = f"invoke failed on {translator_id!r}"
        if step is not None:
            label += f" (step {step})"
        if self.detail:
            label += f": {self.detail}"
        super().__init__(label)


class TransportError(UMiddleError):
    """Message-path failures: unknown ports, unreachable runtimes."""


class DirectoryError(UMiddleError):
    """Directory failures: duplicate registrations, unknown translators."""


class ShardUnavailable(DirectoryError):
    """A keyed routed lookup could not reach any holder of a shard.

    Raised by the sharded lookup surface instead of silently returning a
    partial result when a sub-shard's primary is unreachable (crashed,
    partitioned away, or quarantined) and no ranked replica or stale
    cache entry can serve the bucket.  Callers that can tolerate an
    incomplete view (standing-query bindings, saga resolution) catch it
    and hold their current state; everyone else gets a stable structured
    surface instead of a wrong answer.

    Attributes:
        shard: the virtual shard that could not be served.
        owner: the shard's primary owner under the caller's map (``None``
            before any membership view converged).
        epoch: the caller's ownership epoch when the lookup failed.
        retryable: True when the failure is transient (owner expected to
            heal or hand off within a lease) -- currently always True.
    """

    def __init__(
        self,
        shard: int,
        owner: "str | None" = None,
        epoch: int = 0,
        retryable: bool = True,
    ):
        self.shard = shard
        self.owner = owner
        self.epoch = epoch
        self.retryable = retryable
        label = f"shard {shard} unavailable"
        if owner is not None:
            label += f" (primary {owner!r} unreachable)"
        label += f" [epoch {epoch}]"
        super().__init__(label)


class BindingError(UMiddleError):
    """Dynamic-binding failures: incompatible ports, bad queries."""


class CodecError(UMiddleError):
    """Malformed or truncated binary wire frames and journal bodies."""


class SagaError(UMiddleError):
    """Saga misuse: empty step lists, begin on a crashed or
    saga-disabled runtime, malformed step actions."""
