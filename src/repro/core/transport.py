"""The uMiddle transport module (Figure 7).

Responsibilities:

- **Message paths** between an output port and an input port, created with
  :meth:`Transport.connect` (Figure 7-1).  Each path owns a bounded
  *translation buffer* (the buffer Section 5.3 observes filling up when the
  consumer side is slower) and an optional :class:`~repro.core.qos.QosPolicy`.
- **Inter-node delivery**: translators on different uMiddle runtimes
  communicate through per-peer TCP streams carrying envelope-marshaled
  messages (Figure 5's transport modules on hosts H1/H2).
- **Remote path control**: a runtime may request a *peer* runtime to create
  or tear down a path whose source port lives on that peer, so applications
  can wire any two ports in the federation from wherever they run.

Query-based connection (Figure 7-2) lives in :mod:`repro.core.binding`,
which drives this module.

Cost model: each delivery charges the transport dispatch cost; paths whose
endpoints translate *different* native platforms additionally charge the
cross-representation conversion cost (this is what makes the paper's RMI-MB
bridge slower than the RMI echo in Figure 11); remote deliveries charge
envelope marshal costs plus TCP per-segment processing in the per-peer
sender process.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from typing import Deque, Dict, Generator, List, Optional, Tuple, Union, TYPE_CHECKING

from repro.core.codec import BinaryFrame, CodecError, WireDecoder, WireEncoder
from repro.core.errors import TransportError
from repro.core.health import OPEN, CircuitBreaker
from repro.core.messages import UMessage
from repro.core.ports import DigitalInputPort, DigitalOutputPort
from repro.core.profile import PortRef
from repro.core.qos import DropPolicy, QosPolicy
from repro.simnet.kernel import Event
from repro.simnet.sockets import (
    ConnectionClosed,
    ConnectionRefused,
    SocketError,
    StreamListener,
    StreamSocket,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import UMiddleRuntime

__all__ = ["MessagePath", "RemotePathHandle", "Transport"]

_path_counter = itertools.count(1)

#: Fixed envelope header bytes on the wire for inter-runtime messages
#: (JSON wire path; the binary codec charges actual encoded bytes instead).
ENVELOPE_HEADER_BYTES = 64


class _AdaptiveBatch:
    """Per-peer load-adaptive batching state (codec mode only).

    Caps start at the PR 5 constants and move with observed backlog: they
    grow while the outbox outruns a full pipeline window and decay back
    once the peer has been idle, so sustained throughput gets big frames
    and wide windows while a quiet peer keeps single-frame latency.
    """

    __slots__ = ("max_envelopes", "max_bytes", "window", "flush_delay_s",
                 "idle_rounds")

    def __init__(self, max_envelopes: int, max_bytes: int, window: int):
        self.max_envelopes = max_envelopes
        self.max_bytes = max_bytes
        self.window = window
        #: Brief pre-send wait letting a forming batch fill while the
        #: producer is hot; zero whenever the peer has recently drained,
        #: so low-load sends are never delayed.
        self.flush_delay_s = 0.0
        self.idle_rounds = 0


class MessagePath:
    """A unidirectional message path from a local output port to an input.

    The destination is either a local :class:`DigitalInputPort` or a remote
    :class:`PortRef`.  Messages flow through the path's translation buffer;
    a delivery process drains it, charging the calibrated costs.
    """

    def __init__(
        self,
        transport: "Transport",
        src: DigitalOutputPort,
        dst: Union[DigitalInputPort, PortRef],
        qos: Optional[QosPolicy] = None,
        path_id: Optional[str] = None,
    ):
        self.transport = transport
        self.src = src
        self.dst = dst
        self.qos = qos or QosPolicy()
        self.path_id = path_id or f"{transport.runtime.runtime_id}:p{next(_path_counter)}"
        umiddle = transport.runtime.calibration.umiddle
        self.capacity = self.qos.buffer_capacity or umiddle.translation_buffer_capacity
        self._buffer: Deque[UMessage] = deque()
        self._wakeup: Optional[Event] = None
        self.closed = False
        #: True for application paths recorded in the write-ahead journal
        #: (paths created by a DynamicBinding are derived state -- the
        #: journaled binding recreates them on recovery instead).
        self.journaled = False

        # Destination platform, for cross-representation accounting.
        if isinstance(dst, DigitalInputPort):
            self._dst_platform: Optional[str] = dst.translator.platform
        else:
            self._dst_platform = transport.runtime.directory.platform_of(
                dst.translator_id
            )

        self.messages_enqueued = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_delivered = 0
        self.peak_buffer = 0
        self._space_waiters: Deque[Event] = deque()

        self._process = transport.runtime.kernel.process(
            self._run(), name=f"path:{self.path_id}"
        )

    # -- identity ------------------------------------------------------------

    @property
    def src_ref(self) -> PortRef:
        return self.src.ref

    @property
    def dst_ref(self) -> PortRef:
        if isinstance(self.dst, DigitalInputPort):
            return self.dst.ref
        return self.dst

    @property
    def is_remote(self) -> bool:
        return not isinstance(self.dst, DigitalInputPort)

    @property
    def is_cross_platform(self) -> bool:
        """True when source and destination translate different platforms.

        Unknown destination platforms (remote translator already gone from
        the directory) conservatively count as cross-platform.
        """
        return self._dst_platform is None or (
            self.src.translator.platform != self._dst_platform
        )

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    # -- ingress --------------------------------------------------------------

    def enqueue(self, message: UMessage) -> bool:
        """Admit ``message`` to the translation buffer.

        Returns False when the message was dropped by the overflow policy.
        """
        if self.closed:
            return False
        if len(self._buffer) >= self.capacity:
            self.messages_dropped += 1
            if self.transport.runtime.tracing:
                self.transport.runtime.trace(
                    "transport.drop",
                    f"path {self.path_id}: translation buffer full",
                    size=message.size,
                    policy=self.qos.drop_policy.value,
                )
            if self.qos.drop_policy is DropPolicy.DROP_OLDEST:
                self._buffer.popleft()
            else:
                return False
        self._buffer.append(message)
        self.messages_enqueued += 1
        self.peak_buffer = max(self.peak_buffer, len(self._buffer))
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return True

    def enqueue_flow(self, message: UMessage):
        """Flow-controlled admission (generator): waits for buffer space
        instead of dropping.

        This is the backpressure variant of :meth:`enqueue`, used by
        cooperative senders (``DigitalOutputPort.send_flow``).  Returns
        True once admitted, False if the path closed while waiting.
        """
        kernel = self.transport.runtime.kernel
        while not self.closed and len(self._buffer) >= self.capacity:
            waiter = kernel.event(name=f"path-space:{self.path_id}")
            self._space_waiters.append(waiter)
            yield waiter
        if self.closed:
            return False
        return self.enqueue(message)

    # -- delivery -------------------------------------------------------------

    def _run(self) -> Generator:
        runtime = self.transport.runtime
        kernel = runtime.kernel
        umiddle = runtime.calibration.umiddle
        while not self.closed:
            if not self._buffer:
                self._wakeup = kernel.event(name=f"path-wait:{self.path_id}")
                yield self._wakeup
                self._wakeup = None
                continue
            message = self._buffer.popleft()
            if self._space_waiters:
                waiter = self._space_waiters.popleft()
                if not waiter.triggered:
                    waiter.succeed()
            if self.qos.rate is not None:
                delay = self.qos.rate.delay_for(message.size, kernel.now)
                if delay > 0:
                    yield kernel.timeout(delay)
            yield kernel.timeout(umiddle.transport_dispatch_s)
            if self.is_cross_platform:
                yield kernel.timeout(
                    umiddle.cross_representation_fixed_s
                    + umiddle.cross_representation_per_byte_s * message.size
                )
            if self.closed:
                return
            if isinstance(self.dst, DigitalInputPort):
                result = self.dst.deliver(message)
                if hasattr(result, "send") and hasattr(result, "throw"):
                    yield from result
            else:
                self.transport._enqueue_remote(self.dst, message, path=self)
            self.messages_delivered += 1
            self.bytes_delivered += message.size

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._buffer.clear()
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        while self._space_waiters:
            waiter = self._space_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
        self.transport._forget_path(self)


class RemotePathHandle:
    """Handle for a path created on a *peer* runtime on our behalf."""

    def __init__(self, transport: "Transport", owner_runtime_id: str, path_id: str):
        self.transport = transport
        self.owner_runtime_id = owner_runtime_id
        self.path_id = path_id
        self.closed = False

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.transport._send_control(
            self.owner_runtime_id, {"kind": "disconnect", "path_id": self.path_id}
        )


class Transport:
    """One runtime's transport module.

    Peer delivery is resilient: envelopes bound for a peer accumulate in a
    bounded per-peer *spool* and the sender process retries failed
    deliveries with exponential backoff, so a peer that crashes and
    restarts within the retry budget loses no control-plane messages.
    A peer that stays dead past the budget has its directory entries
    reaped immediately (crash-triggered lease expiry)."""

    #: First retry delay after a failed peer delivery; doubles per attempt.
    RETRY_INITIAL_BACKOFF_S = 0.25
    #: Ceiling on the exponential backoff between attempts.
    RETRY_MAX_BACKOFF_S = 4.0
    #: Delivery attempts per envelope before declaring it undeliverable.
    MAX_SEND_ATTEMPTS = 16
    #: Bounded spool: envelopes held per peer while it is unreachable;
    #: beyond this the oldest spooled envelope is dropped.
    SPOOL_CAPACITY = 256
    #: Receiver-side dedup: number of (origin, stream) high-water marks
    #: tracked before the least-recently-used stream is forgotten.
    DEDUP_WINDOW = 1024
    #: Sequence numbers reserved ahead per durable ``seq-reserve`` record.
    #: The reservation is forced to stable storage before the first
    #: envelope in its range can reach the outbox, so a sender recovering
    #: from a lost group-commit window (or a truncated journal tail) never
    #: re-stamps a sequence number a receiver may already hold as its
    #: high-water mark -- which would make it suppress *new* messages as
    #: duplicates.  One forced fsync per SEQ_RESERVE_CHUNK stamps.
    SEQ_RESERVE_CHUNK = 64
    #: Batching mode: most envelopes coalesced into one wire frame.
    BATCH_MAX_ENVELOPES = 32
    #: Batching mode: soft byte ceiling per batch frame (a single envelope
    #: larger than this still ships, alone).
    BATCH_MAX_BYTES = 8192
    #: Batching mode: batches in flight before the sender blocks on the
    #: stream's drain barrier; acks are journaled in order afterwards.
    PIPELINE_WINDOW = 4
    #: Per-envelope framing bytes inside a batch frame (length prefix +
    #: offsets), charged on top of the shared ENVELOPE_HEADER_BYTES.
    BATCH_SUBHEADER_BYTES = 8
    #: Load-adaptive ceilings (codec mode): batch caps and the pipeline
    #: window double under sustained backlog up to these, and decay back
    #: to the PR 5 constants when the peer goes idle.
    ADAPT_MAX_ENVELOPES = 256
    ADAPT_MAX_BYTES = 65536
    ADAPT_MAX_WINDOW = 16
    #: Flush-timer band: a persistent-but-underfull backlog grows the
    #: pre-send wait from the floor toward the ceiling; a drained outbox
    #: snaps it back to zero (low-load sends are never delayed).
    ADAPT_FLUSH_MIN_S = 0.0002
    ADAPT_FLUSH_MAX_S = 0.002

    def __init__(self, runtime: "UMiddleRuntime", port: int):
        self.runtime = runtime
        self.port = port
        #: When True the per-peer senders run the batched + pipelined data
        #: plane; when False they reproduce the stop-and-wait wire and
        #: journal behavior byte for byte.
        self.batching = bool(getattr(runtime, "batching_enabled", False))
        #: Binary wire codec: envelopes and batch frames to peers that
        #: completed the ``codec-hello`` handshake ship as interned binary
        #: frames; everything else stays canonical JSON (per-peer
        #: fallback), so mixed-version federations interoperate.
        self.codec = bool(getattr(runtime, "codec_enabled", False))
        #: Load-adaptive batching replaces the fixed batch constants; it
        #: rides the codec flag so the default-off data plane is PR 6
        #: byte for byte.
        self.adaptive = self.codec and self.batching
        #: Data-plane v3: intra-batch delta encoding and zlib block
        #: compression, negotiated per peer as a ``z`` capability bit on
        #: the codec hello/welcome.  Implies the codec (the runtime
        #: constructor enforces it); peers that never advertise ``z`` keep
        #: receiving plain codec (or JSON) frames.
        self.compression = bool(getattr(runtime, "compression_enabled", False))
        #: Peers confirmed (via hello/welcome) to decode binary frames.
        self._codec_ready: set = set()
        #: Peers confirmed (via the ``z`` capability bit) to decode delta
        #: batches and compressed bulk frames.
        self._z_ready: set = set()
        #: Peers we already offered the codec to (one hello per peer).
        self._hello_sent: set = set()
        #: Per-peer symbol-interning encoders, reset with their stream.
        self._encoders: Dict[str, WireEncoder] = {}
        #: Per-peer adaptive batching state (codec mode only).
        self._adaptive: Dict[str, _AdaptiveBatch] = {}
        self.codec_frames_sent = 0
        self.codec_fallbacks = 0
        self.batch_adaptations = 0
        self.delta_batches_sent = 0
        #: src ref -> immutable snapshot of bound paths, rebuilt on
        #: register/forget so per-message fan-out iterates allocation-free.
        self._paths_by_src: Dict[str, Tuple[MessagePath, ...]] = {}
        self._paths_by_id: Dict[str, MessagePath] = {}
        #: Streams to peers, keyed by runtime id.
        self._peer_streams: Dict[str, StreamSocket] = {}
        self._accepted_streams: List[StreamSocket] = []
        self._peer_outboxes: Dict[str, Deque[Tuple[str, dict, int]]] = {}
        self._peer_wakeups: Dict[str, Event] = {}
        self._peer_senders: Dict[str, object] = {}
        #: Sender-side per-(sender, path) sequence counters: stream key ->
        #: last sequence number stamped on an outgoing envelope.
        self._stream_seqs: Dict[str, int] = {}
        #: stream key -> highest sequence number covered by a durable
        #: ``seq-reserve`` journal record (see SEQ_RESERVE_CHUNK).
        self._stream_reserved: Dict[str, int] = {}
        #: Receiver-side dedup window: (origin runtime, stream key) ->
        #: highest sequence number delivered, LRU-bounded to DEDUP_WINDOW.
        self._dedup: "OrderedDict[Tuple[str, str], int]" = OrderedDict()
        self.messages_relayed = 0
        self.batches_sent = 0
        self.undeliverable = 0
        self.retries = 0
        self.spool_dropped = 0
        self.spool_flushed = 0
        self.duplicates_suppressed = 0
        self.respooled = 0
        #: Journaled paths closed while the journal was muted (crash
        #: teardown); a warm restart appends their close records.
        self._orphaned_paths: List[str] = []
        #: Per-peer delivery breakers, created lazily on the first exhausted
        #: retry budget.  While a breaker is open, new envelopes for that
        #: peer are flushed instead of spooled, and the sender probes with a
        #: single attempt instead of a full retry budget.
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._listener: Optional[StreamListener] = None
        self.started = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self.started:
            return
        self.started = True
        self._listener = StreamListener(
            self.runtime.node, self.runtime.calibration.network, self.port
        )
        self.runtime.kernel.process(
            self._accept_loop(), name=f"transport-accept:{self.runtime.runtime_id}"
        )
        # Spooled envelopes survive a stop/crash; resume draining them.
        for runtime_id, outbox in self._peer_outboxes.items():
            if outbox and runtime_id not in self._peer_senders:
                self._spawn_sender(runtime_id)

    def stop(self, graceful: bool = True) -> None:
        """Stop serving.  ``graceful=False`` models a crash: streams are
        aborted without FIN, so peers only notice on their next send."""
        self.started = False
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for stream in list(self._peer_streams.values()):
            if graceful:
                stream.close()
            else:
                stream.abort()
        self._peer_streams.clear()
        for stream in list(self._accepted_streams):
            if graceful:
                stream.close()
            else:
                stream.abort()
        self._accepted_streams.clear()
        for sender in list(self._peer_senders.values()):
            if sender.is_alive:  # type: ignore[attr-defined]
                sender.kill("transport stopped")  # type: ignore[attr-defined]
        self._peer_senders.clear()
        self._peer_wakeups.clear()
        # A warm restart clears breakers and rediscovers peer health from
        # scratch; a cold restart (:meth:`recover`) restores journaled open
        # breakers half-open instead, so a recovered runtime probes known
        # dead peers rather than re-burning full retry budgets on them.
        self._breakers.clear()
        for path in list(self._paths_by_id.values()):
            path.close()

    # -- cold restart (journal recovery) -------------------------------------

    def drain_orphaned_paths(self) -> List[str]:
        """Journaled paths torn down while the journal was muted; the
        caller (a warm restart) owes the journal their close records."""
        orphaned = self._orphaned_paths
        self._orphaned_paths = []
        return orphaned

    def discard_state(self) -> None:
        """``crash(lose_state=True)`` semantics: the spool, sequence
        counters, dedup window and breakers die with the process.  Paths
        were already torn down by :meth:`stop`."""
        self._peer_outboxes.clear()
        self._breakers.clear()
        self._stream_seqs.clear()
        self._stream_reserved.clear()
        self._dedup.clear()
        # Adaptive batching state is in-memory only (a recovered sender
        # re-learns the load).  Codec negotiation dies here too, but the
        # journaled ``codec-ready`` records let :meth:`recover` restore
        # it, so a cold-crashed runtime resumes binary frames without
        # respooling JSON until re-welcomed.
        self._codec_ready.clear()
        self._z_ready.clear()
        self._hello_sent.clear()
        self._encoders.clear()
        self._adaptive.clear()

    def recover(self, state) -> None:
        """Rebuild transport state from a :class:`~repro.core.journal.
        RecoveredState`: sequence counters resume past every journaled
        assignment or reservation (respools must not reuse sequence
        numbers), unacked envelopes are respooled in order, and journaled
        open breakers come back *half-open* -- probe-eligible immediately,
        but one failure away from re-opening -- instead of closed.

        ``state`` doubles as the journal's post-replay mirror, so the
        pruning below (dropping spool entries that are not respooled) is
        written back into it: the recovery checkpoint then records exactly
        the live outbox, keeping ack/drop FIFO pops aligned across a
        second crash."""
        # A truncated tail may have eaten spool records (and even the odd
        # reservation) for sequence numbers that were already delivered;
        # skipping a full reservation chunk ahead keeps them unreissued.
        bump = self.SEQ_RESERVE_CHUNK if state.truncated else 0
        for stream in list(state.stream_seqs):
            seq = state.stream_seqs[stream] + bump
            state.stream_seqs[stream] = seq
            self._stream_seqs[stream] = max(self._stream_seqs.get(stream, 0), seq)
        for peer, entries in state.spool.items():
            outbox = self._peer_outboxes.setdefault(peer, deque())
            kept = []
            for envelope, size in entries:
                if envelope.get("kind") == "opaque":
                    continue  # payload was not journal-representable
                kept.append((envelope, size))
                outbox.append((peer, envelope, size))
                self.respooled += 1
            entries[:] = kept
            if self.started and outbox and peer not in self._peer_senders:
                self._spawn_sender(peer)
        if self.codec:
            # Journaled codec negotiations survive the cold crash: resume
            # binary frames to every peer that welcomed (or offered) the
            # codec, and suppress the redundant re-hello.
            for peer in state.codec_peers:
                self._codec_ready.add(peer)
                self._hello_sent.add(peer)
        if self.compression:
            # Same for the journaled z-capability handshakes: delta and
            # compressed frames resume without a renegotiation round-trip.
            for peer in state.codec_z_peers:
                self._z_ready.add(peer)
        for peer, snapshot in state.breakers.items():
            breaker = CircuitBreaker(
                self.runtime.kernel,
                key=f"peer:{self.runtime.runtime_id}->{peer}",
                failure_threshold=1,
                reopen_base_s=10.0,
                reopen_max_s=60.0,
            )
            breaker.state = OPEN
            breaker.times_opened = max(int(snapshot.get("times_opened", 1)), 1)
            breaker.retry_at = self.runtime.kernel.now  # next allow() probes
            self._breakers[peer] = breaker
            self.runtime.trace(
                "transport.breaker-restore",
                f"to {peer}: journaled open breaker restored half-open",
                times_opened=breaker.times_opened,
            )

    def recover_path(
        self,
        path_id: str,
        src_ref: PortRef,
        dst_ref: PortRef,
        qos: Optional[QosPolicy],
    ) -> Optional[MessagePath]:
        """Recreate one journaled application path under its original id.

        Returns None (without raising) when an endpoint no longer resolves
        locally -- e.g. the remote peer's directory entry has not been
        re-learned yet; the path stays closed, exactly as if the peer had
        been torn down while we were dead."""
        try:
            src = self.runtime.local_output_port(src_ref)
        except TransportError:
            return None
        dst: Union[DigitalInputPort, PortRef] = dst_ref
        if dst_ref.runtime_id == self.runtime.runtime_id:
            try:
                dst = self.runtime.local_input_port(dst_ref)
            except TransportError:
                return None
        path = MessagePath(self, src, dst, qos=qos, path_id=path_id)
        path.journaled = True
        self._register_path(path)
        self.runtime.trace(
            "transport.path-recovered",
            f"path {path.path_id}: {path.src_ref} -> {path.dst_ref}",
        )
        return path

    # -- path management --------------------------------------------------------

    def connect(
        self,
        src: Union[DigitalOutputPort, PortRef],
        dst: Union[DigitalInputPort, PortRef],
        qos: Optional[QosPolicy] = None,
    ) -> Union[MessagePath, RemotePathHandle]:
        """Establish a communication path between two ports (Figure 7-1).

        ``src`` must be an output port; ``dst`` an input port.  Either may
        be remote (a :class:`PortRef` on another runtime); a remote *source*
        results in a control request to the owning runtime and returns a
        :class:`RemotePathHandle`.
        """
        runtime_id = self.runtime.runtime_id
        if isinstance(src, PortRef):
            if src.runtime_id == runtime_id:
                src = self.runtime.local_output_port(src)
            else:
                return self._connect_remote_source(src, dst, qos)
        if not isinstance(src, DigitalOutputPort):
            raise TransportError(f"source must be a digital output port, got {src!r}")
        if isinstance(dst, PortRef) and dst.runtime_id == runtime_id:
            dst = self.runtime.local_input_port(dst)
        if isinstance(dst, DigitalInputPort):
            if dst.mime != src.mime:
                raise TransportError(
                    f"type mismatch: {src.mime} output cannot feed {dst.mime} input"
                )
        path = MessagePath(self, src, dst, qos=qos)
        self._register_path(path)
        self.runtime.trace(
            "transport.connect",
            f"path {path.path_id}: {path.src_ref} -> {path.dst_ref}",
        )
        return path

    def _connect_remote_source(
        self,
        src: PortRef,
        dst: Union[DigitalInputPort, PortRef],
        qos: Optional[QosPolicy],
    ) -> RemotePathHandle:
        if qos is not None:
            raise TransportError(
                "QoS policies apply where the path runs; create the path on "
                "the source's runtime to attach one"
            )
        dst_ref = dst.ref if isinstance(dst, DigitalInputPort) else dst
        path_id = f"{self.runtime.runtime_id}:rp{next(_path_counter)}"
        self._send_control(
            src.runtime_id,
            {
                "kind": "connect",
                "path_id": path_id,
                "src": str(src),
                "dst": str(dst_ref),
            },
        )
        return RemotePathHandle(self, src.runtime_id, path_id)

    def _register_path(self, path: MessagePath) -> None:
        # Snapshot-on-mutation: dispatch iterates the tuple directly, so
        # rebuilding here keeps the per-message fan-out allocation-free.
        key = str(path.src_ref)
        self._paths_by_src[key] = self._paths_by_src.get(key, ()) + (path,)
        self._paths_by_id[path.path_id] = path

    def _forget_path(self, path: MessagePath) -> None:
        self._paths_by_id.pop(path.path_id, None)
        key = str(path.src_ref)
        paths = self._paths_by_src.get(key)
        if paths and path in paths:
            remaining = tuple(p for p in paths if p is not path)
            if remaining:
                self._paths_by_src[key] = remaining
            else:
                del self._paths_by_src[key]
        if path.journaled:
            path.journaled = False
            journal = self.runtime.journal
            if journal.muted:
                # Closed during a crash: the close record is written by a
                # warm restart (cold recovery supersedes it with a replay).
                self._orphaned_paths.append(path.path_id)
            else:
                journal.append("path-close", {"path_id": path.path_id})

    def paths_from(self, src: DigitalOutputPort) -> List[MessagePath]:
        return list(self._paths_by_src.get(str(src.ref), ()))

    def close_paths_of_translator(self, translator_id: str) -> None:
        """Tear down every path whose source or local sink is the translator."""
        for path in list(self._paths_by_id.values()):
            src_is_ours = path.src.translator.translator_id == translator_id
            dst_is_ours = (
                isinstance(path.dst, DigitalInputPort)
                and path.dst.translator.translator_id == translator_id
            )
            if src_is_ours or dst_is_ours:
                path.close()

    # -- egress ---------------------------------------------------------------

    def dispatch(self, src: DigitalOutputPort, message: UMessage) -> int:
        """Fan ``message`` out to every path bound to ``src``.

        Returns the number of paths that admitted the message.
        """
        paths = self._paths_by_src.get(str(src.ref))
        if not paths:
            return 0
        admitted = 0
        for path in paths:  # immutable snapshot: no per-message copy
            if path.enqueue(message):
                admitted += 1
        return admitted

    def dispatch_flow(self, src: DigitalOutputPort, message: UMessage):
        """Flow-controlled fan-out (generator): waits for buffer space on
        each bound path rather than dropping on overflow."""
        paths = self._paths_by_src.get(str(src.ref))
        if not paths:
            return 0
        admitted = 0
        for path in paths:  # immutable snapshot: no per-message copy
            ok = yield from path.enqueue_flow(message)
            if ok:
                admitted += 1
        return admitted

    # -- inter-runtime plumbing ---------------------------------------------------

    def _enqueue_remote(
        self, dst: PortRef, message: UMessage, path: Optional[MessagePath] = None
    ) -> None:
        # Shared-fanout wire form: the per-message body is built once (and
        # cached on the message), shared by every peer; only the per-peer
        # fields (dst/origin/stream/seq) are layered onto a shallow copy.
        envelope = dict(message.wire_base())
        envelope["dst"] = str(dst)
        # The dedup stream is the *path*, so two paths feeding the same
        # input port never share a sequence space (per-(sender, path)).
        stream = path.path_id if path is not None else f"dst:{dst}"
        self._enqueue_envelope(dst.runtime_id, envelope, message.size, stream=stream)

    def _send_control(self, runtime_id: str, envelope: dict) -> None:
        self._enqueue_envelope(
            runtime_id, envelope, 0, stream=f"ctl:{runtime_id}"
        )

    def send_saga(self, runtime_id: str, envelope: dict, size: int = 0) -> None:
        """Ship a saga invocation to a participant runtime.

        Deliberately *streamless*: saga envelopes carry no
        ``(stream, seq)`` stamp, so the receiver's in-memory dedup window
        never sees them -- the saga layer's journaled reply cache owns
        idempotency (it survives cold restarts; the window does not).
        The spool record is forced opaque: the payload is already durable
        in the coordinator's ``saga-begin`` record, and a recovered
        coordinator re-*drives* the step rather than re-*spooling* the
        envelope, so journaling the payload again would only double the
        WAL bytes per step."""
        envelope["origin"] = self.runtime.runtime_id
        self._enqueue_envelope(runtime_id, envelope, size, journal_opaque=True)

    def _enqueue_envelope(
        self,
        runtime_id: str,
        envelope: dict,
        size: int,
        stream: Optional[str] = None,
        journal_opaque: bool = False,
    ) -> None:
        breaker = self._breakers.get(runtime_id)
        if breaker is not None and not breaker.allow():
            # Peer conclusively unreachable and not yet due for a probe:
            # spooling would only doom more envelopes.
            self.spool_flushed += 1
            return
        if self.codec and runtime_id not in self._hello_sent:
            # Offer the binary codec ahead of the first envelope (the
            # guard is set before recursing, so the hello itself does not
            # re-offer).  Until the peer's welcome arrives every frame
            # ships as canonical JSON -- the mixed-version fallback.
            self._hello_sent.add(runtime_id)
            self._send_control(runtime_id, self._codec_hello())
        if stream is not None:
            seq = self._stream_seqs.get(stream, 0) + 1
            self._stream_seqs[stream] = seq
            journal = self.runtime.journal
            if journal.enabled and seq > self._stream_reserved.get(stream, 0):
                # The reservation must hit stable storage before this
                # envelope can be handed to the outbox (and possibly
                # delivered): the spool record itself may still be in the
                # group-commit window when the process dies, and a
                # recovered sender must never reissue a delivered seq.
                upto = seq + self.SEQ_RESERVE_CHUNK
                journal.append("seq-reserve", {"stream": stream, "upto": upto})
                journal.sync()
                self._stream_reserved[stream] = upto
            envelope["origin"] = self.runtime.runtime_id
            envelope["stream"] = stream
            envelope["seq"] = seq
        outbox = self._peer_outboxes.setdefault(runtime_id, deque())
        if len(outbox) >= self.SPOOL_CAPACITY:
            outbox.popleft()
            self.spool_dropped += 1
            self.runtime.journal.append("spool-drop", {"peer": runtime_id})
            if self.runtime.tracing:
                self.runtime.trace(
                    "transport.spool-drop",
                    f"to {runtime_id}: spool full, evicted oldest envelope",
                    capacity=self.SPOOL_CAPACITY,
                )
        outbox.append((runtime_id, envelope, size))
        self._journal_spool(runtime_id, envelope, size, force_opaque=journal_opaque)
        wakeup = self._peer_wakeups.get(runtime_id)
        if wakeup is not None and not wakeup.triggered:
            wakeup.succeed()
        if self.started and runtime_id not in self._peer_senders:
            self._spawn_sender(runtime_id)

    def _journal_spool(
        self, peer: str, envelope: dict, size: int, force_opaque: bool = False
    ) -> None:
        """Write-ahead-log one spooled envelope.

        The per-peer spool is FIFO, so replay alignment depends on *every*
        spooled envelope having a record: an envelope whose payload is not
        JSON-representable gets an opaque placeholder (it keeps the
        ack/drop pops aligned and carries the stream sequence, but cannot
        be respooled after a cold restart).

        In batching mode the record goes through the journal's amortized
        :meth:`~repro.core.journal.Journal.append_spool` path, which folds
        consecutive same-peer appends still in the group-commit window
        into one growing ``spool-batch`` record; the write-ahead point
        (before the envelope can leave the spool) is identical."""
        journal = self.runtime.journal
        if force_opaque:
            envelope = self._opaque_marker(envelope)
        if self.batching:
            try:
                journal.append_spool(peer, envelope, size)
            except TypeError:
                journal.append_spool(peer, self._opaque_marker(envelope), size)
            return
        try:
            journal.append("spool", {"peer": peer, "envelope": envelope, "size": size})
        except TypeError:
            marker = self._opaque_marker(envelope)
            journal.append("spool", {"peer": peer, "envelope": marker, "size": size})

    @staticmethod
    def _opaque_marker(envelope: dict) -> dict:
        return {
            "kind": "opaque",
            "origin": envelope.get("origin"),
            "stream": envelope.get("stream"),
            "seq": envelope.get("seq"),
        }

    def _spawn_sender(self, runtime_id: str) -> None:
        sender = self._peer_sender_batched if self.batching else self._peer_sender
        self._peer_senders[runtime_id] = self.runtime.kernel.process(
            sender(runtime_id),
            name=f"peer-sender:{self.runtime.runtime_id}->{runtime_id}",
        )

    def _park_for_outbox(self, runtime_id: str) -> Event:
        """The reusable per-peer idle event, reset and re-armed.

        One event per peer is recycled across idle waits instead of
        allocating a fresh one per wakeup (per-envelope Event churn is
        measurable at high message rates).  ``_enqueue_envelope`` succeeds
        it; while the sender is active the stored event stays processed,
        so enqueues of an already-draining outbox are no-ops."""
        wakeup = self._peer_wakeups.get(runtime_id)
        if wakeup is not None and wakeup.processed:
            wakeup.reset()
        elif wakeup is None or wakeup.triggered:
            wakeup = self.runtime.kernel.event(name=f"peer-outbox:{runtime_id}")
            self._peer_wakeups[runtime_id] = wakeup
        return wakeup

    def _record_delivery_success(self, runtime_id: str) -> None:
        """Post-ack bookkeeping shared by both sender modes: a delivered
        probe closes the peer's breaker, and health hears the success."""
        runtime = self.runtime
        breaker = self._breakers.get(runtime_id)
        if breaker is not None and not breaker.is_closed:
            breaker.record_success()
            runtime.journal.append("breaker", {"peer": runtime_id, "state": "closed"})
            runtime.trace(
                "transport.breaker-close",
                f"to {runtime_id}: probe delivered, breaker closed",
            )
        runtime.health.peer_success(runtime_id)

    def _handle_send_failure(
        self, runtime_id: str, attempts: int, exc: Exception
    ) -> Tuple[int, Optional[float]]:
        """Retry/drop/breaker bookkeeping after one failed delivery
        attempt, shared by both sender modes.

        Returns ``(attempts, backoff_s)``; a ``None`` backoff means the
        head envelope was dropped (budget exhausted, or a failed breaker
        probe) and the sender should re-enter its loop immediately."""
        runtime = self.runtime
        self._peer_streams.pop(runtime_id, None)
        attempts += 1
        runtime.health.peer_failure(runtime_id)
        breaker = self._breakers.get(runtime_id)
        # A half-open probe fails fast: one attempt, not a whole retry
        # budget against a peer known to be down.
        probing = breaker is not None and not breaker.is_closed
        if probing or attempts >= self.MAX_SEND_ATTEMPTS:
            failed_attempts = attempts
            outbox = self._peer_outboxes[runtime_id]
            if outbox:
                outbox.popleft()
                runtime.journal.append("spool-drop", {"peer": runtime_id})
            self.undeliverable += 1
            runtime.trace(
                "transport.undeliverable",
                f"to {runtime_id} after {failed_attempts} attempt(s): {exc}",
            )
            self._trip_breaker(runtime_id, exc)
            runtime.directory.expire_runtime(runtime_id, reason=str(exc))
            return 0, None
        self.retries += 1
        backoff = min(
            self.RETRY_INITIAL_BACKOFF_S * (2 ** (attempts - 1)),
            self.RETRY_MAX_BACKOFF_S,
        )
        runtime.trace(
            "transport.retry",
            f"to {runtime_id}: attempt {attempts} failed ({exc}); "
            f"retrying in {backoff:.2f}s",
            attempt=attempts,
            backoff=backoff,
        )
        return attempts, backoff

    # -- binary codec (per-peer negotiation + encoding) -----------------------

    def _codec_encoder(self, runtime_id: str) -> WireEncoder:
        encoder = self._encoders.get(runtime_id)
        if encoder is None:
            encoder = WireEncoder()
            self._encoders[runtime_id] = encoder
        return encoder

    def _encode_envelope(self, runtime_id: str, envelope: dict):
        """Binary frame for one envelope, or None for the JSON fallback.

        None means either the peer never completed the codec handshake
        (mixed-version federation) or the envelope is not representable;
        both are counted in ``codec_fallbacks``."""
        if not self.codec:
            return None
        if runtime_id not in self._codec_ready:
            self.codec_fallbacks += 1
            return None
        try:
            return self._codec_encoder(runtime_id).encode_envelope(envelope)
        except TypeError as exc:
            self.codec_fallbacks += 1
            if self.runtime.tracing:
                self.runtime.trace(
                    "codec.fallback",
                    f"to {runtime_id}: envelope not binary-representable "
                    f"({exc}); sent as JSON",
                )
            return None

    def _encode_batch(self, runtime_id: str, envelopes: List[dict]):
        """Binary frame for a whole batch, or None for the JSON fallback."""
        if not self.codec or runtime_id not in self._codec_ready:
            if self.codec:
                self.codec_fallbacks += 1
            return None
        encoder = self._codec_encoder(runtime_id)
        try:
            if len(envelopes) >= 2 and runtime_id in self._z_ready:
                # Delta-encode the repeated per-envelope metadata against
                # the previous header -- only to peers that negotiated the
                # z capability; everyone else gets the plain batch frame.
                frame = encoder.encode_batch_delta(envelopes)
                self.delta_batches_sent += 1
                return frame
            return encoder.encode_batch(envelopes)
        except TypeError as exc:
            self.codec_fallbacks += 1
            if self.runtime.tracing:
                self.runtime.trace(
                    "codec.fallback",
                    f"to {runtime_id}: batch not binary-representable "
                    f"({exc}); sent as JSON",
                )
            return None

    def _adaptive_state(self, runtime_id: str) -> _AdaptiveBatch:
        state = self._adaptive.get(runtime_id)
        if state is None:
            state = _AdaptiveBatch(
                self.BATCH_MAX_ENVELOPES,
                self.BATCH_MAX_BYTES,
                self.PIPELINE_WINDOW,
            )
            self._adaptive[runtime_id] = state
        return state

    def _adapt_batching(
        self, runtime_id: str, state: _AdaptiveBatch, backlog: int
    ) -> None:
        """One control-law step after an ack round (see DESIGN.md section 14).

        - Saturated (backlog >= a full pipeline window of max-size
          batches): double the caps and the window toward the ceilings.
        - Trickling (some backlog, but less than one full batch): grow the
          flush timer so forming batches fill before shipping.
        - Drained: zero the flush timer immediately; after two
          consecutive idle rounds decay caps/window back toward the PR 5
          constants.
        """
        changed = None
        if backlog >= state.max_envelopes * state.window:
            if (
                state.max_envelopes < self.ADAPT_MAX_ENVELOPES
                or state.window < self.ADAPT_MAX_WINDOW
            ):
                state.max_envelopes = min(
                    state.max_envelopes * 2, self.ADAPT_MAX_ENVELOPES
                )
                state.max_bytes = min(state.max_bytes * 2, self.ADAPT_MAX_BYTES)
                state.window = min(state.window * 2, self.ADAPT_MAX_WINDOW)
                changed = "grow"
            state.flush_delay_s = 0.0  # batches are already full: ship now
            state.idle_rounds = 0
        elif backlog > 0:
            if backlog < state.max_envelopes:
                grown = min(
                    max(state.flush_delay_s * 2.0, self.ADAPT_FLUSH_MIN_S),
                    self.ADAPT_FLUSH_MAX_S,
                )
                if grown != state.flush_delay_s:
                    state.flush_delay_s = grown
                    changed = "flush-grow"
            state.idle_rounds = 0
        else:
            state.flush_delay_s = 0.0
            state.idle_rounds += 1
            if state.idle_rounds >= 2 and (
                state.max_envelopes > self.BATCH_MAX_ENVELOPES
                or state.window > self.PIPELINE_WINDOW
            ):
                state.max_envelopes = max(
                    state.max_envelopes // 2, self.BATCH_MAX_ENVELOPES
                )
                state.max_bytes = max(state.max_bytes // 2, self.BATCH_MAX_BYTES)
                state.window = max(state.window // 2, self.PIPELINE_WINDOW)
                changed = "shrink"
        if changed is not None:
            self.batch_adaptations += 1
            if self.runtime.tracing:
                self.runtime.trace(
                    "batch.adapt",
                    f"to {runtime_id}: {changed} -> "
                    f"{state.max_envelopes} envelopes / {state.max_bytes}B "
                    f"/ window {state.window} "
                    f"/ flush {state.flush_delay_s * 1000:.1f}ms",
                    backlog=backlog,
                    envelopes=state.max_envelopes,
                    window=state.window,
                )

    def _peer_sender(self, runtime_id: str) -> Generator:
        """Drains the outbox for one peer over a single stream.

        Serializes envelope marshaling with TCP per-segment processing, the
        way a single sender thread would.  Failed deliveries are retried
        with exponential backoff; only an envelope that exhausts its
        attempt budget is dropped, and that also reaps the peer's
        directory entries (it is conclusively unreachable).
        """
        runtime = self.runtime
        kernel = runtime.kernel
        umiddle = runtime.calibration.umiddle
        outbox = self._peer_outboxes[runtime_id]
        attempts = 0
        try:
            while True:
                if not outbox:
                    yield self._park_for_outbox(runtime_id)
                    continue
                _rid, envelope, size = outbox[0]
                try:
                    stream = self._peer_streams.get(runtime_id)
                    if stream is None or stream.closed:
                        stream = yield from self._open_peer_stream(runtime_id)
                    frame = self._encode_envelope(runtime_id, envelope)
                    if frame is not None:
                        # Binary codec: marshal cost and wire bytes both
                        # come from the actual encoded frame.
                        payload: object = frame
                        wire_size = frame.wire_size
                        cost_bytes = frame.wire_size
                        self.codec_frames_sent += 1
                    else:
                        payload = envelope
                        wire_size = size + ENVELOPE_HEADER_BYTES
                        cost_bytes = size
                    yield kernel.timeout(
                        umiddle.envelope_fixed_s
                        + umiddle.envelope_per_byte_s * cost_bytes
                    )
                    yield from stream.send_inline(payload, wire_size)
                    # Only count the envelope delivered once the peer's TCP
                    # has acknowledged it; a stream dying with data in its
                    # send window must re-deliver, not silently drop.
                    yield from stream.drained_wait()
                    outbox.popleft()
                    runtime.journal.append("spool-ack", {"peer": runtime_id})
                    attempts = 0
                    self.messages_relayed += 1
                    self._record_delivery_success(runtime_id)
                except (SocketError, TransportError) as exc:
                    attempts, backoff = self._handle_send_failure(
                        runtime_id, attempts, exc
                    )
                    if backoff is not None:
                        yield kernel.timeout(backoff)
        finally:
            # Only deregister ourselves: a crash may already have installed
            # a successor sender for this peer, and GC finalization (where
            # no process is active) must not touch the table at all.
            current = self._peer_senders.get(runtime_id)
            if current is not None and current is kernel.active_process:
                del self._peer_senders[runtime_id]

    def _form_batch(
        self,
        outbox: Deque[Tuple[str, dict, int]],
        start: int,
        max_envelopes: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> List[Tuple[str, dict, int]]:
        """Copy up to ``max_envelopes``/``max_bytes`` head entries (the PR 5
        constants unless adaptive batching supplies live caps) beginning at
        ``start`` (entries before it are already staged in an in-flight
        batch).  The outbox is only *peeked*: entries are popped at ack
        time, so the journal's FIFO view and the in-memory spool stay
        aligned even if the sender dies mid-flight."""
        if max_envelopes is None:
            max_envelopes = self.BATCH_MAX_ENVELOPES
        if max_bytes is None:
            max_bytes = self.BATCH_MAX_BYTES
        batch: List[Tuple[str, dict, int]] = []
        total = 0
        for entry in itertools.islice(outbox, start, None):
            size = entry[2]
            if batch and (len(batch) >= max_envelopes or total + size > max_bytes):
                break
            batch.append(entry)
            total += size
        return batch

    def _send_batch(
        self,
        stream: StreamSocket,
        batch: List[Tuple[str, dict, int]],
        runtime_id: Optional[str] = None,
    ) -> Generator:
        """Marshal and transmit one coalesced batch frame.

        One fixed marshal cost covers the whole frame (that is the
        amortization); the per-byte cost still scales with the payload.
        With the codec negotiated for ``runtime_id`` the whole batch ships
        as one interned binary frame whose *actual* encoded bytes drive
        both the marshal cost and the wire accounting."""
        kernel = self.runtime.kernel
        umiddle = self.runtime.calibration.umiddle
        total = 0
        envelopes = []
        for _rid, envelope, size in batch:
            envelopes.append(envelope)
            total += size
        binary = (
            self._encode_batch(runtime_id, envelopes)
            if runtime_id is not None and self.codec
            else None
        )
        if binary is not None:
            frame: object = binary
            wire_size = binary.wire_size
            cost_bytes = binary.wire_size
            self.codec_frames_sent += 1
        else:
            frame = {"kind": "batch", "count": len(envelopes), "envelopes": envelopes}
            wire_size = (
                total
                + ENVELOPE_HEADER_BYTES
                + self.BATCH_SUBHEADER_BYTES * len(envelopes)
            )
            cost_bytes = total
        yield kernel.timeout(
            umiddle.envelope_fixed_s + umiddle.envelope_per_byte_s * cost_bytes
        )
        yield from stream.send_inline(frame, wire_size)
        self.batches_sent += 1

    def _peer_sender_batched(self, runtime_id: str) -> Generator:
        """Batched + pipelined variant of :meth:`_peer_sender`.

        Peeks runs of outbox entries into coalesced batch frames, keeps up
        to PIPELINE_WINDOW batches in flight, then blocks once on the
        stream's drain barrier and acks every in-flight batch in order --
        one journaled ``spool-ack {count: k}`` per batch.  Because the
        outbox is peeked (not popped) until the barrier, a crash at any
        point leaves the journal and the spool aligned: replay respools
        exactly the unacked suffix, and the receiver's dedup window
        suppresses whatever the wire already delivered."""
        runtime = self.runtime
        kernel = runtime.kernel
        outbox = self._peer_outboxes[runtime_id]
        adapt = self._adaptive_state(runtime_id) if self.adaptive else None
        attempts = 0
        try:
            while True:
                if not outbox:
                    yield self._park_for_outbox(runtime_id)
                    continue
                if (
                    adapt is not None
                    and adapt.flush_delay_s > 0.0
                    and len(outbox) < adapt.max_envelopes
                ):
                    # A hot producer keeps trickling: wait briefly so the
                    # forming batch fills instead of shipping underfull.
                    # The delay is zero whenever the peer recently drained,
                    # so idle-load latency is untouched.
                    yield kernel.timeout(adapt.flush_delay_s)
                try:
                    stream = self._peer_streams.get(runtime_id)
                    if stream is None or stream.closed:
                        stream = yield from self._open_peer_stream(runtime_id)
                    if adapt is not None:
                        window = adapt.window
                        max_envelopes = adapt.max_envelopes
                        max_bytes = adapt.max_bytes
                    else:
                        window = self.PIPELINE_WINDOW
                        max_envelopes = self.BATCH_MAX_ENVELOPES
                        max_bytes = self.BATCH_MAX_BYTES
                    inflight: List[int] = []
                    staged = 0
                    while staged < len(outbox) or inflight:
                        while staged < len(outbox) and len(inflight) < window:
                            batch = self._form_batch(
                                outbox, staged, max_envelopes, max_bytes
                            )
                            if not batch:
                                break
                            staged += len(batch)
                            yield from self._send_batch(stream, batch, runtime_id)
                            inflight.append(len(batch))
                        # In-order ack barrier: everything sent so far is
                        # acknowledged together, then journaled per batch.
                        yield from stream.drained_wait()
                        for count in inflight:
                            acked = 0
                            while acked < count and outbox:
                                outbox.popleft()
                                acked += 1
                            runtime.journal.append(
                                "spool-ack", {"count": count, "peer": runtime_id}
                            )
                            self.messages_relayed += acked
                        inflight.clear()
                        staged = 0
                        attempts = 0
                        self._record_delivery_success(runtime_id)
                        if adapt is not None:
                            self._adapt_batching(runtime_id, adapt, len(outbox))
                            window = adapt.window
                            max_envelopes = adapt.max_envelopes
                            max_bytes = adapt.max_bytes
                except (SocketError, TransportError) as exc:
                    # In-flight entries were never popped; they are still
                    # the head of the outbox (and of the journal's FIFO),
                    # so the retry re-sends them and the receiver's dedup
                    # window suppresses any the wire already delivered.
                    attempts, backoff = self._handle_send_failure(
                        runtime_id, attempts, exc
                    )
                    if backoff is not None:
                        yield kernel.timeout(backoff)
        finally:
            current = self._peer_senders.get(runtime_id)
            if current is not None and current is kernel.active_process:
                del self._peer_senders[runtime_id]

    def _trip_breaker(self, runtime_id: str, exc: Exception) -> None:
        """Open (or re-open) the delivery breaker for ``runtime_id`` after
        an exhausted retry budget, flushing the doomed spool."""
        if not self.runtime.health.enabled:
            return
        breaker = self._breakers.get(runtime_id)
        if breaker is None:
            breaker = CircuitBreaker(
                self.runtime.kernel,
                key=f"peer:{self.runtime.runtime_id}->{runtime_id}",
                failure_threshold=1,
                reopen_base_s=10.0,
                reopen_max_s=60.0,
            )
            self._breakers[runtime_id] = breaker
        breaker.record_failure()
        outbox = self._peer_outboxes.get(runtime_id)
        flushed = len(outbox) if outbox else 0
        if flushed:
            outbox.clear()
            self.spool_flushed += flushed
            self.runtime.journal.append("spool-flush", {"peer": runtime_id})
            self.runtime.trace(
                "transport.spool-flush",
                f"to {runtime_id}: flushed {flushed} spooled envelope(s)",
                flushed=flushed,
            )
        self.runtime.journal.append(
            "breaker",
            {
                "peer": runtime_id,
                "state": "open",
                "times_opened": breaker.times_opened,
            },
        )
        self.runtime.trace(
            "transport.breaker-open",
            f"to {runtime_id}: retry budget exhausted ({exc})",
            spool_dropped=self.spool_dropped,
            spool_flushed=self.spool_flushed,
        )

    def peer_seen(self, runtime_id: str) -> None:
        """Directory evidence (an announcement) that the peer is back:
        make an open breaker probe-eligible immediately instead of waiting
        out the rest of its reopen backoff."""
        breaker = self._breakers.get(runtime_id)
        if breaker is not None:
            breaker.probe_now()
        if self.codec and runtime_id not in self._hello_sent:
            # Negotiate the codec at discovery time, so by the time the
            # first application envelope is spooled the peer's welcome has
            # usually landed and the stream is binary from byte one
            # (instead of spending the first pipeline window on JSON while
            # the handshake is in flight).
            self._hello_sent.add(runtime_id)
            self._send_control(runtime_id, self._codec_hello())

    def _open_peer_stream(self, runtime_id: str) -> Generator:
        info = self.runtime.directory.runtime_info(runtime_id)
        if info is None:
            raise TransportError(f"unknown peer runtime {runtime_id!r}")
        try:
            stream = yield StreamSocket.connect(
                self.runtime.node,
                self.runtime.calibration.network,
                info.address,
                info.transport_port,
            )
        except ConnectionRefused as exc:
            raise TransportError(f"peer {runtime_id} unreachable: {exc}") from exc
        self._peer_streams[runtime_id] = stream
        encoder = self._encoders.get(runtime_id)
        if encoder is not None:
            # Fresh stream, fresh symbol table: the peer's decoder for the
            # newly accepted stream starts empty, and inline definitions
            # re-teach it everything it needs in FIFO order.
            encoder.reset()
        return stream

    # -- ingress from peers ----------------------------------------------------------

    def _accept_loop(self) -> Generator:
        listener = self._listener
        while True:
            try:
                stream = yield listener.accept()
            except ConnectionClosed:
                return
            self._accepted_streams.append(stream)
            self.runtime.kernel.process(
                self._serve_peer(stream),
                name=f"transport-serve:{self.runtime.runtime_id}",
            )

    def _serve_peer(self, stream: StreamSocket) -> Generator:
        runtime = self.runtime
        kernel = runtime.kernel
        umiddle = runtime.calibration.umiddle
        # Per-stream symbol table, mirroring the sender's per-stream
        # encoder: definitions ride inline in FIFO order, so a reconnect
        # (new stream, fresh encoder) pairs with a fresh decoder here.
        decoder: Optional[WireDecoder] = None
        while True:
            try:
                envelope, _wire_size = yield stream.recv()
            except ConnectionClosed:
                if stream in self._accepted_streams:
                    self._accepted_streams.remove(stream)
                return
            binary = isinstance(envelope, BinaryFrame)
            if binary:
                if decoder is None:
                    decoder = WireDecoder()
                try:
                    envelope = decoder.decode_frame(envelope)
                except CodecError as exc:
                    runtime.trace(
                        "transport.protocol-error",
                        f"undecodable binary frame: {exc}",
                    )
                    continue
            kind = envelope.get("kind")
            if kind == "batch":
                # One unmarshal cost for the whole coalesced frame, then
                # each inner envelope is deduped and dispatched normally.
                # Binary frames charge their actual received bytes; JSON
                # frames keep the declared-payload accounting.
                inner_envelopes = envelope.get("envelopes", ())
                total = (
                    _wire_size
                    if binary
                    else sum(e.get("size", 0) for e in inner_envelopes)
                )
                yield kernel.timeout(
                    umiddle.envelope_fixed_s + umiddle.envelope_per_byte_s * total
                )
                for inner in inner_envelopes:
                    self._handle_envelope(inner)
                continue
            origin = envelope.get("origin")
            stream_key = envelope.get("stream")
            seq = envelope.get("seq")
            if (
                origin is not None
                and stream_key is not None
                and isinstance(seq, int)
                and self._is_duplicate(origin, stream_key, seq)
            ):
                continue
            if kind == "message":
                size = _wire_size if binary else envelope["size"]
                yield kernel.timeout(
                    umiddle.envelope_fixed_s + umiddle.envelope_per_byte_s * size
                )
                self._deliver_envelope(envelope)
            else:
                self._handle_control_envelope(kind, envelope)

    def _handle_envelope(self, envelope: dict) -> None:
        """Dedup and dispatch one envelope unpacked from a batch frame
        (the frame-level unmarshal cost was already charged)."""
        origin = envelope.get("origin")
        stream_key = envelope.get("stream")
        seq = envelope.get("seq")
        if (
            origin is not None
            and stream_key is not None
            and isinstance(seq, int)
            and self._is_duplicate(origin, stream_key, seq)
        ):
            return
        kind = envelope.get("kind")
        if kind == "message":
            self._deliver_envelope(envelope)
        else:
            self._handle_control_envelope(kind, envelope)

    def _handle_control_envelope(self, kind: Optional[str], envelope: dict) -> None:
        if kind == "connect":
            self._handle_connect_request(envelope)
        elif kind == "disconnect":
            path = self._paths_by_id.get(envelope["path_id"])
            if path is not None:
                path.close()
        elif kind == "codec-hello":
            # The peer offers the binary codec (which also proves it can
            # decode our frames).  Confirm with a welcome when we speak it
            # too; otherwise stay silent -- the peer keeps sending JSON,
            # which is the whole mixed-version story.
            origin = envelope.get("origin")
            if origin is None:
                return
            if self.codec:
                self._note_codec_peer(origin)
                if self.compression and "z" in envelope.get("caps", ()):
                    self._note_z_peer(origin)
                welcome = {"kind": "codec-welcome"}
                if self.compression:
                    # Advertise our own capabilities back; a peer without
                    # compression reads only the kind and ignores this.
                    welcome["caps"] = ["z"]
                self._send_control(origin, welcome)
            else:
                self.codec_fallbacks += 1
                self.runtime.trace(
                    "codec.fallback",
                    f"peer {origin} offered the binary codec; "
                    "declining (codec disabled here)",
                )
        elif kind == "codec-welcome":
            origin = envelope.get("origin")
            if origin is not None and self.codec:
                self._note_codec_peer(origin)
                if self.compression and "z" in envelope.get("caps", ()):
                    self._note_z_peer(origin)
        elif kind == "saga-invoke":
            self.runtime.sagas.handle_invoke(envelope)
        elif kind == "saga-result":
            self.runtime.sagas.handle_result(envelope)
        else:
            self.runtime.trace(
                "transport.protocol-error", f"unknown envelope kind {kind!r}"
            )

    def _note_codec_peer(self, origin: str) -> None:
        """Mark a peer binary-capable and journal the fact (``codec-ready``),
        so a cold restart resumes binary frames instead of falling back to
        JSON until a fresh hello/welcome round-trip."""
        if origin in self._codec_ready:
            return
        self._codec_ready.add(origin)
        self.runtime.journal.append("codec-ready", {"peer": origin})

    def _codec_hello(self) -> dict:
        """The codec offer, carrying the z capability bit when this
        runtime speaks delta/compressed frames.  Pre-capability peers read
        only the kind, so the extra field degrades transparently."""
        hello = {"kind": "codec-hello"}
        if self.compression:
            hello["caps"] = ["z"]
        return hello

    def _note_z_peer(self, origin: str) -> None:
        """Mark a peer delta/compression-capable and journal the fact
        (``codec-z-ready``), mirroring :meth:`_note_codec_peer`."""
        if origin in self._z_ready:
            return
        self._z_ready.add(origin)
        self.runtime.journal.append("codec-z-ready", {"peer": origin})

    def compression_ready(self, runtime_id: str) -> bool:
        """True when bulk transfers to this peer may use compressed
        frames (the z capability handshake completed both ways)."""
        return self.compression and runtime_id in self._z_ready

    def _is_duplicate(self, origin: str, stream: str, seq: int) -> bool:
        """Receiver-side exactly-once window.

        Per-peer delivery is FIFO over one TCP stream and post-recovery
        respools replay in spool order, so a high-water mark per
        (origin, stream) suffices: any sequence at or below it has already
        been delivered (a retry after a lost TCP ack, or a respooled
        envelope the receiver actually got before the sender crashed).
        The window itself is in-memory -- a receiver that cold-restarts
        forgets it, the documented at-most-once corner of the model.
        """
        key = (origin, stream)
        high_water = self._dedup.get(key)
        if high_water is not None:
            self._dedup.move_to_end(key)
            if seq <= high_water:
                self.duplicates_suppressed += 1
                if self.runtime.tracing:
                    self.runtime.trace(
                        "transport.duplicate",
                        f"from {origin} stream {stream}: seq {seq} <= "
                        f"{high_water}, suppressed",
                        seq=seq,
                        high_water=high_water,
                    )
                return True
        self._dedup[key] = seq
        if high_water is None and len(self._dedup) > self.DEDUP_WINDOW:
            self._dedup.popitem(last=False)
        return False

    def _deliver_envelope(self, envelope: dict) -> None:
        ref = PortRef.parse(envelope["dst"])
        port = self.runtime.find_input_port(ref)
        if port is None:
            self.undeliverable += 1
            self.runtime.trace(
                "transport.undeliverable", f"no local input port {envelope['dst']}"
            )
            return
        message = UMessage(
            mime=envelope["mime"],
            payload=envelope["payload"],
            size=envelope["size"],
            source=envelope.get("source"),
            headers=dict(envelope.get("headers", {})),
        )
        result = port.deliver(message)
        if hasattr(result, "send") and hasattr(result, "throw"):
            # Run the handler as its own process: peer streams must not be
            # blocked by one slow native device.
            self.runtime.kernel.process(
                result, name=f"remote-deliver:{envelope['dst']}"
            )

    def _handle_connect_request(self, envelope: dict) -> None:
        src_ref = PortRef.parse(envelope["src"])
        dst_ref = PortRef.parse(envelope["dst"])
        try:
            src = self.runtime.local_output_port(src_ref)
        except TransportError:
            self.runtime.trace(
                "transport.protocol-error",
                f"connect request for unknown local port {src_ref}",
            )
            return
        dst: Union[DigitalInputPort, PortRef] = dst_ref
        if dst_ref.runtime_id == self.runtime.runtime_id:
            try:
                dst = self.runtime.local_input_port(dst_ref)
            except TransportError:
                return
        path = MessagePath(self, src, dst, path_id=envelope["path_id"])
        self._register_path(path)
