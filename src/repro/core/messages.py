"""The common message representation of the intermediary semantic space.

Every piece of data flowing between translators is carried as a
:class:`UMessage`: a MIME-typed payload with an explicit size (the simulated
wire cost) and free-form headers.  Translators produce these from native
protocol data and consume them when proxying back out to native devices.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.core.codec import json_size
from repro.core.errors import ShapeError
from repro.core.shapes import DigitalType

__all__ = ["UMessage"]

_sequence = itertools.count(1)


@dataclass(frozen=True)
class UMessage:
    """One message in the common representation.

    Attributes:
        mime: the digital data type of the payload.
        payload: arbitrary Python object standing in for the payload bytes.
        size: payload size in bytes (drives simulated wire/marshal costs).
            ``None`` derives it from the payload's canonical-JSON length,
            the honest default for structured payloads; opaque stand-ins
            (a short string representing a 4 KiB image) keep declaring
            their size explicitly.
        source: port reference string of the producing port, if any.
        headers: free-form metadata (e.g. the VML document for UI events).
        sequence: **test-only** monotonically increasing id.  It comes from
            a process-global ``itertools.count``, so messages produced by
            different simulated runtimes in one interpreter interleave in
            one shared numbering -- fine for asserting ordering within a
            test, useless as a delivery identity.  Exactly-once delivery
            uses the transport's per-(sender, path) envelope sequence
            numbers instead (see ``Transport._enqueue_envelope``).
    """

    mime: DigitalType
    payload: Any
    size: Optional[int] = None
    source: Optional[str] = None
    headers: Dict[str, Any] = field(default_factory=dict)
    sequence: int = field(default_factory=lambda: next(_sequence))

    def __post_init__(self):
        if isinstance(self.mime, str):
            object.__setattr__(self, "mime", DigitalType(self.mime))
        if self.mime.is_pattern:
            raise ShapeError(f"messages need a concrete MIME type, got {self.mime}")
        if self.size is None:
            try:
                object.__setattr__(self, "size", json_size(self.payload))
            except TypeError as exc:
                raise ShapeError(
                    "message payload is not JSON-representable; "
                    f"pass an explicit size: {exc}"
                ) from exc
        if self.size < 0:
            raise ShapeError(f"negative message size: {self.size}")

    def with_source(self, source: str) -> "UMessage":
        return replace(self, source=source)

    def wire_base(self) -> Dict[str, Any]:
        """The per-message part of the inter-runtime envelope, cached.

        A message fanned out to N remote peers used to rebuild this dict N
        times; the transport now builds it once and layers the per-peer
        fields (``dst``/``origin``/``stream``/``seq``) onto a shallow copy.
        The cache lives on the (frozen) message, so all paths and peers
        delivering the same message share one base dict -- callers must
        treat it as immutable.
        """
        base = getattr(self, "_wire_base", None)
        if base is None:
            base = {
                "kind": "message",
                "mime": self.mime.mime,
                "payload": self.payload,
                "size": self.size,
                "source": self.source,
                "headers": dict(self.headers),
            }
            object.__setattr__(self, "_wire_base", base)
        return base

    def with_header(self, key: str, value: Any) -> "UMessage":
        headers = dict(self.headers)
        headers[key] = value
        return replace(self, headers=headers)

    def __str__(self) -> str:
        return f"UMessage#{self.sequence}({self.mime}, {self.size}B)"
