"""Binary wire codec with per-peer symbol interning (ROADMAP item 3).

Every inter-runtime frame, directory gossip body and WAL record used to be
canonical JSON.  JSON spends most of its bytes repeating the same short
strings -- envelope keys, port references, mime types, profile field names
-- on every single frame.  This module replaces that with a compact
length-prefixed binary encoding plus *symbol interning*: well-known
protocol strings ship as one- or two-byte ids from a static table, and any
other recurring string is assigned a dynamic id the first time it appears
(an inline ``SYMDEF``) and referenced by id from then on.

Three framing contexts share the value encoding:

- **Bound wire frames** (:class:`WireEncoder`/:class:`WireDecoder`): one
  encoder per peer stream, one decoder per accepted stream.  The dynamic
  table persists across frames, so a port reference costs its full UTF-8
  bytes once per TCP stream and two bytes afterwards.  Definitions ride
  inline in the defining frame, which is safe because a stream is FIFO and
  encoder/decoder lifetimes are pinned to the stream (a reconnect resets
  both sides).  Frames carry a trailing CRC-32 so truncation or bit rot
  raises :class:`~repro.core.errors.CodecError` instead of mis-decoding.
- **Self-contained gossip bodies** (:func:`encode_gossip`): a fresh table
  per datagram -- UDP multicast has no per-receiver state -- which still
  vectorizes beautifully because one announcement repeats the same profile
  field names for every entry it carries.
- **Journal record bodies** (:func:`encode_journal_body`): a fresh table
  per record, newline-escaped so the journal's line framing and CRC
  machinery are untouched; the record-level CRC already covers integrity.
  Folded ``spool-batch`` records repeat envelope keys per entry, so the
  per-record table is exactly the vectorized encoding the fold wants.

Message payloads are special.  A :class:`~repro.core.messages.UMessage`
payload is usually a *stand-in* Python object whose declared ``size``
models the native data's bytes.  The codec therefore inline-encodes only
*structured* payloads (dicts/lists -- data whose wire form is the
structure itself) and carries every other payload out of band at its
declared size (an ``OBJ`` placeholder in the byte stream, the object
riding alongside in :attr:`BinaryFrame.objs`).  Anything the codec cannot
represent falls back to the canonical-JSON wire path per frame, counted by
the transport's ``codec.fallback`` trace.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import CodecError

__all__ = [
    "BinaryFrame",
    "CodecError",
    "WireDecoder",
    "WireEncoder",
    "decode_gossip",
    "decode_journal_body",
    "encode_gossip",
    "encode_journal_body",
    "encoded_size",
    "is_binary_journal_body",
    "json_size",
]

# -- wire tags ----------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_MAP = 0x08
_T_SYM = 0x09
_T_SYMDEF = 0x0A
_T_OBJ = 0x0B

#: First byte of every transport/gossip frame.
WIRE_MAGIC = 0xB1
#: First byte of a binary journal record body (JSON bodies start with '{').
JOURNAL_MAGIC = 0xB2
#: First byte of a zlib-compressed binary journal record body.
JOURNAL_MAGIC_Z = 0xB3

#: Frame kinds (second byte of a wire frame).
FRAME_ENVELOPE = 0x01
FRAME_BATCH = 0x02
FRAME_GOSSIP = 0x03
#: Batch whose inner envelopes 2..n are field deltas against their
#: predecessor (stream/origin/dst metadata repeats per envelope; only the
#: fields that actually change ride the wire).  Sent only to peers that
#: negotiated the ``z`` capability.
FRAME_BATCH_DELTA = 0x04
#: Self-contained gossip body, zlib-compressed (bulk/full-state transfers).
#: Sent only to peers that negotiated the ``z`` capability.
FRAME_GOSSIP_Z = 0x05

#: zlib level for block compression: 6 is the stdlib default trade-off and
#: deterministic for a given input, which the journal relies on.
_Z_LEVEL = 6
#: Upper bound accepted for a compressed body's declared raw length; a
#: corrupt or hostile header cannot make the decoder allocate unbounded
#: memory.
_Z_MAX_RAW = 1 << 31

#: Strings longer than this are never interned (one-shot blobs would only
#: bloat the table); shorter recurring strings pay for their definition by
#: the second occurrence.
INTERN_MAX_LEN = 96
#: Dynamic table ceiling per encoder; beyond it new strings ship verbatim.
DYNAMIC_LIMIT = 4096

#: Protocol strings every encoder and decoder knows a priori (ids are the
#: tuple indexes; the dynamic table starts right after).  Order is part of
#: the wire protocol -- append, never reorder.
STATIC_SYMBOLS: Tuple[str, ...] = (
    # envelope / batch framing
    "kind", "message", "batch", "count", "envelopes", "mime", "payload",
    "size", "source", "headers", "dst", "origin", "stream", "seq",
    # control envelopes
    "connect", "disconnect", "path_id", "src", "codec-hello",
    "codec-welcome",
    # journal record framing and kinds
    "data", "lsn", "peer", "envelope", "entries", "upto", "state",
    "times_opened", "spool", "spool-batch", "spool-ack", "spool-drop",
    "spool-flush", "seq-reserve", "register", "unregister", "health",
    "breaker", "checkpoint", "binding-open", "binding-close", "path-open",
    "path-close", "opaque",
    # checkpoint sections
    "registered", "bindings", "paths", "stream_seqs", "breakers",
    "shard_entries", "shard_owned", "shards", "owned", "profile",
    # profile wire form
    "translator_id", "name", "platform", "device_type", "role",
    "runtime_id", "description", "attributes", "ports", "direction", "in",
    "out", "physical", "healthy", "degraded", "quarantined",
    # directory gossip
    "umiddle-directory", "runtime", "id", "address", "transport_port",
    "directory_port", "full", "heartbeat", "version", "digest", "profiles",
    "digests", "removed", "changed", "query", "qos", "failover",
    "binding_id", "open", "closed",
    # common mime types
    "text/plain", "application/json", "application/octet-stream",
    # data-plane v3 (delta/compression/weighted placement) protocol strings.
    # Appended after PR 9 -- append-only keeps every older id stable.
    "caps", "z", "shard_load", "tiers", "codec-z-ready", "shard-weights",
    "codec_z_peers", "shard_weights",
)
_STATIC_IDS: Dict[str, int] = {s: i for i, s in enumerate(STATIC_SYMBOLS)}
_DYNAMIC_BASE = len(STATIC_SYMBOLS)

_FLOAT = struct.Struct(">d")


def json_size(value: Any) -> int:
    """Byte length of the canonical-JSON wire form of ``value``.

    This is the size a payload occupies on the JSON wire path, and the
    honest default for :class:`~repro.core.messages.UMessage` payloads
    constructed without an explicit size.  Raises :class:`TypeError` for
    values JSON cannot represent, like ``json.dumps``.
    """
    return len(
        json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


class BinaryFrame:
    """One encoded frame: the byte stream plus any out-of-band payloads.

    ``objs`` holds message payloads the codec deliberately did not encode
    (opaque native-data stand-ins); they are modeled at their declared
    sizes, accumulated in ``oob_bytes``.  The frame's simulated wire cost
    is therefore ``len(data) + oob_bytes``.
    """

    __slots__ = ("data", "objs", "oob_bytes")

    def __init__(self, data: bytes, objs: Tuple[Any, ...] = (), oob_bytes: int = 0):
        self.data = data
        self.objs = objs
        self.oob_bytes = oob_bytes

    @property
    def wire_size(self) -> int:
        return len(self.data) + self.oob_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BinaryFrame({len(self.data)}B encoded, {len(self.objs)} oob "
            f"object(s), wire {self.wire_size}B)"
        )


def _write_varint(buf: bytearray, value: int) -> None:
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _map_key(key: Any) -> str:
    """Coerce a dict key the way ``json.dumps`` does (parity matters: the
    journal's replayed state must match what the JSON encoding produced)."""
    if isinstance(key, str):
        return key
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    if isinstance(key, int):
        return str(key)
    if isinstance(key, float):
        return repr(key)
    raise TypeError(f"keys must be str, int, float, bool or None, not {type(key)}")


class WireEncoder:
    """Stateful value encoder; one instance per peer stream (or per
    self-contained frame)."""

    __slots__ = ("_symbols",)

    def __init__(self):
        self._symbols: Dict[str, int] = {}

    def reset(self) -> None:
        """Drop the dynamic table (the peer stream was reopened; the new
        accepted stream starts a fresh decoder)."""
        self._symbols.clear()

    # -- value encoding ------------------------------------------------------

    def _write_str(self, buf: bytearray, text: str) -> None:
        sym = _STATIC_IDS.get(text)
        if sym is None:
            sym = self._symbols.get(text)
            if sym is None:
                if len(text) <= INTERN_MAX_LEN and len(self._symbols) < DYNAMIC_LIMIT:
                    sym = _DYNAMIC_BASE + len(self._symbols)
                    self._symbols[text] = sym
                    raw = text.encode("utf-8")
                    buf.append(_T_SYMDEF)
                    _write_varint(buf, sym)
                    _write_varint(buf, len(raw))
                    buf += raw
                else:
                    raw = text.encode("utf-8")
                    buf.append(_T_STR)
                    _write_varint(buf, len(raw))
                    buf += raw
                return
        buf.append(_T_SYM)
        _write_varint(buf, sym)

    def _write_value(self, buf: bytearray, value: Any) -> None:
        if value is None:
            buf.append(_T_NONE)
        elif value is True:
            buf.append(_T_TRUE)
        elif value is False:
            buf.append(_T_FALSE)
        elif isinstance(value, str):
            self._write_str(buf, value)
        elif isinstance(value, int):
            buf.append(_T_INT)
            _write_varint(buf, value << 1 if value >= 0 else ((-value) << 1) - 1)
        elif isinstance(value, float):
            buf.append(_T_FLOAT)
            buf += _FLOAT.pack(value)
        elif isinstance(value, dict):
            buf.append(_T_MAP)
            _write_varint(buf, len(value))
            for key, item in value.items():
                self._write_str(buf, _map_key(key))
                self._write_value(buf, item)
        elif isinstance(value, (list, tuple)):
            buf.append(_T_LIST)
            _write_varint(buf, len(value))
            for item in value:
                self._write_value(buf, item)
        elif isinstance(value, (bytes, bytearray)):
            buf.append(_T_BYTES)
            _write_varint(buf, len(value))
            buf += value
        else:
            raise TypeError(
                f"object of type {type(value).__name__} is not codec-serializable"
            )

    # -- envelope / batch frames --------------------------------------------

    def _write_envelope(
        self, buf: bytearray, envelope: dict, objs: List[Any]
    ) -> int:
        """Encode one envelope map; returns bytes carried out of band.

        The ``payload`` field is inline-encoded only when it is structured
        data (dict/list); any other object is a native-payload stand-in
        whose declared ``size`` is authoritative, so it rides out of band
        as an ``OBJ`` placeholder charged at that size.
        """
        oob = 0
        buf.append(_T_MAP)
        _write_varint(buf, len(envelope))
        for key, item in envelope.items():
            self._write_str(buf, _map_key(key))
            if key == "payload" and not isinstance(item, (dict, list, tuple)):
                declared = envelope.get("size")
                declared = declared if isinstance(declared, int) and declared >= 0 else 0
                buf.append(_T_OBJ)
                _write_varint(buf, declared)
                objs.append(item)
                oob += declared
            else:
                self._write_value(buf, item)
        return oob

    def _seal(self, buf: bytearray, objs: List[Any], oob: int) -> BinaryFrame:
        buf += struct.pack(">I", zlib.crc32(bytes(buf[2:])) & 0xFFFFFFFF)
        return BinaryFrame(bytes(buf), tuple(objs), oob)

    def encode_envelope(self, envelope: dict) -> BinaryFrame:
        """One single-envelope wire frame.

        Raises :class:`TypeError` when a non-payload field is not
        representable (the caller falls back to the JSON wire path); the
        dynamic table is rolled back so a failed attempt does not desync
        the peer's decoder.
        """
        snapshot = dict(self._symbols)
        buf = bytearray((WIRE_MAGIC, FRAME_ENVELOPE))
        objs: List[Any] = []
        try:
            oob = self._write_envelope(buf, envelope, objs)
        except TypeError:
            self._symbols = snapshot
            raise
        return self._seal(buf, objs, oob)

    def encode_batch(self, envelopes: List[dict]) -> BinaryFrame:
        """One coalesced batch frame carrying ``envelopes`` in order."""
        snapshot = dict(self._symbols)
        buf = bytearray((WIRE_MAGIC, FRAME_BATCH))
        _write_varint(buf, len(envelopes))
        objs: List[Any] = []
        oob = 0
        try:
            for envelope in envelopes:
                oob += self._write_envelope(buf, envelope, objs)
        except TypeError:
            self._symbols = snapshot
            raise
        return self._seal(buf, objs, oob)

    def _write_envelope_delta(
        self, buf: bytearray, envelope: dict, prev: dict, objs: List[Any]
    ) -> int:
        """Encode ``envelope`` as a field delta against ``prev``.

        Wire form: varint changed-count, then (key, value) pairs, then
        varint removed-count, then removed keys.  The ``payload`` field
        gets the same out-of-band treatment as in :meth:`_write_envelope`
        and is never delta-suppressed -- payload identity across envelopes
        is not a wire-protocol assumption we want to make.
        """
        oob = 0
        missing = object()
        changed = [
            (key, item)
            for key, item in envelope.items()
            if key == "payload" or prev.get(key, missing) != item
        ]
        removed = [key for key in prev if key not in envelope]
        _write_varint(buf, len(changed))
        for key, item in changed:
            self._write_str(buf, _map_key(key))
            if key == "payload" and not isinstance(item, (dict, list, tuple)):
                declared = envelope.get("size")
                declared = declared if isinstance(declared, int) and declared >= 0 else 0
                buf.append(_T_OBJ)
                _write_varint(buf, declared)
                objs.append(item)
                oob += declared
            else:
                self._write_value(buf, item)
        _write_varint(buf, len(removed))
        for key in removed:
            self._write_str(buf, _map_key(key))
        return oob

    def encode_batch_delta(self, envelopes: List[dict]) -> BinaryFrame:
        """One batch frame with envelopes 2..n delta-encoded.

        The first envelope rides in full; every subsequent one carries
        only the fields that differ from its predecessor (typically just
        ``seq``, ``payload`` and ``size`` -- stream/origin/dst/path
        metadata repeats across a batch).  Raises :class:`TypeError` with
        the dynamic table rolled back when any field is not
        representable, exactly like :meth:`encode_batch`.
        """
        snapshot = dict(self._symbols)
        buf = bytearray((WIRE_MAGIC, FRAME_BATCH_DELTA))
        _write_varint(buf, len(envelopes))
        objs: List[Any] = []
        oob = 0
        prev: Optional[dict] = None
        try:
            for envelope in envelopes:
                if prev is None:
                    oob += self._write_envelope(buf, envelope, objs)
                else:
                    oob += self._write_envelope_delta(buf, envelope, prev, objs)
                prev = envelope
        except TypeError:
            self._symbols = snapshot
            raise
        return self._seal(buf, objs, oob)


class _Reader:
    """Bounds-checked cursor over a frame body; every overrun raises."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes, start: int, end: int):
        self.data = data
        self.pos = start
        self.end = end

    def byte(self) -> int:
        if self.pos >= self.end:
            raise CodecError("truncated frame")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def varint(self) -> int:
        shift = 0
        result = 0
        while True:
            part = self.byte()
            result |= (part & 0x7F) << shift
            if not part & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise CodecError("varint overflow")

    def take(self, count: int) -> bytes:
        if count < 0 or self.pos + count > self.end:
            raise CodecError("truncated frame")
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    @property
    def exhausted(self) -> bool:
        return self.pos >= self.end


class WireDecoder:
    """Mirror of :class:`WireEncoder`; one instance per accepted stream."""

    __slots__ = ("_symbols",)

    def __init__(self):
        self._symbols: Dict[int, str] = {}

    # -- value decoding ------------------------------------------------------

    def _read_symbol(self, reader: _Reader, tag: int) -> str:
        if tag == _T_SYM:
            sym = reader.varint()
            if sym < _DYNAMIC_BASE:
                if sym < len(STATIC_SYMBOLS):
                    return STATIC_SYMBOLS[sym]
                raise CodecError(f"unknown static symbol {sym}")
            text = self._symbols.get(sym)
            if text is None:
                raise CodecError(f"undefined symbol {sym}")
            return text
        if tag == _T_SYMDEF:
            sym = reader.varint()
            if sym < _DYNAMIC_BASE:
                raise CodecError(f"symbol definition in static range: {sym}")
            try:
                text = reader.take(reader.varint()).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise CodecError(f"malformed symbol definition: {exc}") from exc
            self._symbols[sym] = text
            return text
        if tag == _T_STR:
            try:
                return reader.take(reader.varint()).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise CodecError(f"malformed string: {exc}") from exc
        raise CodecError(f"expected a string, got tag {tag:#x}")

    def _read_value(self, reader: _Reader, objs: Optional[Iterator[Any]]) -> Any:
        tag = reader.byte()
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            raw = reader.varint()
            return raw >> 1 if not raw & 1 else -((raw + 1) >> 1)
        if tag == _T_FLOAT:
            return _FLOAT.unpack(reader.take(8))[0]
        if tag in (_T_STR, _T_SYM, _T_SYMDEF):
            return self._read_symbol(reader, tag)
        if tag == _T_BYTES:
            return reader.take(reader.varint())
        if tag == _T_LIST:
            return [self._read_value(reader, objs) for _ in range(reader.varint())]
        if tag == _T_MAP:
            result = {}
            for _ in range(reader.varint()):
                key = self._read_symbol(reader, reader.byte())
                result[key] = self._read_value(reader, objs)
            return result
        if tag == _T_OBJ:
            reader.varint()  # declared out-of-band size (already modeled)
            if objs is None:
                raise CodecError("out-of-band placeholder in a pure-value frame")
            try:
                return next(objs)
            except StopIteration:
                raise CodecError("frame is missing an out-of-band payload") from None
        raise CodecError(f"unknown tag {tag:#x}")

    # -- frames --------------------------------------------------------------

    def _open(self, frame: BinaryFrame, expect_kind: Optional[int] = None):
        data = frame.data
        if len(data) < 6 or data[0] != WIRE_MAGIC:
            raise CodecError("not a binary wire frame")
        body_end = len(data) - 4
        (crc,) = struct.unpack_from(">I", data, body_end)
        if zlib.crc32(data[2:body_end]) & 0xFFFFFFFF != crc:
            raise CodecError("frame checksum mismatch")
        kind = data[1]
        if expect_kind is not None and kind != expect_kind:
            raise CodecError(f"unexpected frame kind {kind:#x}")
        return kind, _Reader(data, 2, body_end)

    def decode_frame(self, frame: BinaryFrame) -> dict:
        """Decode an envelope or batch frame into its wire dict form.

        Batch frames come back as the legacy ``{"kind": "batch", ...}``
        dict, so everything downstream of the receive loop (dedup,
        dispatch, cost accounting) is codec-agnostic.
        """
        kind, reader = self._open(frame)
        objs = iter(frame.objs)
        if kind == FRAME_ENVELOPE:
            envelope = self._read_value(reader, objs)
        elif kind == FRAME_BATCH:
            count = reader.varint()
            if count > reader.end - reader.pos:
                raise CodecError(f"implausible batch count {count}")
            envelopes = [self._read_value(reader, objs) for _ in range(count)]
            envelope = {"kind": "batch", "count": count, "envelopes": envelopes}
        elif kind == FRAME_BATCH_DELTA:
            count = reader.varint()
            if count > reader.end - reader.pos:
                raise CodecError(f"implausible batch count {count}")
            envelopes = []
            prev: Optional[dict] = None
            for _ in range(count):
                if prev is None:
                    env = self._read_value(reader, objs)
                    if not isinstance(env, dict):
                        raise CodecError("delta batch base is not an envelope map")
                else:
                    env = dict(prev)
                    for _ in range(reader.varint()):
                        key = self._read_symbol(reader, reader.byte())
                        env[key] = self._read_value(reader, objs)
                    for _ in range(reader.varint()):
                        env.pop(self._read_symbol(reader, reader.byte()), None)
                envelopes.append(env)
                prev = env
            envelope = {"kind": "batch", "count": count, "envelopes": envelopes}
        else:
            raise CodecError(f"unexpected frame kind {kind:#x}")
        if not reader.exhausted:
            raise CodecError("trailing bytes after frame body")
        if not isinstance(envelope, dict):
            raise CodecError("frame body is not an envelope map")
        return envelope


# -- self-contained frames (gossip datagrams) ---------------------------------


def encode_gossip(payload: dict, compress: bool = False) -> BinaryFrame:
    """Encode one directory announcement body, self-contained.

    Datagrams carry their whole symbol table inline (fresh per frame);
    the win is vectorization across the repeated per-profile field names
    within one announcement.  Raises :class:`TypeError` for bodies the
    codec cannot represent (the caller falls back to the JSON dict).

    With ``compress=True`` the encoded body is zlib-deflated into a
    ``FRAME_GOSSIP_Z`` frame (varint raw length + deflate stream) -- the
    block-compression form for bulk/full-state transfers.  Callers must
    only send it to peers that negotiated the ``z`` capability; the CRC
    still covers the compressed bytes, so corruption is caught before
    inflation.  Falls back to the plain frame when deflate does not
    actually shrink the body (tiny payloads), keeping the compressed path
    never worse than the plain one.
    """
    encoder = WireEncoder()
    body = bytearray()
    encoder._write_value(body, payload)
    if compress:
        raw = bytes(body)
        packed = zlib.compress(raw, _Z_LEVEL)
        header = bytearray()
        _write_varint(header, len(raw))
        if len(packed) + len(header) < len(raw):
            buf = bytearray((WIRE_MAGIC, FRAME_GOSSIP_Z)) + header + packed
            buf += struct.pack(">I", zlib.crc32(bytes(buf[2:])) & 0xFFFFFFFF)
            return BinaryFrame(bytes(buf))
    buf = bytearray((WIRE_MAGIC, FRAME_GOSSIP)) + body
    buf += struct.pack(">I", zlib.crc32(bytes(buf[2:])) & 0xFFFFFFFF)
    return BinaryFrame(bytes(buf))


def _inflate(packed: bytes, raw_len: int) -> bytes:
    """Inflate a compressed body, bounded by its declared raw length."""
    if raw_len > _Z_MAX_RAW:
        raise CodecError(f"implausible compressed body length {raw_len}")
    inflater = zlib.decompressobj()
    try:
        raw = inflater.decompress(packed, raw_len + 1)
    except zlib.error as exc:
        raise CodecError(f"corrupt compressed body: {exc}") from exc
    if len(raw) != raw_len or not inflater.eof or inflater.unconsumed_tail:
        raise CodecError("compressed body length mismatch")
    return raw


def decode_gossip(frame: BinaryFrame) -> dict:
    """Decode a self-contained gossip body (plain or compressed)."""
    decoder = WireDecoder()
    kind, reader = decoder._open(frame)
    if kind == FRAME_GOSSIP_Z:
        raw_len = reader.varint()
        raw = _inflate(reader.take(reader.end - reader.pos), raw_len)
        reader = _Reader(raw, 0, len(raw))
    elif kind != FRAME_GOSSIP:
        raise CodecError(f"unexpected frame kind {kind:#x}")
    payload = decoder._read_value(reader, None)
    if not reader.exhausted:
        raise CodecError("trailing bytes after gossip body")
    if not isinstance(payload, dict):
        raise CodecError("gossip body is not a map")
    return payload


def encoded_size(value: Any) -> int:
    """Byte length of the self-contained binary encoding of ``value``.

    The codec-honest replacement for JSON-derived size estimates
    (``Profile.estimated_size`` and friends) when the binary codec is the
    active wire format.
    """
    encoder = WireEncoder()
    buf = bytearray()
    encoder._write_value(buf, value)
    return len(buf)


# -- journal record bodies ----------------------------------------------------

_ESC = 0x1B
_ESC_BYTE = b"\x1b"
_NL_SUB = b"\x1bn"
_ESC_SUB = b"\x1b\x1b"


def encode_journal_body(record: dict, compress: bool = False) -> bytes:
    """Encode one journal record body (``{"data", "kind", "lsn"}``).

    The body must coexist with the journal's line framing: a leading
    magic byte discriminates it from JSON bodies (which start with
    ``{``), and every 0x0A/0x1B inside the encoding is escaped so the
    record still terminates at its own newline.  The record-level CRC is
    computed over the escaped on-disk bytes, exactly as for JSON bodies,
    so replay and tail-repair semantics are untouched.  Raises
    :class:`TypeError` (before any state changes) for non-representable
    data, mirroring ``json.dumps``.

    With ``compress=True`` the encoded value bytes are zlib-deflated
    before escaping and the body leads with :data:`JOURNAL_MAGIC_Z`
    instead -- used for checkpoint records, which are whole-state blobs.
    Deflate is only kept when it actually shrinks the body, so small
    checkpoints stay plain and the choice is deterministic for a given
    record.
    """
    encoder = WireEncoder()
    buf = bytearray()
    encoder._write_value(buf, record)
    raw = bytes(buf)
    magic = JOURNAL_MAGIC
    if compress:
        packed = zlib.compress(raw, _Z_LEVEL)
        if len(packed) < len(raw):
            raw = packed
            magic = JOURNAL_MAGIC_Z
    escaped = raw.replace(_ESC_BYTE, _ESC_SUB).replace(b"\n", _NL_SUB)
    return bytes((magic,)) + escaped


def is_binary_journal_body(body: bytes) -> bool:
    return body[:1] in (bytes((JOURNAL_MAGIC,)), bytes((JOURNAL_MAGIC_Z,)))


def decode_journal_body(body: bytes) -> dict:
    """Decode a binary journal record body back into its record dict."""
    if not is_binary_journal_body(body):
        raise CodecError("not a binary journal body")
    unescaped = bytearray()
    data = body[1:]
    i = 0
    length = len(data)
    while i < length:
        byte = data[i]
        if byte == _ESC:
            i += 1
            if i >= length:
                raise CodecError("truncated escape sequence")
            nxt = data[i]
            if nxt == _ESC:
                unescaped.append(_ESC)
            elif nxt == 0x6E:  # 'n'
                unescaped.append(0x0A)
            else:
                raise CodecError(f"bad escape sequence {nxt:#x}")
        else:
            unescaped.append(byte)
        i += 1
    raw = bytes(unescaped)
    if body[0] == JOURNAL_MAGIC_Z:
        try:
            raw = zlib.decompress(raw)
        except zlib.error as exc:
            raise CodecError(f"corrupt compressed journal body: {exc}") from exc
    decoder = WireDecoder()
    reader = _Reader(raw, 0, len(raw))
    record = decoder._read_value(reader, None)
    if not reader.exhausted:
        raise CodecError("trailing bytes after journal body")
    if not isinstance(record, dict):
        raise CodecError("journal body is not a record map")
    return record
