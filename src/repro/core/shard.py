"""Sharded directory: rendezvous-hashed namespace partitions.

The flat directory (design choice 2-b's aggregated intermediary space)
gives every runtime a full gossiped replica: per-node memory and the cold
full-state apply grow linearly with the federation, which caps the
millions-of-users trajectory.  This module partitions the namespace
instead, the registry-federation step of the SOA-coordination literature:

- **ShardMap** -- the coarse ``(axis, value)`` discovery keys (from
  :meth:`TranslatorProfile.index_keys` / :meth:`Query.index_keys`) hash
  onto a fixed ring of *virtual shards*; shards are assigned to live
  runtimes by rendezvous (highest-random-weight) hashing, so every node
  computes the identical assignment from the identical membership view,
  and a join or leave moves only the shards the membership change
  actually touches.
- **ShardStore** -- the authoritative per-owner state: profiles stored
  under every owned shard their keys hash to, with a store-local inverted
  index so routed lookups stay sub-linear inside a shard.
- **ShardRouter** -- the routing layer between the runtime and its
  directory.  Registrations are *placed* on the owners of the profile's
  key shards (the origin re-pushes on every membership change, so
  placement is self-healing soft state).  Lookups route to the owner of
  the query's first index key -- the closure property guarantees that any
  matching profile carries every query key, so one key's owner holds the
  full candidate set -- with a TTL cache of hot key buckets and a
  fan-out + merge path for queries with no indexable key.  Standing
  queries register *interest* at the owner, and the owner streams
  per-shard deltas only to interested peers: gossip volume follows the
  subscription set, not the federation size.

Simulation note: placement, subscription and delta traffic ride real
simulated datagrams on the directory port.  Routed *lookups* are modeled
as synchronous RPCs -- the router calls the owner's in-process store
directly (the sim kernel cannot block a synchronous ``lookup()`` call on
a network round-trip) and accounts the traffic in counters
(``routed_lookups``, ``bucket_bytes_served``) instead of on the wire.

Durability: every owner-side store mutation and ownership transition is
journaled (``shard-store``/``shard-remove``/``shard-drop``/``shard-own``
records), so :meth:`UMiddleRuntime.recover` rebuilds a crashed owner's
shards byte-equivalently from the write-ahead log.

The whole layer is gated on ``UMiddleRuntime(sharding_enabled=...)``;
off (the default) reproduces the flat-replica directory byte for byte.
All runtimes of one federation must agree on the switch and on
``shard_count``.
"""

from __future__ import annotations

import hashlib
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from repro.core.profile import TranslatorProfile
from repro.core.query import Query

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.directory import Directory
    from repro.core.journal import RecoveredState
    from repro.core.runtime import UMiddleRuntime
    from repro.simnet.net import Network

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "CACHE_TTL",
    "KEY_SPLIT",
    "placement_salt",
    "ShardMap",
    "ShardStore",
    "ShardRouter",
    "ShardFabric",
    "shard_fabric",
    "shard_of_key",
]

#: Number of virtual shards on the ring.  Must exceed the expected node
#: count for balance (each node owns ``shard_count / nodes`` shards); all
#: runtimes of a federation must use the same value.
DEFAULT_SHARD_COUNT = 128

#: Seconds (simulated) a routed hot-key bucket may be served from the
#: local cache before the owner is consulted again.
CACHE_TTL = 2.0

#: Hot-key split factor.  Low-cardinality axes produce pathologically hot
#: keys -- every profile with a digital port carries the universal
#: ``*/*`` mime pattern, so without splitting, that key's single owner
#: would store the entire federation.  Each key is therefore spread over
#: ``KEY_SPLIT`` salted sub-shards: a profile is *written* to exactly one
#: of them (salted by its translator id, so placement volume is
#: unchanged) while a keyed lookup *reads* all of them and merges.  All
#: runtimes of a federation must use the same value.
KEY_SPLIT = 32

_IndexKey = Tuple[str, str]
_M64 = (1 << 64) - 1


def shard_of_key(key: _IndexKey, shard_count: int, salt: int = 0) -> int:
    """Stable shard of one coarse ``(axis, value)`` key sub-sharded by
    ``salt`` (a writer uses its profile's placement salt; readers walk
    every salt in ``range(KEY_SPLIT)``)."""
    digest = hashlib.sha1(
        f"{key[0]}\x00{key[1]}\x00{salt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


_placement_salts: Dict[str, int] = {}


def placement_salt(translator_id: str) -> int:
    """The sub-shard salt a profile's placements are written under."""
    salt = _placement_salts.get(translator_id)
    if salt is None:
        digest = hashlib.sha1(translator_id.encode("utf-8")).digest()
        salt = int.from_bytes(digest[:4], "big") % KEY_SPLIT
        if len(_placement_salts) > 65536:
            _placement_salts.clear()
        _placement_salts[translator_id] = salt
    return salt


_member_seeds: Dict[str, int] = {}


def _member_seed(member: str) -> int:
    seed = _member_seeds.get(member)
    if seed is None:
        seed = int.from_bytes(
            hashlib.sha1(member.encode("utf-8")).digest()[:8], "big"
        )
        if len(_member_seeds) > 4096:
            _member_seeds.clear()
        _member_seeds[member] = seed
    return seed


def _weight(seed: int, shard: int) -> int:
    """Rendezvous weight of (member, shard): a splitmix64 mix of the
    member's hash seed and the shard number -- deterministic across
    processes and fast enough for full-table rebuilds in pure Python."""
    x = (seed ^ (shard * 0x9E3779B97F4A7C15)) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


#: Owner tables keyed by (member tuple, shard count).  Every router of a
#: converged federation asks for the identical table, so the rendezvous
#: sweep runs once per membership view per process.
_TABLE_CACHE: Dict[Tuple[Tuple[str, ...], int], Tuple[str, ...]] = {}


def _owner_table(members: Tuple[str, ...], shard_count: int) -> Tuple[str, ...]:
    cache_key = (members, shard_count)
    table = _TABLE_CACHE.get(cache_key)
    if table is None:
        seeds = [(_member_seed(member), member) for member in members]
        table = tuple(
            max(seeds, key=lambda pair: _weight(pair[0], shard))[1]
            for shard in range(shard_count)
        )
        if len(_TABLE_CACHE) > 64:
            _TABLE_CACHE.clear()
        _TABLE_CACHE[cache_key] = table
    return table


class ShardMap:
    """The deterministic shard -> owner assignment for one membership view.

    Rendezvous hashing gives both properties the directory needs without
    any coordination: every node with the same membership view computes
    the same owner for every shard, and changing the membership by one
    node only moves the shards whose argmax that node is (minimal
    disruption on join/leave/crash).
    """

    def __init__(self, shard_count: int = DEFAULT_SHARD_COUNT):
        if shard_count <= 0:
            raise ValueError(f"shard_count must be positive, got {shard_count}")
        self.shard_count = shard_count
        self.members: Tuple[str, ...] = ()
        self.version = 0
        self._table: Tuple[str, ...] = ()

    def rebuild(self, members: Iterable[str]) -> bool:
        """Recompute the assignment; True when the view actually changed."""
        ordered = tuple(sorted(set(members)))
        if ordered == self.members:
            return False
        self.members = ordered
        self.version += 1
        self._table = _owner_table(ordered, self.shard_count) if ordered else ()
        return True

    def owner(self, shard: int) -> Optional[str]:
        if not self._table:
            return None
        return self._table[shard]

    def owners_ranked(self, shard: int) -> List[str]:
        """Members by descending rendezvous weight (deterministic failover
        order while a membership change is still propagating)."""
        return sorted(
            self.members,
            key=lambda member: _weight(_member_seed(member), shard),
            reverse=True,
        )

    def owned_by(self, member: str) -> FrozenSet[int]:
        return frozenset(
            shard for shard, owner in enumerate(self._table) if owner == member
        )


class ShardStore:
    """One owner's authoritative slice of the namespace.

    Profiles are stored under every owned shard their keys hash to; a
    store-wide inverted index keeps routed lookups sub-linear.  The
    store-wide index is sound for routed queries: a query routed here by
    key *k* only ever arrives because this node owns ``shard(k)``, and
    every profile carrying *k* is placed on that shard's owner, so the
    index holds the full candidate set for *k*.
    """

    def __init__(self):
        #: translator_id -> profile (one instance however many shards).
        self._profiles: Dict[str, TranslatorProfile] = {}
        #: translator_id -> shards this profile is stored under here.
        self._placements: Dict[str, Set[int]] = {}
        #: shard -> translator ids stored under it.
        self._shards: Dict[int, Set[str]] = {}
        #: store-wide inverted index over the profiles' coarse keys.
        self._index: Dict[_IndexKey, Set[str]] = {}
        #: origin runtime_id -> translator ids (lease reaping by origin).
        self._by_origin: Dict[str, Set[str]] = {}

    # -- inspection --------------------------------------------------------

    @property
    def profile_count(self) -> int:
        return len(self._profiles)

    @property
    def posting_count(self) -> int:
        """Index postings held (the per-node memory the benchmark tracks)."""
        return sum(len(bucket) for bucket in self._index.values())

    def estimated_bytes(self) -> int:
        return sum(p.estimated_size() for p in self._profiles.values())

    def origins(self) -> Set[str]:
        return set(self._by_origin)

    def tids_of_origin(self, origin: str) -> List[str]:
        return list(self._by_origin.get(origin, ()))

    def stored_shards(self) -> List[int]:
        """Every shard with at least one placement here."""
        return list(self._shards)

    def placements_of(self, translator_id: str) -> Tuple[int, ...]:
        return tuple(sorted(self._placements.get(translator_id, ())))

    def snapshot(self) -> Dict[str, dict]:
        """Canonical JSON-serializable content (recovery equivalence)."""
        return {
            tid: {
                "profile": self._profiles[tid].to_dict(),
                "shards": sorted(self._placements[tid]),
            }
            for tid in sorted(self._profiles)
        }

    # -- mutation ----------------------------------------------------------

    def store(
        self, profile: TranslatorProfile, shards: Iterable[int]
    ) -> Tuple[bool, bool, Optional[TranslatorProfile]]:
        """Store ``profile`` under ``shards`` (merged with any existing
        placements).  Returns ``(content_changed, placement_changed,
        previous_profile)``."""
        tid = profile.translator_id
        previous = self._profiles.get(tid)
        placement = self._placements.get(tid)
        added_shards = set(shards) - (placement or set())
        content_changed = previous is None or (
            previous is not profile and previous != profile
        )
        if previous is None:
            self._profiles[tid] = profile
            self._placements[tid] = set(added_shards)
            for key in profile.index_keys():
                self._index.setdefault(key, set()).add(tid)
            self._by_origin.setdefault(profile.runtime_id, set()).add(tid)
        else:
            if content_changed:
                if previous.index_keys() != profile.index_keys():
                    for key in previous.index_keys():
                        self._unindex(key, tid)
                    for key in profile.index_keys():
                        self._index.setdefault(key, set()).add(tid)
                if previous.runtime_id != profile.runtime_id:
                    self._unorigin(previous.runtime_id, tid)
                    self._by_origin.setdefault(profile.runtime_id, set()).add(tid)
                self._profiles[tid] = profile
            placement.update(added_shards)
        for shard in added_shards:
            self._shards.setdefault(shard, set()).add(tid)
        return content_changed, bool(added_shards), previous

    def remove(self, translator_id: str) -> Optional[TranslatorProfile]:
        profile = self._profiles.pop(translator_id, None)
        if profile is None:
            return None
        for shard in self._placements.pop(translator_id, ()):
            bucket = self._shards.get(shard)
            if bucket is not None:
                bucket.discard(translator_id)
                if not bucket:
                    del self._shards[shard]
        for key in profile.index_keys():
            self._unindex(key, translator_id)
        self._unorigin(profile.runtime_id, translator_id)
        return profile

    def drop_shard(self, shard: int) -> List[str]:
        """Forget one shard's placements (ownership moved away).  Profiles
        whose only placement here was this shard leave the store; returns
        their ids.  This is a *placement* change, never a namespace event:
        the new owner holds the same profiles."""
        gone = []
        for tid in list(self._shards.pop(shard, ())):
            placement = self._placements[tid]
            placement.discard(shard)
            if not placement:
                profile = self._profiles.pop(tid)
                del self._placements[tid]
                for key in profile.index_keys():
                    self._unindex(key, tid)
                self._unorigin(profile.runtime_id, tid)
                gone.append(tid)
        return gone

    def clear(self) -> None:
        self._profiles.clear()
        self._placements.clear()
        self._shards.clear()
        self._index.clear()
        self._by_origin.clear()

    def _unindex(self, key: _IndexKey, translator_id: str) -> None:
        bucket = self._index.get(key)
        if bucket is not None:
            bucket.discard(translator_id)
            if not bucket:
                del self._index[key]

    def _unorigin(self, origin: str, translator_id: str) -> None:
        owned = self._by_origin.get(origin)
        if owned is not None:
            owned.discard(translator_id)
            if not owned:
                del self._by_origin[origin]

    # -- serving -----------------------------------------------------------

    def bucket(self, key: _IndexKey) -> List[TranslatorProfile]:
        """Every stored profile carrying ``key`` (the routed unit)."""
        ids = self._index.get(key)
        if not ids:
            return []
        return [self._profiles[tid] for tid in ids]

    def lookup(self, query: Query) -> List[TranslatorProfile]:
        """Exact matches for ``query`` among the stored profiles, via the
        store-wide index (same intersect-then-filter as the flat path)."""
        keys = query.index_keys()
        if not keys:
            return self.scan(query)
        buckets = []
        for key in keys:
            bucket = self._index.get(key)
            if not bucket:
                return []
            buckets.append(bucket)
        buckets.sort(key=len)
        candidates = buckets[0]
        for other in buckets[1:]:
            candidates = candidates & other
            if not candidates:
                return []
        return [
            profile
            for profile in (self._profiles[tid] for tid in candidates)
            if query.matches(profile)
        ]

    def scan(self, query: Query) -> List[TranslatorProfile]:
        return [
            profile
            for profile in self._profiles.values()
            if query.matches(profile)
        ]


class ShardFabric:
    """Per-network registry of active routers: the in-process endpoint for
    synchronously-modeled routed lookups and for offline (socket-less)
    placement dispatch in tests and benchmarks."""

    def __init__(self):
        self.routers: Dict[str, "ShardRouter"] = {}

    def register(self, router: "ShardRouter") -> None:
        self.routers[router.runtime.runtime_id] = router

    def deregister(self, router: "ShardRouter") -> None:
        if self.routers.get(router.runtime.runtime_id) is router:
            del self.routers[router.runtime.runtime_id]

    def get(self, runtime_id: str) -> Optional["ShardRouter"]:
        router = self.routers.get(runtime_id)
        if router is not None and router.active:
            return router
        return None


def shard_fabric(network: "Network") -> ShardFabric:
    """The network's router registry, created on first use."""
    fabric = getattr(network, "_shard_fabric", None)
    if fabric is None:
        fabric = ShardFabric()
        network._shard_fabric = fabric
    return fabric


class ShardRouter:
    """One runtime's routing/placement layer over the sharded namespace."""

    def __init__(
        self,
        runtime: "UMiddleRuntime",
        enabled: bool = False,
        shard_count: int = DEFAULT_SHARD_COUNT,
        cache_ttl: float = CACHE_TTL,
    ):
        self.runtime = runtime
        self.enabled = enabled
        self.map = ShardMap(shard_count)
        self.store = ShardStore()
        self.cache_ttl = cache_ttl
        #: True between start() and deactivate(): the router is reachable
        #: through the fabric and reacts to membership changes.
        self.active = False
        self._started_at = 0.0
        self._owned: FrozenSet[int] = frozenset()
        #: stored-but-unowned shard -> first time we noticed (sweep ages
        #: these out once they stayed unowned for a full directory lease).
        self._foreign_since: Dict[int, float] = {}
        #: origins conclusively gone from *this* node's view; routed
        #: results mentioning them are filtered until they reannounce (a
        #: peer whose lease expiry fires later may still serve them).
        self._lost_origins: Set[str] = set()
        self._key_shards: Dict[_IndexKey, int] = {}
        #: routing key -> (stamp, bucket) hot-key cache for routed lookups.
        self._cache: Dict[_IndexKey, Tuple[float, Tuple[TranslatorProfile, ...]]] = {}
        #: outgoing standing-query interest: route key (None = everything)
        #: -> {"count": local subscriptions, "owners": owners subscribed at}.
        self._subs_out: Dict[Optional[_IndexKey], Dict] = {}
        #: owner-side interest: route key (None = everything) -> subscriber
        #: runtime ids whose standing queries cover it.
        self._interest: Dict[Optional[_IndexKey], Set[str]] = {}
        # counters (benchmarks + tests)
        self.local_lookups = 0
        self.routed_lookups = 0
        self.cache_hits = 0
        self.fanout_lookups = 0
        self.routed_failures = 0
        self.bucket_serves = 0
        self.bucket_bytes_served = 0
        self.scan_serves = 0
        self.stores_received = 0
        self.removes_received = 0
        self.deltas_sent = 0
        self.deltas_received = 0
        self.pushes_sent = 0
        self.direct_dispatches = 0
        self.rebalances = 0

    # -- wiring ------------------------------------------------------------

    def _profile_wire_size(self, profile: TranslatorProfile) -> int:
        """Bytes one profile occupies on a placement/delta datagram.

        Codec-honest: with the binary codec active the charge is the
        actual self-contained encoding length, otherwise the legacy JSON
        heuristic.
        """
        if self.runtime.codec_enabled:
            return profile.encoded_size()
        return profile.estimated_size()

    @property
    def directory(self) -> "Directory":
        return self.runtime.directory

    @property
    def runtime_id(self) -> str:
        return self.runtime.runtime_id

    def shard_of(self, key: _IndexKey, salt: int = 0) -> int:
        cache_key = (key, salt)
        shard = self._key_shards.get(cache_key)
        if shard is None:
            shard = shard_of_key(key, self.map.shard_count, salt)
            if len(self._key_shards) > 65536:
                self._key_shards.clear()
            self._key_shards[cache_key] = shard
        return shard

    def shards_of_profile(self, profile: TranslatorProfile) -> Set[int]:
        """The shards a profile is written to: one salted sub-shard per
        index key (the salt is per-profile, so a hot key's population
        spreads over ``KEY_SPLIT`` owners)."""
        salt = placement_salt(profile.translator_id)
        return {self.shard_of(key, salt) for key in profile.index_keys()}

    def placement_shard(self, key: _IndexKey, translator_id: str) -> int:
        """The sub-shard one specific profile's placement for ``key``
        lives on (tests/benchmarks: 'who owns this profile's key?')."""
        return self.shard_of(key, placement_salt(translator_id))

    def read_shards(self, key: _IndexKey) -> List[int]:
        """Every sub-shard a keyed lookup must consult."""
        return [self.shard_of(key, salt) for salt in range(KEY_SPLIT)]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if not self.enabled or self.active:
            return
        self.active = True
        self._started_at = self.runtime.kernel.now
        shard_fabric(self.runtime.network).register(self)
        self.membership_changed(force=True)

    def deactivate(self) -> None:
        if not self.enabled:
            return
        self.active = False
        shard_fabric(self.runtime.network).deregister(self)

    def discard_state(self) -> None:
        """Cold-crash semantics: the store, caches and interest tables are
        in-memory state and die with the process."""
        self.store.clear()
        self._cache.clear()
        self._interest.clear()
        self._subs_out.clear()
        self._owned = frozenset()
        self._foreign_since.clear()
        self._lost_origins.clear()

    def recover(self, state: "RecoveredState") -> None:
        """Rebuild the owned shards from the replayed journal (called by
        cold recovery with appends muted)."""
        if not self.enabled:
            return
        for entry in state.shard_entries.values():
            profile = TranslatorProfile.from_dict(entry["profile"])
            self.store.store(profile, entry["shards"])
        self._owned = frozenset(state.shard_owned)

    def seed_members(self, members: Iterable[str]) -> None:
        """Offline/bench hook: activate with an explicit membership view
        instead of learning it from directory gossip."""
        self.active = True
        self._started_at = self.runtime.kernel.now
        shard_fabric(self.runtime.network).register(self)
        self.map.rebuild(members)
        self._owned = self.map.owned_by(self.runtime_id)

    # -- membership / rebalancing ------------------------------------------

    def membership_changed(self, force: bool = False) -> None:
        """Recompute the shard map from the directory's membership view and
        reconcile: journal the ownership transition, drop shards that moved
        away, re-place local profiles with the current owners, and re-route
        standing-query interest."""
        if not self.enabled or not self.active:
            return
        members = set(self.directory._runtimes)
        members.add(self.runtime_id)
        changed = self.map.rebuild(members)
        if not changed and not force:
            return
        self.rebalances += 1
        old_owned = self._owned
        self._owned = self.map.owned_by(self.runtime_id)
        if self._owned != old_owned:
            self.runtime.journal.append(
                "shard-own", {"owned": sorted(self._owned)}
            )
            # Shards we held and conclusively lost drop right away (their
            # new owner is being pushed the same profiles by every
            # origin); sender-directed placements we never owned are aged
            # out by :meth:`sweep` instead -- the sender's view may simply
            # be ahead of ours.
            lost = old_owned - self._owned
            if lost:
                for shard in lost:
                    self.store.drop_shard(shard)
                self.runtime.journal.append(
                    "shard-drop", {"shards": sorted(lost)}
                )
            for shard in self._owned & set(self._foreign_since):
                del self._foreign_since[shard]
            if self.runtime.tracing:
                self.runtime.trace(
                    "shard.rebalance",
                    f"{len(self.map.members)} member(s), "
                    f"{len(self._owned)} shard(s) owned "
                    f"(+{len(self._owned - old_owned)}/-{len(lost)})",
                    members=len(self.map.members),
                    owned=len(self._owned),
                )
        self._cache.clear()
        self._push_local_profiles()
        self._reroute_subscriptions()

    def origin_lost(self, runtime_id: str) -> None:
        """An origin runtime is conclusively gone (lease expiry or
        transport give-up): reap the profiles it placed on our shards, the
        shard-layer analog of the flat directory's lease reaping."""
        if not self.enabled or not self.active:
            return
        if runtime_id == self.runtime_id:
            return
        self._lost_origins.add(runtime_id)
        self._interest_drop_subscriber(runtime_id)
        tids = self.store.tids_of_origin(runtime_id)
        if not tids:
            return
        removed_profiles = []
        for tid in tids:
            profile = self.store.remove(tid)
            if profile is not None:
                self.runtime.journal.append(
                    "shard-remove", {"translator_id": tid}
                )
                removed_profiles.append(profile)
        if removed_profiles:
            if self.runtime.tracing:
                self.runtime.trace(
                    "shard.origin-reaped",
                    f"{runtime_id}: {len(removed_profiles)} stored "
                    "profile(s) reaped",
                    reaped=len(removed_profiles),
                )
            self._emit_deltas(added=(), removed=removed_profiles)

    def sweep(self) -> None:
        """Periodic lease-style cleanup (ridden by the directory sweeper):
        origins and subscribers absent from the membership view are
        forgotten once the post-start grace (one directory lease) passed --
        covering peers that died while this node was down."""
        if not self.enabled or not self.active:
            return
        from repro.core.directory import LEASE

        # Age out placements directed at us under a membership view that
        # never materialized here.  A sender whose lease expiry simply
        # fired before ours directs shards we are *about* to inherit, so
        # an unowned placement is only stale once it stayed unowned for a
        # full lease -- after which every view has converged and the map
        # is authoritative.
        now = self.runtime.kernel.now
        stale = []
        for shard in self.store.stored_shards():
            if shard in self._owned:
                self._foreign_since.pop(shard, None)
                continue
            since = self._foreign_since.setdefault(shard, now)
            if now - since > LEASE:
                stale.append(shard)
        if stale:
            for shard in stale:
                self.store.drop_shard(shard)
                del self._foreign_since[shard]
            self.runtime.journal.append(
                "shard-drop", {"shards": sorted(stale)}
            )
        # A tombstoned origin that reannounced is alive again.
        self._lost_origins -= set(self.directory._runtimes)
        if self.runtime.kernel.now - self._started_at < LEASE:
            return
        members = set(self.directory._runtimes)
        members.add(self.runtime_id)
        for origin in self.store.origins() - members:
            self.origin_lost(origin)
        for key, subscribers in list(self._interest.items()):
            subscribers &= members
            if not subscribers:
                del self._interest[key]

    # -- placement ---------------------------------------------------------

    def local_registered(self, profile: TranslatorProfile) -> None:
        """A local translator (re)registered or changed health: place it on
        the owners of its key shards."""
        if not self.enabled or not self.active:
            return
        self._place([profile])

    def local_unregistered(self, profile: TranslatorProfile) -> None:
        if not self.enabled or not self.active:
            return
        targets = self._owners_of_shards(self.shards_of_profile(profile))
        payload = None
        for owner in targets:
            if owner == self.runtime_id:
                self._evict(profile.translator_id)
            else:
                if payload is None:
                    payload = {
                        "kind": "umiddle-shard-remove",
                        "origin": self.runtime_id,
                        "ids": [profile.translator_id],
                    }
                self._send(payload, 64 + len(profile.translator_id), owner)

    def _push_local_profiles(self) -> None:
        profiles = self.directory._local_profiles()
        if profiles:
            self._place(profiles)

    def _place(self, profiles: List[TranslatorProfile]) -> None:
        """Group profiles by owning runtime and push one batched placement
        message per owner (self-owned shards store directly).

        The push is *sender-directed*: it names the shards each profile is
        being placed under, so an owner whose own membership view lags (it
        has not yet expired the peer whose shards it inherited) still
        records the placement instead of intersecting it away against its
        stale ownership set -- the next rebalance prunes any shard it
        turns out not to own."""
        per_owner: Dict[str, Tuple[List[TranslatorProfile], List[List[int]]]] = {}
        for profile in profiles:
            targets: Dict[str, List[int]] = {}
            for shard in sorted(self.shards_of_profile(profile)):
                owner = self.map.owner(shard)
                if owner is None:
                    owner = self.runtime_id
                targets.setdefault(owner, []).append(shard)
            for owner, shards in targets.items():
                batch, shard_lists = per_owner.setdefault(owner, ([], []))
                batch.append(profile)
                shard_lists.append(shards)
        for owner, (batch, shard_lists) in per_owner.items():
            if owner == self.runtime_id:
                self._admit(batch, shard_lists)
            else:
                payload = {
                    "kind": "umiddle-shard-store",
                    "origin": self.runtime_id,
                    "profiles": [p.to_dict() for p in batch],
                    "digests": [p.wire_digest for p in batch],
                    "shards": shard_lists,
                }
                size = 64 + sum(self._profile_wire_size(p) + 48 for p in batch)
                self._send(payload, size, owner)
                self.pushes_sent += 1

    def _owners_of_shards(self, shards: Iterable[int]) -> Set[str]:
        owners = set()
        for shard in shards:
            owner = self.map.owner(shard)
            if owner is None:
                owner = self.runtime_id
            owners.add(owner)
        return owners

    def _admit(
        self,
        profiles: List[TranslatorProfile],
        shard_lists: Optional[List[List[int]]] = None,
    ) -> None:
        """Owner side of placement: store each profile under the union of
        the sender-directed shards and the owned subset of its key shards,
        journal the mutation, and stream deltas to interested subscribers.

        Sender-directed shards are honored even when this node's own
        ownership view does not (yet) cover them: origin re-pushes are the
        only repair mechanism, and lease expiries fire at different times
        on different nodes -- a push for a shard we are about to inherit
        must not be intersected away.  The next rebalance prunes shards we
        never actually own."""
        added = []
        for position, profile in enumerate(profiles):
            targets = self.shards_of_profile(profile) & self._owned
            if shard_lists is not None:
                targets |= set(shard_lists[position])
            if not targets and not self._owned:
                # Degenerate pre-membership view (offline tests): store
                # under the profile's shards directly.
                targets = self.shards_of_profile(profile)
            if not targets:
                continue
            content_changed, placement_changed, _previous = self.store.store(
                profile, targets
            )
            if content_changed or placement_changed:
                self.runtime.journal.append(
                    "shard-store",
                    {
                        "profile": profile.to_dict(),
                        "shards": list(
                            self.store.placements_of(profile.translator_id)
                        ),
                    },
                )
            if content_changed:
                added.append(profile)
        if added:
            self._emit_deltas(added=added, removed=())

    def _evict(self, translator_id: str) -> None:
        profile = self.store.remove(translator_id)
        if profile is None:
            return
        self.runtime.journal.append(
            "shard-remove", {"translator_id": translator_id}
        )
        self._emit_deltas(added=(), removed=[profile])

    # -- interest-scoped deltas --------------------------------------------

    def subscribe_routed(self, route_key: Optional[_IndexKey]) -> None:
        """A local standing query registered under ``route_key`` (None =
        not coarsely indexable, interested in everything): make sure the
        key's owner streams us its deltas."""
        if not self.enabled or not self.active:
            return
        record = self._subs_out.get(route_key)
        if record is None:
            record = {"count": 0, "owners": set()}
            self._subs_out[route_key] = record
        record["count"] += 1
        self._route_subscription(route_key, record)

    def unsubscribe_routed(self, route_key: Optional[_IndexKey]) -> None:
        if not self.enabled or not self.active:
            return
        record = self._subs_out.get(route_key)
        if record is None:
            return
        record["count"] -= 1
        if record["count"] > 0:
            return
        del self._subs_out[route_key]
        payload = {
            "kind": "umiddle-shard-unsubscribe",
            "origin": self.runtime_id,
            "key": list(route_key) if route_key is not None else None,
        }
        for owner in record["owners"]:
            self._send(payload, 96, owner)

    def _route_subscription(
        self, route_key: Optional[_IndexKey], record: Dict
    ) -> None:
        """(Re)register interest with the key's current owner(s)."""
        if route_key is None:
            targets = set(self.map.members) or {self.runtime_id}
        else:
            # Interest covers every sub-shard of the key: whichever owner
            # a matching profile's salt lands on must reach us.
            targets = set()
            for shard in self.read_shards(route_key):
                owner = self.map.owner(shard)
                targets.add(owner if owner is not None else self.runtime_id)
        stale = record["owners"] - targets
        if stale:
            payload = {
                "kind": "umiddle-shard-unsubscribe",
                "origin": self.runtime_id,
                "key": list(route_key) if route_key is not None else None,
            }
            for owner in stale:
                self._send(payload, 96, owner)
        for owner in targets - record["owners"]:
            self._send(
                {
                    "kind": "umiddle-shard-subscribe",
                    "origin": self.runtime_id,
                    "key": list(route_key) if route_key is not None else None,
                },
                96,
                owner,
            )
        record["owners"] = targets

    def _reroute_subscriptions(self) -> None:
        for route_key, record in self._subs_out.items():
            self._route_subscription(route_key, record)

    def _interest_drop_subscriber(self, runtime_id: str) -> None:
        for key, subscribers in list(self._interest.items()):
            subscribers.discard(runtime_id)
            if not subscribers:
                del self._interest[key]

    def _emit_deltas(
        self,
        added: Iterable[TranslatorProfile],
        removed: Iterable[TranslatorProfile],
    ) -> None:
        """Stream a store change only to subscribers whose interest set
        covers one of the affected profiles' keys."""
        if not self._interest:
            return
        per_subscriber: Dict[str, Dict[str, list]] = {}

        def targets_for(profile: TranslatorProfile) -> Set[str]:
            targets = set(self._interest.get(None, ()))
            for key in profile.index_keys():
                subscribers = self._interest.get(key)
                if subscribers:
                    targets |= subscribers
            return targets

        for profile in added:
            for subscriber in targets_for(profile):
                bucket = per_subscriber.setdefault(
                    subscriber, {"profiles": [], "digests": [], "removed": []}
                )
                bucket["profiles"].append(profile.to_dict())
                bucket["digests"].append(profile.wire_digest)
        for profile in removed:
            for subscriber in targets_for(profile):
                bucket = per_subscriber.setdefault(
                    subscriber, {"profiles": [], "digests": [], "removed": []}
                )
                bucket["removed"].append(profile.translator_id)
        for subscriber, delta in per_subscriber.items():
            payload = {
                "kind": "umiddle-shard-delta",
                "origin": self.runtime_id,
                "profiles": delta["profiles"],
                "digests": delta["digests"],
                "removed": delta["removed"],
            }
            size = 64 + sum(len(d) + 48 for d in delta["profiles"]) + sum(
                len(r) + 4 for r in delta["removed"]
            )
            self._send(payload, size, subscriber)
            self.deltas_sent += 1

    # -- lookups -----------------------------------------------------------

    def lookup(self, query: Query) -> List[TranslatorProfile]:
        """Sharded lookup: route by the query's first index key to the
        owning shard (TTL cache for hot keys), fan out + merge when the
        query has no indexable key, and overlay the local directory view
        (own translators are visible before placement propagates).

        Results are ordered healthy-first, then by translator id -- the
        flat path's per-node registration order has no global analog."""
        keys = query.index_keys()
        if not keys:
            matched = self._fanout_scan(query)
        else:
            route_key = keys[0]
            remote: Dict[str, int] = {}
            local = False
            for shard in self.read_shards(route_key):
                owner = self.map.owner(shard)
                if owner is None or owner == self.runtime_id:
                    local = True
                else:
                    remote.setdefault(owner, shard)
            matched = []
            if local:
                self.local_lookups += 1
                matched.extend(self.store.lookup(query))
            if remote:
                bucket = self._routed_bucket(route_key, remote)
                matched.extend(p for p in bucket if query.matches(p))
        if self._lost_origins:
            # A peer whose lease expiry fires after ours (or a stale TTL
            # cache entry) can still serve profiles from an origin this
            # node already reaped; the flat path would never show them.
            alive = self.directory._runtimes
            matched = [
                p
                for p in matched
                if p.runtime_id not in self._lost_origins
                or p.runtime_id in alive
            ]
        merged = {profile.translator_id: profile for profile in matched}
        for profile in self.directory.lookup_local(query):
            merged.setdefault(profile.translator_id, profile)
        return self._order(list(merged.values()), query)

    def _routed_bucket(
        self, route_key: _IndexKey, owner_shards: Dict[str, int]
    ) -> Tuple[TranslatorProfile, ...]:
        """The merged remote bucket for one key: one RPC per distinct
        sub-shard owner, ranked failover per shard, TTL-cached as a
        unit."""
        now = self.runtime.kernel.now
        cached = self._cache.get(route_key)
        if (
            cached is not None
            and self.cache_ttl > 0
            and now - cached[0] <= self.cache_ttl
        ):
            self.cache_hits += 1
            return cached[1]
        fabric = shard_fabric(self.runtime.network)
        merged: Dict[str, TranslatorProfile] = {}
        complete = True
        for owner, shard in owner_shards.items():
            served = False
            # The ranked failover list costs a full member sort -- only
            # compute it once the primary owner is actually unreachable.
            candidates = (owner,)
            while True:
                for candidate in candidates:
                    router = fabric.get(candidate)
                    if router is None:
                        continue
                    self.routed_lookups += 1
                    for profile in router.serve_bucket(route_key):
                        merged.setdefault(profile.translator_id, profile)
                    served = True
                    break
                if served or len(candidates) > 1:
                    break
                candidates = tuple(
                    member
                    for member in self.map.owners_ranked(shard)
                    if member != owner and member != self.runtime_id
                )
                if not candidates:
                    break
            if not served:
                complete = False
        if not complete:
            # Mid-failover window with no live owner for some sub-shard:
            # backfill from the stale cache if we have one, and don't
            # let the partial result poison the cache.
            self.routed_failures += 1
            if cached is not None:
                for profile in cached[1]:
                    merged.setdefault(profile.translator_id, profile)
        bucket = tuple(merged.values())
        if complete:
            self._cache[route_key] = (now, bucket)
        if self.runtime.tracing:
            self.runtime.trace(
                "shard.lookup-routed",
                f"{route_key[0]}={route_key[1]} -> "
                f"{len(owner_shards)} owner(s) "
                f"({len(bucket)} candidate(s))",
                owners=len(owner_shards),
            )
        return bucket

    def _fanout_scan(self, query: Query) -> List[TranslatorProfile]:
        self.fanout_lookups += 1
        fabric = shard_fabric(self.runtime.network)
        merged: Dict[str, TranslatorProfile] = {}
        members = self.map.members or (self.runtime_id,)
        for member in members:
            if member == self.runtime_id:
                matches = self.store.scan(query)
            else:
                router = fabric.get(member)
                if router is None:
                    continue
                self.routed_lookups += 1
                matches = router.serve_scan(query)
            for profile in matches:
                merged.setdefault(profile.translator_id, profile)
        return list(merged.values())

    def serve_bucket(self, route_key: _IndexKey) -> List[TranslatorProfile]:
        """Owner side of a routed lookup: the full bucket for one key."""
        bucket = self.store.bucket(route_key)
        self.bucket_serves += 1
        self.bucket_bytes_served += sum(self._profile_wire_size(p) for p in bucket)
        return bucket

    def serve_scan(self, query: Query) -> List[TranslatorProfile]:
        self.scan_serves += 1
        return self.store.scan(query)

    def _order(
        self, matched: List[TranslatorProfile], query: Query
    ) -> List[TranslatorProfile]:
        monitor = self.runtime.health
        if not monitor.enabled:
            matched.sort(key=lambda profile: profile.translator_id)
            return matched
        decorated = []
        for profile in matched:
            rank = monitor.effective_rank(profile)
            if rank >= 2 and not query.include_quarantined:
                continue
            decorated.append((rank, profile.translator_id, profile))
        decorated.sort()
        return [profile for _rank, _tid, profile in decorated]

    # -- message plane ------------------------------------------------------

    def handle(self, payload: dict) -> None:
        """Dispatch one ``umiddle-shard-*`` payload (directory receiver)."""
        if not self.enabled or not self.active:
            return
        kind = payload.get("kind")
        # No origin==self guard: all shard traffic is unicast, and a
        # self-targeted send (we own the shard a local subscription or
        # placement routes to) legitimately short-circuits through here.
        origin = payload.get("origin")
        if kind == "umiddle-shard-store":
            self.stores_received += 1
            digests = payload.get("digests") or [None] * len(payload["profiles"])
            self._admit(
                [
                    TranslatorProfile.from_dict(data, digest=digest)
                    for data, digest in zip(payload["profiles"], digests)
                ],
                payload.get("shards"),
            )
        elif kind == "umiddle-shard-remove":
            self.removes_received += 1
            for translator_id in payload["ids"]:
                self._evict(translator_id)
        elif kind == "umiddle-shard-subscribe":
            self._handle_subscribe(origin, payload.get("key"))
        elif kind == "umiddle-shard-unsubscribe":
            key = payload.get("key")
            route_key = tuple(key) if key is not None else None
            subscribers = self._interest.get(route_key)
            if subscribers is not None:
                subscribers.discard(origin)
                if not subscribers:
                    del self._interest[route_key]
        elif kind == "umiddle-shard-delta":
            self.deltas_received += 1
            self.directory.apply_shard_delta(
                origin,
                payload.get("profiles", ()),
                payload.get("digests"),
                payload.get("removed", ()),
            )

    def _handle_subscribe(self, origin: str, key) -> None:
        route_key = tuple(key) if key is not None else None
        self._interest.setdefault(route_key, set()).add(origin)
        # Initial sync: the subscriber gets the current bucket at once so a
        # standing query re-routed to a new owner never misses the state
        # that predates its subscription.
        if route_key is None:
            current = list(self.store._profiles.values())
        else:
            current = self.store.bucket(route_key)
        if not current:
            return
        payload = {
            "kind": "umiddle-shard-delta",
            "origin": self.runtime_id,
            "profiles": [p.to_dict() for p in current],
            "digests": [p.wire_digest for p in current],
            "removed": [],
        }
        size = 64 + sum(self._profile_wire_size(p) + 48 for p in current)
        self._send(payload, size, origin)
        self.deltas_sent += 1

    def _send(self, payload: dict, size: int, runtime_id: str) -> None:
        """Ship one shard-plane payload to a peer router.

        Live runtimes use real datagrams on the directory port; a router
        without a socket (offline tests/benchmarks) dispatches directly
        through the fabric so placement still converges without a kernel.
        Self-targeted sends always short-circuit in process."""
        if runtime_id == self.runtime_id:
            self.handle(payload)
            return
        socket = self.directory._socket
        if socket is not None and not socket.closed:
            info = self.directory.runtime_info(runtime_id)
            if info is None:
                return
            socket.sendto(payload, size, info.address, info.directory_port)
            return
        router = shard_fabric(self.runtime.network).get(runtime_id)
        if router is not None:
            self.direct_dispatches += 1
            router.handle(payload)
