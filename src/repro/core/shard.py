"""Sharded directory: rendezvous-hashed namespace partitions.

The flat directory (design choice 2-b's aggregated intermediary space)
gives every runtime a full gossiped replica: per-node memory and the cold
full-state apply grow linearly with the federation, which caps the
millions-of-users trajectory.  This module partitions the namespace
instead, the registry-federation step of the SOA-coordination literature:

- **ShardMap** -- the coarse ``(axis, value)`` discovery keys (from
  :meth:`TranslatorProfile.index_keys` / :meth:`Query.index_keys`) hash
  onto a fixed ring of *virtual shards*; shards are assigned to live
  runtimes by rendezvous (highest-random-weight) hashing, so every node
  computes the identical assignment from the identical membership view,
  and a join or leave moves only the shards the membership change
  actually touches.
- **ShardStore** -- the authoritative per-owner state: profiles stored
  under every owned shard their keys hash to, with a store-local inverted
  index so routed lookups stay sub-linear inside a shard.
- **ShardRouter** -- the routing layer between the runtime and its
  directory.  Registrations are *placed* on the owners of the profile's
  key shards (the origin re-pushes on every membership change, so
  placement is self-healing soft state).  Lookups route to the owner of
  the query's first index key -- the closure property guarantees that any
  matching profile carries every query key, so one key's owner holds the
  full candidate set -- with a TTL cache of hot key buckets and a
  fan-out + merge path for queries with no indexable key.  Standing
  queries register *interest* at the owner, and the owner streams
  per-shard deltas only to interested peers: gossip volume follows the
  subscription set, not the federation size.

Simulation note: placement, subscription and delta traffic ride real
simulated datagrams on the directory port.  Routed *lookups* are modeled
as synchronous RPCs -- the router calls the owner's in-process store
directly (the sim kernel cannot block a synchronous ``lookup()`` call on
a network round-trip) and accounts the traffic in counters
(``routed_lookups``, ``bucket_bytes_served``) instead of on the wire.

Durability: every owner-side store mutation and ownership transition is
journaled (``shard-store``/``shard-remove``/``shard-drop``/``shard-own``
records), so :meth:`UMiddleRuntime.recover` rebuilds a crashed owner's
shards byte-equivalently from the write-ahead log.

Replication (:mod:`repro.core.replica`, PR 9): with
``UMiddleRuntime(replication_factor=R)`` for R > 1, each shard is also
held as a passive slice by the next ``R-1`` members of the rendezvous
order.  The primary streams its slice mutations to those replicas
(``umiddle-shard-replica`` frames, journaled as ``shard-replica``
records), membership changes warm-ingest a newly-owned shard from the
local replica slice instead of waiting for origin re-push, keyed lookups
whose primary is unreachable or quarantined fail over to the replicas as
explicitly-traced degraded reads with a bounded-staleness marker, and a
lookup no holder can serve raises the structured
:class:`~repro.core.errors.ShardUnavailable` instead of returning a
silently-partial result.  Ownership carries a monotonic, quorum-gated
epoch (``shard-epoch`` records); every replica-plane frame is fenced by
it, so a primary deposed into a minority partition can never resurrect
reaped state after heal.

The whole layer is gated on ``UMiddleRuntime(sharding_enabled=...)``;
off (the default) reproduces the flat-replica directory byte for byte,
and ``replication_factor=1`` (the default) reproduces the single-homed
sharded directory byte for byte.  All runtimes of one federation must
agree on the switches and on ``shard_count``.
"""

from __future__ import annotations

import hashlib
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from repro.core.codec import encode_gossip
from repro.core.errors import ShardUnavailable
from repro.core.health import HealthState
from repro.core.profile import TranslatorProfile
from repro.core.query import Query
from repro.core.replica import (
    ReplicaStore,
    has_quorum,
    replicas_of,
    slice_digest,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.directory import Directory
    from repro.core.journal import RecoveredState
    from repro.core.runtime import UMiddleRuntime
    from repro.simnet.net import Network

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "CACHE_TTL",
    "KEY_SPLIT",
    "placement_salt",
    "ShardMap",
    "ShardStore",
    "ShardRouter",
    "ShardFabric",
    "shard_fabric",
    "shard_of_key",
]

#: Number of virtual shards on the ring.  Must exceed the expected node
#: count for balance (each node owns ``shard_count / nodes`` shards); all
#: runtimes of a federation must use the same value.
DEFAULT_SHARD_COUNT = 128

#: Seconds (simulated) a routed hot-key bucket may be served from the
#: local cache before the owner is consulted again.
CACHE_TTL = 2.0

#: Hot-key split factor.  Low-cardinality axes produce pathologically hot
#: keys -- every profile with a digital port carries the universal
#: ``*/*`` mime pattern, so without splitting, that key's single owner
#: would store the entire federation.  Each key is therefore spread over
#: ``KEY_SPLIT`` salted sub-shards: a profile is *written* to exactly one
#: of them (salted by its translator id, so placement volume is
#: unchanged) while a keyed lookup *reads* all of them and merges.  All
#: runtimes of a federation must use the same value.
KEY_SPLIT = 32

#: Load-weighted placement (data-plane v3).  Per-shard load is quantized
#: into log2 *tiers* of WEIGHT_TIER_BASE profiles: a shard holding fewer
#: than the base is tier 0 (baseline) and contributes nothing, so small
#: federations keep the exact unweighted rendezvous table.  Reports ride
#: directory announcements capped at WEIGHT_REPORT_MAX entries, and a
#: router adopts a changed merged view at most once per
#: WEIGHT_REBALANCE_INTERVAL simulated seconds (hysteresis: quantization
#: absorbs jitter, the interval absorbs report races).
WEIGHT_TIER_BASE = 64
WEIGHT_REPORT_MAX = 32
WEIGHT_REBALANCE_INTERVAL = 10.0

#: Bulk shard-plane payloads at or above this declared size are eligible
#: for zlib block compression when the peer negotiated the z capability.
Z_MIN_BYTES = 512

_IndexKey = Tuple[str, str]
_M64 = (1 << 64) - 1


def shard_of_key(key: _IndexKey, shard_count: int, salt: int = 0) -> int:
    """Stable shard of one coarse ``(axis, value)`` key sub-sharded by
    ``salt`` (a writer uses its profile's placement salt; readers walk
    every salt in ``range(KEY_SPLIT)``)."""
    digest = hashlib.sha1(
        f"{key[0]}\x00{key[1]}\x00{salt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


_placement_salts: Dict[str, int] = {}


def placement_salt(translator_id: str) -> int:
    """The sub-shard salt a profile's placements are written under."""
    salt = _placement_salts.get(translator_id)
    if salt is None:
        digest = hashlib.sha1(translator_id.encode("utf-8")).digest()
        salt = int.from_bytes(digest[:4], "big") % KEY_SPLIT
        if len(_placement_salts) > 65536:
            _placement_salts.clear()
        _placement_salts[translator_id] = salt
    return salt


_member_seeds: Dict[str, int] = {}


def _member_seed(member: str) -> int:
    seed = _member_seeds.get(member)
    if seed is None:
        seed = int.from_bytes(
            hashlib.sha1(member.encode("utf-8")).digest()[:8], "big"
        )
        if len(_member_seeds) > 4096:
            _member_seeds.clear()
        _member_seeds[member] = seed
    return seed


def _weight(seed: int, shard: int) -> int:
    """Rendezvous weight of (member, shard): a splitmix64 mix of the
    member's hash seed and the shard number -- deterministic across
    processes and fast enough for full-table rebuilds in pure Python."""
    x = (seed ^ (shard * 0x9E3779B97F4A7C15)) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


#: Owner tables keyed by (member tuple, shard count, load-tier key).
#: Every router of a converged federation asks for the identical table,
#: so the rendezvous sweep runs once per membership view per process.
_TABLE_CACHE: Dict[
    Tuple[Tuple[str, ...], int, Tuple[Tuple[int, int], ...]], Tuple[str, ...]
] = {}


def _owner_table(
    members: Tuple[str, ...],
    shard_count: int,
    load_key: Tuple[Tuple[int, int], ...] = (),
) -> Tuple[str, ...]:
    cache_key = (members, shard_count, load_key)
    table = _TABLE_CACHE.get(cache_key)
    if table is None:
        seeds = [(_member_seed(member), member) for member in members]
        if not load_key:
            table = tuple(
                max(seeds, key=lambda pair: _weight(pair[0], shard))[1]
                for shard in range(shard_count)
            )
        else:
            table = _weighted_owner_table(seeds, shard_count, load_key)
        if len(_TABLE_CACHE) > 64:
            _TABLE_CACHE.clear()
        _TABLE_CACHE[cache_key] = table
    return table


def _weighted_owner_table(
    seeds: List[Tuple[int, str]],
    shard_count: int,
    load_key: Tuple[Tuple[int, int], ...],
) -> Tuple[str, ...]:
    """Rendezvous assignment biased by observed per-shard load.

    Shards are assigned in descending load-tier order (ties by shard
    number, so the sweep is deterministic); each one goes to the member
    maximizing ``rendezvous_weight / (1 + fill)``, where ``fill`` is the
    load already assigned to that member in this sweep.  A member that
    drew a hot sub-shard therefore scores lower for the next hot shard,
    which is exactly the "fattest node wins too many lotteries" failure
    the plain argmax has.  With an empty ``load_key`` callers get the
    plain sweep (byte-identical placement to the unweighted directory).
    """
    tiers = dict(load_key)
    fill: Dict[str, int] = {member: 0 for _seed, member in seeds}
    order = sorted(range(shard_count), key=lambda s: (-tiers.get(s, 0), s))
    assignment: List[Optional[str]] = [None] * shard_count
    for shard in order:
        best: Optional[str] = None
        best_score = -1.0
        for seed, member in seeds:
            score = _weight(seed, shard) / (1.0 + fill[member])
            if score > best_score:
                best_score = score
                best = member
        assignment[shard] = best
        fill[best] += 1 + tiers.get(shard, 0)
    return tuple(assignment)


class ShardMap:
    """The deterministic shard -> owner assignment for one membership view.

    Rendezvous hashing gives both properties the directory needs without
    any coordination: every node with the same membership view computes
    the same owner for every shard, and changing the membership by one
    node only moves the shards whose argmax that node is (minimal
    disruption on join/leave/crash).
    """

    def __init__(self, shard_count: int = DEFAULT_SHARD_COUNT):
        if shard_count <= 0:
            raise ValueError(f"shard_count must be positive, got {shard_count}")
        self.shard_count = shard_count
        self.members: Tuple[str, ...] = ()
        self.version = 0
        self._table: Tuple[str, ...] = ()
        #: shard -> log2-quantized load tier (absent/0 = baseline).  Empty
        #: (the default) keeps the plain rendezvous sweep byte for byte;
        #: non-empty biases the assignment via the weighted sweep.
        self.load_tiers: Dict[int, int] = {}

    def _load_key(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted(self.load_tiers.items()))

    def rebuild(self, members: Iterable[str]) -> bool:
        """Recompute the assignment; True when the view actually changed."""
        ordered = tuple(sorted(set(members)))
        if ordered == self.members:
            return False
        self.members = ordered
        self.version += 1
        self._table = (
            _owner_table(ordered, self.shard_count, self._load_key())
            if ordered
            else ()
        )
        return True

    def set_load(self, tiers: Dict[int, int]) -> bool:
        """Replace the load-tier view and re-place; True when it changed.

        Tiers are already hysteresis-filtered by the router; only
        positive tiers for in-range shards are kept, so an all-baseline
        report is identical to no report.
        """
        cleaned = {
            shard: tier
            for shard, tier in tiers.items()
            if tier > 0 and 0 <= shard < self.shard_count
        }
        if cleaned == self.load_tiers:
            return False
        self.load_tiers = cleaned
        self.version += 1
        if self.members:
            self._table = _owner_table(
                self.members, self.shard_count, self._load_key()
            )
        return True

    def owner(self, shard: int) -> Optional[str]:
        if not self._table:
            return None
        return self._table[shard]

    def owners_ranked(self, shard: int) -> List[str]:
        """Members by descending rendezvous weight (deterministic failover
        order while a membership change is still propagating).  Under
        weighted placement the assigned owner leads regardless of its raw
        weight, so replica selection (ranks 1..R-1) and failover stay
        consistent with the table."""
        ranked = sorted(
            self.members,
            key=lambda member: _weight(_member_seed(member), shard),
            reverse=True,
        )
        if self.load_tiers and self._table:
            owner = self._table[shard]
            if owner in ranked and ranked[0] != owner:
                ranked.remove(owner)
                ranked.insert(0, owner)
        return ranked

    def owned_by(self, member: str) -> FrozenSet[int]:
        return frozenset(
            shard for shard, owner in enumerate(self._table) if owner == member
        )


class ShardStore:
    """One owner's authoritative slice of the namespace.

    Profiles are stored under every owned shard their keys hash to; a
    store-wide inverted index keeps routed lookups sub-linear.  The
    store-wide index is sound for routed queries: a query routed here by
    key *k* only ever arrives because this node owns ``shard(k)``, and
    every profile carrying *k* is placed on that shard's owner, so the
    index holds the full candidate set for *k*.
    """

    def __init__(self):
        #: translator_id -> profile (one instance however many shards).
        self._profiles: Dict[str, TranslatorProfile] = {}
        #: translator_id -> shards this profile is stored under here.
        self._placements: Dict[str, Set[int]] = {}
        #: shard -> translator ids stored under it.
        self._shards: Dict[int, Set[str]] = {}
        #: store-wide inverted index over the profiles' coarse keys.
        self._index: Dict[_IndexKey, Set[str]] = {}
        #: origin runtime_id -> translator ids (lease reaping by origin).
        self._by_origin: Dict[str, Set[str]] = {}

    # -- inspection --------------------------------------------------------

    @property
    def profile_count(self) -> int:
        return len(self._profiles)

    @property
    def posting_count(self) -> int:
        """Index postings held (the per-node memory the benchmark tracks)."""
        return sum(len(bucket) for bucket in self._index.values())

    def estimated_bytes(self) -> int:
        return sum(p.estimated_size() for p in self._profiles.values())

    def origins(self) -> Set[str]:
        return set(self._by_origin)

    def tids_of_origin(self, origin: str) -> List[str]:
        return list(self._by_origin.get(origin, ()))

    def stored_shards(self) -> List[int]:
        """Every shard with at least one placement here."""
        return list(self._shards)

    def placements_of(self, translator_id: str) -> Tuple[int, ...]:
        return tuple(sorted(self._placements.get(translator_id, ())))

    def profile_of(self, translator_id: str) -> Optional[TranslatorProfile]:
        return self._profiles.get(translator_id)

    def slice_of(self, shard: int) -> List[TranslatorProfile]:
        """Every profile placed under one shard (the replica-sync unit)."""
        return [self._profiles[tid] for tid in self._shards.get(shard, ())]

    def snapshot(self) -> Dict[str, dict]:
        """Canonical JSON-serializable content (recovery equivalence)."""
        return {
            tid: {
                "profile": self._profiles[tid].to_dict(),
                "shards": sorted(self._placements[tid]),
            }
            for tid in sorted(self._profiles)
        }

    # -- mutation ----------------------------------------------------------

    def store(
        self, profile: TranslatorProfile, shards: Iterable[int]
    ) -> Tuple[bool, bool, Optional[TranslatorProfile]]:
        """Store ``profile`` under ``shards`` (merged with any existing
        placements).  Returns ``(content_changed, placement_changed,
        previous_profile)``."""
        tid = profile.translator_id
        previous = self._profiles.get(tid)
        placement = self._placements.get(tid)
        added_shards = set(shards) - (placement or set())
        content_changed = previous is None or (
            previous is not profile and previous != profile
        )
        if previous is None:
            self._profiles[tid] = profile
            self._placements[tid] = set(added_shards)
            for key in profile.index_keys():
                self._index.setdefault(key, set()).add(tid)
            self._by_origin.setdefault(profile.runtime_id, set()).add(tid)
        else:
            if content_changed:
                if previous.index_keys() != profile.index_keys():
                    for key in previous.index_keys():
                        self._unindex(key, tid)
                    for key in profile.index_keys():
                        self._index.setdefault(key, set()).add(tid)
                if previous.runtime_id != profile.runtime_id:
                    self._unorigin(previous.runtime_id, tid)
                    self._by_origin.setdefault(profile.runtime_id, set()).add(tid)
                self._profiles[tid] = profile
            placement.update(added_shards)
        for shard in added_shards:
            self._shards.setdefault(shard, set()).add(tid)
        return content_changed, bool(added_shards), previous

    def remove(self, translator_id: str) -> Optional[TranslatorProfile]:
        profile = self._profiles.pop(translator_id, None)
        if profile is None:
            return None
        for shard in self._placements.pop(translator_id, ()):
            bucket = self._shards.get(shard)
            if bucket is not None:
                bucket.discard(translator_id)
                if not bucket:
                    del self._shards[shard]
        for key in profile.index_keys():
            self._unindex(key, translator_id)
        self._unorigin(profile.runtime_id, translator_id)
        return profile

    def drop_shard(self, shard: int) -> List[str]:
        """Forget one shard's placements (ownership moved away).  Profiles
        whose only placement here was this shard leave the store; returns
        their ids.  This is a *placement* change, never a namespace event:
        the new owner holds the same profiles."""
        gone = []
        for tid in list(self._shards.pop(shard, ())):
            placement = self._placements[tid]
            placement.discard(shard)
            if not placement:
                profile = self._profiles.pop(tid)
                del self._placements[tid]
                for key in profile.index_keys():
                    self._unindex(key, tid)
                self._unorigin(profile.runtime_id, tid)
                gone.append(tid)
        return gone

    def clear(self) -> None:
        self._profiles.clear()
        self._placements.clear()
        self._shards.clear()
        self._index.clear()
        self._by_origin.clear()

    def _unindex(self, key: _IndexKey, translator_id: str) -> None:
        bucket = self._index.get(key)
        if bucket is not None:
            bucket.discard(translator_id)
            if not bucket:
                del self._index[key]

    def _unorigin(self, origin: str, translator_id: str) -> None:
        owned = self._by_origin.get(origin)
        if owned is not None:
            owned.discard(translator_id)
            if not owned:
                del self._by_origin[origin]

    # -- serving -----------------------------------------------------------

    def bucket(self, key: _IndexKey) -> List[TranslatorProfile]:
        """Every stored profile carrying ``key`` (the routed unit)."""
        ids = self._index.get(key)
        if not ids:
            return []
        return [self._profiles[tid] for tid in ids]

    def lookup(self, query: Query) -> List[TranslatorProfile]:
        """Exact matches for ``query`` among the stored profiles, via the
        store-wide index (same intersect-then-filter as the flat path)."""
        keys = query.index_keys()
        if not keys:
            return self.scan(query)
        buckets = []
        for key in keys:
            bucket = self._index.get(key)
            if not bucket:
                return []
            buckets.append(bucket)
        buckets.sort(key=len)
        candidates = buckets[0]
        for other in buckets[1:]:
            candidates = candidates & other
            if not candidates:
                return []
        return [
            profile
            for profile in (self._profiles[tid] for tid in candidates)
            if query.matches(profile)
        ]

    def scan(self, query: Query) -> List[TranslatorProfile]:
        return [
            profile
            for profile in self._profiles.values()
            if query.matches(profile)
        ]


class ShardFabric:
    """Per-network registry of active routers: the in-process endpoint for
    synchronously-modeled routed lookups and for offline (socket-less)
    placement dispatch in tests and benchmarks."""

    def __init__(self):
        self.routers: Dict[str, "ShardRouter"] = {}

    def register(self, router: "ShardRouter") -> None:
        self.routers[router.runtime.runtime_id] = router

    def deregister(self, router: "ShardRouter") -> None:
        if self.routers.get(router.runtime.runtime_id) is router:
            del self.routers[router.runtime.runtime_id]

    def get(self, runtime_id: str) -> Optional["ShardRouter"]:
        router = self.routers.get(runtime_id)
        if router is not None and router.active:
            return router
        return None


def shard_fabric(network: "Network") -> ShardFabric:
    """The network's router registry, created on first use."""
    fabric = getattr(network, "_shard_fabric", None)
    if fabric is None:
        fabric = ShardFabric()
        network._shard_fabric = fabric
    return fabric


class ShardRouter:
    """One runtime's routing/placement layer over the sharded namespace."""

    def __init__(
        self,
        runtime: "UMiddleRuntime",
        enabled: bool = False,
        shard_count: int = DEFAULT_SHARD_COUNT,
        cache_ttl: float = CACHE_TTL,
        replication_factor: int = 1,
    ):
        self.runtime = runtime
        self.enabled = enabled
        self.map = ShardMap(shard_count)
        self.store = ShardStore()
        self.cache_ttl = cache_ttl
        #: Shard copies kept across the federation: 1 (the default) is the
        #: single-homed PR 6 directory, R > 1 adds R-1 passive replica
        #: slices per shard for degraded-read availability.
        self.replication_factor = max(1, int(replication_factor))
        #: Passive slices this node holds for shards it does not own.
        self.replicas = ReplicaStore()
        #: This node's monotonic ownership epoch (quorum-gated bumps,
        #: journaled as ``shard-epoch``); 0 until the first owned view.
        self.epoch = 0
        #: shard -> highest epoch accepted on the replica plane (fencing).
        self._shard_epochs: Dict[int, int] = {}
        #: owned shard -> replica peers last synced (route bookkeeping).
        self._replica_routes: Dict[int, Tuple[str, ...]] = {}
        #: origin -> {translator_id: promoted_at} for warm-ingested
        #: entries awaiting confirmation by that origin's next complete
        #: re-push.  A replica slice can hold a profile whose removal
        #: raced the handoff (the origin's remove was addressed to the
        #: unreachable old owner), so promotions are provisional until
        #: the origin restates its live set -- or a full lease passes.
        self._provisional: Dict[str, Dict[str, float]] = {}
        #: True between start() and deactivate(): the router is reachable
        #: through the fabric and reacts to membership changes.
        self.active = False
        self._started_at = 0.0
        self._owned: FrozenSet[int] = frozenset()
        #: stored-but-unowned shard -> first time we noticed (sweep ages
        #: these out once they stayed unowned for a full directory lease).
        self._foreign_since: Dict[int, float] = {}
        #: origins conclusively gone from *this* node's view; routed
        #: results mentioning them are filtered until they reannounce (a
        #: peer whose lease expiry fires later may still serve them).
        self._lost_origins: Set[str] = set()
        self._key_shards: Dict[_IndexKey, int] = {}
        #: Load-weighted placement state (data-plane v3, gated on the
        #: runtime's ``compression_enabled``): per-origin quantized load
        #: reports, the monotonic journaled weight epoch, and the stamp of
        #: the last adopted view (hysteresis).
        self._peer_loads: Dict[str, Dict[int, int]] = {}
        self.weight_epoch = 0
        self._last_weight_change = 0.0
        #: routing key -> (stamp, bucket) hot-key cache for routed lookups.
        self._cache: Dict[_IndexKey, Tuple[float, Tuple[TranslatorProfile, ...]]] = {}
        #: outgoing standing-query interest: route key (None = everything)
        #: -> {"count": local subscriptions, "owners": owners subscribed at}.
        self._subs_out: Dict[Optional[_IndexKey], Dict] = {}
        #: owner-side interest: route key (None = everything) -> subscriber
        #: runtime ids whose standing queries cover it.
        self._interest: Dict[Optional[_IndexKey], Set[str]] = {}
        # counters (benchmarks + tests)
        self.local_lookups = 0
        self.routed_lookups = 0
        self.cache_hits = 0
        self.fanout_lookups = 0
        self.routed_failures = 0
        self.bucket_serves = 0
        self.bucket_bytes_served = 0
        self.scan_serves = 0
        self.stores_received = 0
        self.removes_received = 0
        self.deltas_sent = 0
        self.deltas_received = 0
        self.pushes_sent = 0
        self.direct_dispatches = 0
        self.rebalances = 0
        self.weight_rebalances = 0
        self.z_frames_sent = 0
        self.z_bytes_saved = 0
        # replication counters (all zero at replication_factor=1)
        self.degraded_reads = 0
        self.unavailable_lookups = 0
        self.fenced_frames = 0
        self.warm_ingests = 0
        self.replica_pushes_sent = 0
        self.replica_pushes_received = 0
        self.digests_sent = 0
        self.digest_replies = 0
        self.replica_syncs = 0
        self.stale_evictions = 0

    # -- wiring ------------------------------------------------------------

    def _profile_wire_size(self, profile: TranslatorProfile) -> int:
        """Bytes one profile occupies on a placement/delta datagram.

        Codec-honest: with the binary codec active the charge is the
        actual self-contained encoding length, otherwise the legacy JSON
        heuristic.
        """
        if self.runtime.codec_enabled:
            return profile.encoded_size()
        return profile.estimated_size()

    @property
    def directory(self) -> "Directory":
        return self.runtime.directory

    @property
    def runtime_id(self) -> str:
        return self.runtime.runtime_id

    @property
    def replicated(self) -> bool:
        """True when the replica tier is active.  Every replica-plane
        journal record, wire frame and epoch bump is gated on this, so
        ``replication_factor=1`` stays byte-for-byte the PR 6 path."""
        return self.replication_factor > 1

    @property
    def weighted(self) -> bool:
        """True when load-weighted placement is active.  Rides the
        runtime's compression flag (the opt-in data-plane v3 layer), so
        the default-off shard map is byte-for-byte the unweighted one."""
        return self.enabled and bool(
            getattr(self.runtime, "compression_enabled", False)
        )

    # -- load-weighted placement -------------------------------------------

    def local_load_tiers(self) -> Dict[int, int]:
        """This node's observed per-shard load, log2-quantized.  Shards
        below WEIGHT_TIER_BASE profiles are baseline (absent), so small
        populations produce an empty report and the unweighted table."""
        tiers: Dict[int, int] = {}
        for shard, tids in self.store._shards.items():
            count = len(tids)
            if count >= WEIGHT_TIER_BASE:
                tiers[shard] = (count // WEIGHT_TIER_BASE).bit_length()
        return tiers

    def load_report(self) -> Optional[dict]:
        """The announcement-piggybacked load block (top shards only), or
        None when weighting is off or everything is baseline -- absent
        blocks keep default-off announcements byte-identical."""
        if not self.weighted or not self.active:
            return None
        tiers = self.local_load_tiers()
        if not tiers:
            return None
        top = sorted(tiers.items(), key=lambda item: (-item[1], item[0]))
        return {
            "epoch": self.weight_epoch,
            "tiers": {str(shard): tier for shard, tier in top[:WEIGHT_REPORT_MAX]},
        }

    def note_peer_load(self, origin: str, block: dict) -> None:
        """Fold one peer's announced load report into the merged view and
        re-place if hysteresis allows."""
        if not self.weighted or not self.active:
            return
        try:
            tiers = {
                int(shard): int(tier)
                for shard, tier in dict(block.get("tiers", {})).items()
                if int(tier) > 0
            }
        except (TypeError, ValueError):
            return
        if self._peer_loads.get(origin) == tiers:
            return
        self._peer_loads[origin] = tiers
        self._maybe_reweight()

    def _merged_tiers(self) -> Dict[int, int]:
        """Max-merge of every origin's report plus our own observation.
        Max (not sum): a shard's load is observed by its single owner,
        and max keeps one stale report from a previous owner harmless."""
        merged = dict(self.local_load_tiers())
        for tiers in self._peer_loads.values():
            for shard, tier in tiers.items():
                if tier > merged.get(shard, 0):
                    merged[shard] = tier
        return merged

    def _maybe_reweight(self) -> None:
        """Adopt a changed merged load view: journal a new weight epoch
        (placement must replay deterministically across cold recovery),
        re-place, and rebalance through the normal ownership machinery
        (journaled transitions, warm-ingest handoff, re-push)."""
        now = self.runtime.kernel.now
        if now - self._last_weight_change < WEIGHT_REBALANCE_INTERVAL:
            return
        merged = self._merged_tiers()
        if merged == self.map.load_tiers:
            return
        self._last_weight_change = now
        self.weight_epoch += 1
        self.runtime.journal.append(
            "shard-weights",
            {
                "epoch": self.weight_epoch,
                "tiers": {str(shard): tier for shard, tier in sorted(merged.items())},
            },
        )
        self.map.set_load(merged)
        self.weight_rebalances += 1
        if self.runtime.tracing:
            self.runtime.trace(
                "shard.reweight",
                f"weight epoch {self.weight_epoch}: "
                f"{len(merged)} hot shard(s) biased",
                epoch=self.weight_epoch,
                hot_shards=len(merged),
            )
        self.membership_changed(force=True)

    def apply_load_tiers(self, tiers: Dict[int, int]) -> bool:
        """Offline/bench hook: adopt a load-tier view directly (no gossip,
        no hysteresis) and recompute ownership, mirroring
        :meth:`seed_members`.  True when placement changed."""
        merged = {int(s): int(t) for s, t in tiers.items() if int(t) > 0}
        if merged == self.map.load_tiers:
            return False
        self.weight_epoch += 1
        self.runtime.journal.append(
            "shard-weights",
            {
                "epoch": self.weight_epoch,
                "tiers": {str(shard): tier for shard, tier in sorted(merged.items())},
            },
        )
        self.map.set_load(merged)
        self.weight_rebalances += 1
        self._owned = self.map.owned_by(self.runtime_id)
        return True

    def _peer_router(self, fabric: ShardFabric, runtime_id: str):
        """The peer's in-process router, but only when the simulated
        network could actually carry the modeled RPC both ways: routed
        lookups are synchronous in-process calls, so without this check a
        partition (or one-way link block) would be invisible to them."""
        router = fabric.get(runtime_id)
        if router is None:
            return None
        peer_node = router.runtime.node
        if peer_node is not self.runtime.node and not self.runtime.node.reachable(
            peer_node
        ):
            return None
        return router

    def shard_of(self, key: _IndexKey, salt: int = 0) -> int:
        cache_key = (key, salt)
        shard = self._key_shards.get(cache_key)
        if shard is None:
            shard = shard_of_key(key, self.map.shard_count, salt)
            if len(self._key_shards) > 65536:
                self._key_shards.clear()
            self._key_shards[cache_key] = shard
        return shard

    def shards_of_profile(self, profile: TranslatorProfile) -> Set[int]:
        """The shards a profile is written to: one salted sub-shard per
        index key (the salt is per-profile, so a hot key's population
        spreads over ``KEY_SPLIT`` owners)."""
        salt = placement_salt(profile.translator_id)
        return {self.shard_of(key, salt) for key in profile.index_keys()}

    def placement_shard(self, key: _IndexKey, translator_id: str) -> int:
        """The sub-shard one specific profile's placement for ``key``
        lives on (tests/benchmarks: 'who owns this profile's key?')."""
        return self.shard_of(key, placement_salt(translator_id))

    def read_shards(self, key: _IndexKey) -> List[int]:
        """Every sub-shard a keyed lookup must consult."""
        return [self.shard_of(key, salt) for salt in range(KEY_SPLIT)]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if not self.enabled or self.active:
            return
        self.active = True
        self._started_at = self.runtime.kernel.now
        shard_fabric(self.runtime.network).register(self)
        self.membership_changed(force=True)

    def deactivate(self) -> None:
        if not self.enabled:
            return
        self.active = False
        shard_fabric(self.runtime.network).deregister(self)

    def discard_state(self) -> None:
        """Cold-crash semantics: the store, caches and interest tables are
        in-memory state and die with the process."""
        self.store.clear()
        self._cache.clear()
        self._interest.clear()
        self._subs_out.clear()
        self._owned = frozenset()
        self._foreign_since.clear()
        self._lost_origins.clear()
        self.replicas.clear()
        self._replica_routes.clear()
        self._shard_epochs.clear()
        self._provisional.clear()
        self.epoch = 0
        self._peer_loads.clear()
        self.weight_epoch = 0
        self._last_weight_change = 0.0
        self.map.set_load({})

    def recover(self, state: "RecoveredState") -> None:
        """Rebuild the owned shards (and any replica slices plus the
        ownership epoch) from the replayed journal (called by cold
        recovery with appends muted)."""
        if not self.enabled:
            return
        if self.weighted and state.shard_weights:
            # Restore the journaled weight epoch *before* any placement
            # math: a recovered owner must compute the same weighted
            # table it crashed with, or its journaled shard-own view
            # would contradict the table it rebuilds.
            self.weight_epoch = int(state.shard_weights.get("epoch", 0))
            self._last_weight_change = self.runtime.kernel.now
            self.map.set_load(
                {
                    int(shard): int(tier)
                    for shard, tier in dict(
                        state.shard_weights.get("tiers", {})
                    ).items()
                }
            )
        for entry in state.shard_entries.values():
            profile = TranslatorProfile.from_dict(entry["profile"])
            self.store.store(profile, entry["shards"])
        self._owned = frozenset(state.shard_owned)
        self.epoch = state.shard_epoch
        for shard_key, data in state.replica_slices.items():
            shard = int(shard_key)
            profiles = [
                TranslatorProfile.from_dict(profile)
                for profile in data["entries"].values()
            ]
            epoch = int(data.get("epoch", 0))
            self.replicas.apply_store(shard, profiles, epoch, 0.0, full=True)
            self._shard_epochs[shard] = max(
                self._shard_epochs.get(shard, 0), epoch
            )

    def seed_members(self, members: Iterable[str]) -> None:
        """Offline/bench hook: activate with an explicit membership view
        instead of learning it from directory gossip."""
        self.active = True
        self._started_at = self.runtime.kernel.now
        shard_fabric(self.runtime.network).register(self)
        self.map.rebuild(members)
        self._owned = self.map.owned_by(self.runtime_id)

    # -- membership / rebalancing ------------------------------------------

    def membership_changed(self, force: bool = False) -> None:
        """Recompute the shard map from the directory's membership view and
        reconcile: journal the ownership transition, drop shards that moved
        away, re-place local profiles with the current owners, and re-route
        standing-query interest."""
        if not self.enabled or not self.active:
            return
        members = set(self.directory._runtimes)
        members.add(self.runtime_id)
        previous_members = self.map.members
        changed = self.map.rebuild(members)
        if not changed and not force:
            return
        self.rebalances += 1
        old_owned = self._owned
        self._owned = self.map.owned_by(self.runtime_id)
        if self._owned != old_owned:
            self.runtime.journal.append(
                "shard-own", {"owned": sorted(self._owned)}
            )
            if self.replicated and has_quorum(
                len(self.map.members), len(previous_members)
            ):
                # Quorum-gated epoch advance: the majority side of any
                # split bumps and its replica-plane writes fence out the
                # deposed minority's; a primary partitioned into a
                # minority keeps its stale epoch.
                self.epoch += 1
                self.runtime.journal.append(
                    "shard-epoch", {"epoch": self.epoch}
                )
            # Shards we held and conclusively lost drop right away (their
            # new owner is being pushed the same profiles by every
            # origin); sender-directed placements we never owned are aged
            # out by :meth:`sweep` instead -- the sender's view may simply
            # be ahead of ours.
            lost = old_owned - self._owned
            if lost:
                for shard in lost:
                    self.store.drop_shard(shard)
                    self._replica_routes.pop(shard, None)
                self.runtime.journal.append(
                    "shard-drop", {"shards": sorted(lost)}
                )
            for shard in self._owned & set(self._foreign_since):
                del self._foreign_since[shard]
            if self.runtime.tracing:
                self.runtime.trace(
                    "shard.rebalance",
                    f"{len(self.map.members)} member(s), "
                    f"{len(self._owned)} shard(s) owned "
                    f"(+{len(self._owned - old_owned)}/-{len(lost)})",
                    members=len(self.map.members),
                    owned=len(self._owned),
                )
            if self.replicated:
                for shard in self._owned:
                    self._shard_epochs[shard] = max(
                        self._shard_epochs.get(shard, 0), self.epoch
                    )
                self._warm_ingest(self._owned - old_owned)
        self._cache.clear()
        if self.replicated:
            self._reconcile_replica_role()
        self._push_local_profiles()
        self._reroute_subscriptions()
        if self.replicated:
            self._sync_replicas()
            self._request_replica_sync()

    def _warm_ingest(self, gained: Iterable[int]) -> None:
        """Promote local replica slices of newly-owned shards straight
        into the authoritative store, instead of serving nothing until
        every origin's membership-change re-push lands.  Promotion reuses
        the in-memory profile objects (no wire dicts to re-parse), which
        is what makes handoff ingest measurably faster than the PR 6 cold
        path.  Tombstoned origins are filtered -- a promotion must never
        resurrect reaped state -- and origin re-push remains the
        authoritative repair behind it: promotions from remote origins
        are recorded as *provisional* and evicted again if the origin's
        next complete re-push no longer claims them (their removal may
        have raced the handoff; the remove was addressed to the old
        owner and died with it)."""
        promoted = 0
        dropped = []
        promoted_slices: Dict[str, List[str]] = {}
        local_ids = {
            profile.translator_id
            for profile in self.directory._local_profiles()
        }
        now = self.runtime.kernel.now
        for shard in sorted(gained):
            slice_ = self.replicas.get(shard)
            if slice_ is None:
                continue
            added = []
            stored_tids = []
            replica_batch = []
            for profile in slice_.entries.values():
                if profile.runtime_id in self._lost_origins:
                    continue
                if (
                    profile.runtime_id == self.runtime_id
                    and profile.translator_id not in local_ids
                ):
                    # Our own registrations are authoritative locally: a
                    # replicated copy of a profile we since unregistered
                    # must not come back.
                    continue
                content_changed, placement_changed, previous = (
                    self.store.store(profile, (shard,))
                )
                if (
                    previous is None
                    and profile.runtime_id != self.runtime_id
                ):
                    # Only promotions that *enter* the store are
                    # provisional.  An entry already held is independently
                    # justified (journal recovery or a direct origin
                    # push), and any removal of it would have been
                    # addressed straight to us -- whereas a profile we
                    # only know from a replica slice may have been
                    # removed via the old owner while it was unreachable.
                    self._provisional.setdefault(profile.runtime_id, {})[
                        profile.translator_id
                    ] = now
                if content_changed:
                    added.append(profile)
                if content_changed or placement_changed:
                    stored_tids.append(profile.translator_id)
                    replica_batch.append(profile)
            if stored_tids:
                promoted_slices[str(shard)] = sorted(stored_tids)
                promoted += len(stored_tids)
            if added:
                self._emit_deltas(added=added, removed=())
            if replica_batch and shard in self._owned:
                self._replicate_store({shard: replica_batch})
            self.replicas.drop(shard)
            dropped.append(shard)
        if promoted_slices:
            # The promoted profiles are already journaled as slice
            # content (``shard-replica`` records): this record is only a
            # pointer, which is what keeps warm ingest free of the cold
            # path's per-profile serialization.
            self.runtime.journal.append(
                "shard-promote", {"slices": promoted_slices}
            )
        if dropped:
            self.runtime.journal.append(
                "shard-replica-drop", {"shards": sorted(dropped)}
            )
        if promoted:
            self.warm_ingests += promoted
            if self.runtime.tracing:
                self.runtime.trace(
                    "shard.warm-ingest",
                    f"{promoted} profile(s) promoted from {len(dropped)} "
                    "replica slice(s) on ownership handoff",
                    promoted=promoted,
                    shards=len(dropped),
                )

    def _reap_stale_promotions(
        self, origin: str, claimed: Set[str]
    ) -> None:
        """A complete re-push from ``origin`` just restated its full live
        set: any provisional warm-ingest promotion from that origin it no
        longer claims was a removal that raced the handoff -- evict it,
        never letting a replica slice resurrect a withdrawn profile."""
        pending = self._provisional.pop(origin, None)
        if not pending:
            return
        for tid in sorted(pending):
            if tid in claimed:
                continue
            held = self.store.profile_of(tid)
            if held is None or held.runtime_id != origin:
                continue
            self.stale_evictions += 1
            if self.runtime.tracing:
                self.runtime.trace(
                    "shard.stale-evict",
                    f"{tid}: warm-ingested from a replica slice but no "
                    f"longer claimed by origin {origin}",
                    origin=origin,
                )
            self._evict(tid)

    def _reconcile_replica_role(self) -> None:
        """Drop replica slices for shards this node no longer replicates
        under the current map (owned shards were already promoted by
        :meth:`_warm_ingest`).  An over-eager drop under a transiently
        divergent view is harmless: the true primary's next anti-entropy
        digest re-syncs the slice."""
        dropped = []
        for shard in self.replicas.shards():
            if shard in self._owned:
                continue
            if self.runtime_id not in replicas_of(
                self.map, shard, self.replication_factor
            ):
                self.replicas.drop(shard)
                dropped.append(shard)
        if dropped:
            self.runtime.journal.append(
                "shard-replica-drop", {"shards": sorted(dropped)}
            )

    def _sync_replicas(self) -> None:
        """Primary-side anti-entropy: send every replica of every owned
        shard a ``(count, digest)`` summary stamped with our epoch.  A
        replica answers with the shards whose slice digest mismatches
        (a brand-new replica's empty slice always does) and
        :meth:`_handle_digest_reply` full-syncs exactly those -- one
        exchange covering bootstrap, partition-heal reconciliation and
        divergence repair."""
        per_peer: Dict[str, Dict[str, list]] = {}
        for shard in self._owned:
            peers = tuple(
                replicas_of(self.map, shard, self.replication_factor)
            )
            self._replica_routes[shard] = peers
            if not peers:
                continue
            slice_profiles = self.store.slice_of(shard)
            digest = slice_digest(
                {p.translator_id: p for p in slice_profiles}
            )
            for peer in peers:
                per_peer.setdefault(peer, {})[str(shard)] = [
                    len(slice_profiles),
                    digest,
                ]
        for peer, shards in per_peer.items():
            payload = {
                "kind": "umiddle-shard-digest",
                "origin": self.runtime_id,
                "epoch": self.epoch,
                "shards": shards,
            }
            self._send(payload, 64 + 56 * len(shards), peer)
            self.digests_sent += 1

    def _request_replica_sync(self) -> None:
        """Replica-side anti-entropy: send each primary a summary of the
        slices we should hold for its shards (an absent slice digests as
        empty).  The primary's :meth:`_handle_digest` compares against
        its authoritative slice and full-syncs mismatches.  Without this
        pull direction a warm-restarted replica would stay empty forever:
        its lease never expired at the primary, so no membership change
        ever triggers the primary-side push digest."""
        per_primary: Dict[str, Dict[str, list]] = {}
        for shard in range(self.map.shard_count):
            if shard in self._owned:
                continue
            if self.runtime_id not in replicas_of(
                self.map, shard, self.replication_factor
            ):
                continue
            owner = self.map.owner(shard)
            if owner is None or owner == self.runtime_id:
                continue
            slice_ = self.replicas.get(shard)
            entries = slice_.entries if slice_ is not None else {}
            per_primary.setdefault(owner, {})[str(shard)] = [
                len(entries),
                slice_digest(entries),
            ]
        for primary, shards in per_primary.items():
            payload = {
                "kind": "umiddle-shard-digest",
                "origin": self.runtime_id,
                "epoch": self.epoch,
                "shards": shards,
            }
            self._send(payload, 64 + 56 * len(shards), primary)
            self.digests_sent += 1

    def origin_lost(self, runtime_id: str) -> None:
        """An origin runtime is conclusively gone (lease expiry or
        transport give-up): reap the profiles it placed on our shards, the
        shard-layer analog of the flat directory's lease reaping."""
        if not self.enabled or not self.active:
            return
        if runtime_id == self.runtime_id:
            return
        self._lost_origins.add(runtime_id)
        self._provisional.pop(runtime_id, None)
        self._peer_loads.pop(runtime_id, None)
        self._interest_drop_subscriber(runtime_id)
        if self.replicated and self.replicas.drop_origin(runtime_id):
            # Replica slices reap lost origins too (the tombstone extends
            # to the replica plane): a degraded read or a later warm
            # ingest must never resurrect what the primary plane reaped.
            self.runtime.journal.append(
                "shard-replica-origin", {"origin": runtime_id}
            )
        tids = self.store.tids_of_origin(runtime_id)
        if not tids:
            return
        removed_profiles = []
        for tid in tids:
            profile = self.store.remove(tid)
            if profile is not None:
                self.runtime.journal.append(
                    "shard-remove", {"translator_id": tid}
                )
                removed_profiles.append(profile)
        if removed_profiles:
            if self.runtime.tracing:
                self.runtime.trace(
                    "shard.origin-reaped",
                    f"{runtime_id}: {len(removed_profiles)} stored "
                    "profile(s) reaped",
                    reaped=len(removed_profiles),
                )
            self._emit_deltas(added=(), removed=removed_profiles)
            self._replicate_removals(removed_profiles)

    def sweep(self) -> None:
        """Periodic lease-style cleanup (ridden by the directory sweeper):
        origins and subscribers absent from the membership view are
        forgotten once the post-start grace (one directory lease) passed --
        covering peers that died while this node was down."""
        if not self.enabled or not self.active:
            return
        from repro.core.directory import LEASE

        # Age out placements directed at us under a membership view that
        # never materialized here.  A sender whose lease expiry simply
        # fired before ours directs shards we are *about* to inherit, so
        # an unowned placement is only stale once it stayed unowned for a
        # full lease -- after which every view has converged and the map
        # is authoritative.
        now = self.runtime.kernel.now
        stale = []
        for shard in self.store.stored_shards():
            if shard in self._owned:
                self._foreign_since.pop(shard, None)
                continue
            since = self._foreign_since.setdefault(shard, now)
            if now - since > LEASE:
                stale.append(shard)
        if stale:
            for shard in stale:
                self.store.drop_shard(shard)
                del self._foreign_since[shard]
            self.runtime.journal.append(
                "shard-drop", {"shards": sorted(stale)}
            )
        # A tombstoned origin that reannounced is alive again.
        self._lost_origins -= set(self.directory._runtimes)
        if self.weighted:
            # Our own shards may have grown hot since the last report;
            # hysteresis inside keeps this from thrashing.
            self._maybe_reweight()
        # Backstop for the reconcile: a provisional promotion whose origin
        # never restated it within a full lease is stale.  A live origin
        # rebalances (and completely re-pushes) within a lease of the
        # membership change that triggered the promotion, and a push that
        # would claim the entry always reaches us -- the entry's own
        # shards map here -- so silence means the profile is gone.
        if self.replicated and self._provisional:
            for origin in list(self._provisional):
                pending = self._provisional[origin]
                expired = [
                    tid
                    for tid, since in pending.items()
                    if now - since > LEASE
                ]
                for tid in expired:
                    del pending[tid]
                    held = self.store.profile_of(tid)
                    if held is None or held.runtime_id != origin:
                        continue
                    self.stale_evictions += 1
                    if self.runtime.tracing:
                        self.runtime.trace(
                            "shard.stale-evict",
                            f"{tid}: warm-ingested promotion never "
                            f"restated by origin {origin} within a lease",
                            origin=origin,
                        )
                    self._evict(tid)
                if not pending:
                    del self._provisional[origin]
        if self.runtime.kernel.now - self._started_at < LEASE:
            return
        members = set(self.directory._runtimes)
        members.add(self.runtime_id)
        origins = self.store.origins()
        if self.replicated:
            origins = origins | self.replicas.origins()
        for origin in origins - members:
            self.origin_lost(origin)
        for key, subscribers in list(self._interest.items()):
            subscribers &= members
            if not subscribers:
                del self._interest[key]

    # -- placement ---------------------------------------------------------

    def local_registered(self, profile: TranslatorProfile) -> None:
        """A local translator (re)registered or changed health: place it on
        the owners of its key shards."""
        if not self.enabled or not self.active:
            return
        self._place([profile])

    def local_unregistered(self, profile: TranslatorProfile) -> None:
        if not self.enabled or not self.active:
            return
        targets = self._owners_of_shards(self.shards_of_profile(profile))
        payload = None
        for owner in targets:
            if owner == self.runtime_id:
                self._evict(profile.translator_id)
            else:
                if payload is None:
                    payload = {
                        "kind": "umiddle-shard-remove",
                        "origin": self.runtime_id,
                        "ids": [profile.translator_id],
                    }
                self._send(payload, 64 + len(profile.translator_id), owner)

    def _push_local_profiles(self) -> None:
        profiles = self.directory._local_profiles()
        if profiles:
            # A membership-change re-push is *complete*: it is the full
            # statement of this origin's live profiles, so receivers can
            # reconcile provisional warm-ingest promotions against it.
            self._place(profiles, complete=True)

    def _place(
        self, profiles: List[TranslatorProfile], complete: bool = False
    ) -> None:
        """Group profiles by owning runtime and push one batched placement
        message per owner (self-owned shards store directly).

        The push is *sender-directed*: it names the shards each profile is
        being placed under, so an owner whose own membership view lags (it
        has not yet expired the peer whose shards it inherited) still
        records the placement instead of intersecting it away against its
        stale ownership set -- the next rebalance prunes any shard it
        turns out not to own."""
        per_owner: Dict[str, Tuple[List[TranslatorProfile], List[List[int]]]] = {}
        for profile in profiles:
            targets: Dict[str, List[int]] = {}
            for shard in sorted(self.shards_of_profile(profile)):
                owner = self.map.owner(shard)
                if owner is None:
                    owner = self.runtime_id
                targets.setdefault(owner, []).append(shard)
            for owner, shards in targets.items():
                batch, shard_lists = per_owner.setdefault(owner, ([], []))
                batch.append(profile)
                shard_lists.append(shards)
        for owner, (batch, shard_lists) in per_owner.items():
            if owner == self.runtime_id:
                self._admit(batch, shard_lists)
            else:
                payload = {
                    "kind": "umiddle-shard-store",
                    "origin": self.runtime_id,
                    "profiles": [p.to_dict() for p in batch],
                    "digests": [p.wire_digest for p in batch],
                    "shards": shard_lists,
                }
                if complete and self.replicated:
                    # Only stamped on the replica tier: the flat and
                    # factor-1 wire formats stay byte-identical.
                    payload["complete"] = True
                size = 64 + sum(self._profile_wire_size(p) + 48 for p in batch)
                self._send(payload, size, owner)
                self.pushes_sent += 1

    def _owners_of_shards(self, shards: Iterable[int]) -> Set[str]:
        owners = set()
        for shard in shards:
            owner = self.map.owner(shard)
            if owner is None:
                owner = self.runtime_id
            owners.add(owner)
        return owners

    def _admit(
        self,
        profiles: List[TranslatorProfile],
        shard_lists: Optional[List[List[int]]] = None,
    ) -> None:
        """Owner side of placement: store each profile under the union of
        the sender-directed shards and the owned subset of its key shards,
        journal the mutation, and stream deltas to interested subscribers.

        Sender-directed shards are honored even when this node's own
        ownership view does not (yet) cover them: origin re-pushes are the
        only repair mechanism, and lease expiries fire at different times
        on different nodes -- a push for a shard we are about to inherit
        must not be intersected away.  The next rebalance prunes shards we
        never actually own."""
        added = []
        replica_adds: Dict[int, List[TranslatorProfile]] = {}
        for position, profile in enumerate(profiles):
            targets = self.shards_of_profile(profile) & self._owned
            if shard_lists is not None:
                targets |= set(shard_lists[position])
            if not targets and not self._owned:
                # Degenerate pre-membership view (offline tests): store
                # under the profile's shards directly.
                targets = self.shards_of_profile(profile)
            if not targets:
                continue
            content_changed, placement_changed, _previous = self.store.store(
                profile, targets
            )
            if content_changed or placement_changed:
                self.runtime.journal.append(
                    "shard-store",
                    {
                        "profile": profile.to_dict(),
                        "shards": list(
                            self.store.placements_of(profile.translator_id)
                        ),
                    },
                )
                if self.replicated:
                    for shard in targets & self._owned:
                        replica_adds.setdefault(shard, []).append(profile)
            if content_changed:
                added.append(profile)
        if added:
            self._emit_deltas(added=added, removed=())
        if replica_adds:
            self._replicate_store(replica_adds)

    def _evict(self, translator_id: str) -> None:
        profile = self.store.remove(translator_id)
        if profile is None:
            return
        self.runtime.journal.append(
            "shard-remove", {"translator_id": translator_id}
        )
        self._emit_deltas(added=(), removed=[profile])
        self._replicate_removals([profile])

    # -- replica streaming --------------------------------------------------

    def _replica_peers(self, shard: int) -> Tuple[str, ...]:
        peers = self._replica_routes.get(shard)
        if peers is None:
            peers = tuple(
                replicas_of(self.map, shard, self.replication_factor)
            )
            self._replica_routes[shard] = peers
        return peers

    def _replicate_store(
        self,
        per_shard: Dict[int, List[TranslatorProfile]],
        full: bool = False,
    ) -> None:
        """Stream freshly-admitted profiles of owned shards to their
        ranked replicas, stamped with the current ownership epoch.  The
        push piggybacks on the existing unicast shard plane (same port,
        same framing discipline as placement and delta traffic)."""
        if not self.replicated or not per_shard:
            return
        per_peer: Dict[str, Dict[str, dict]] = {}
        for shard, profiles in per_shard.items():
            for peer in self._replica_peers(shard):
                slices = per_peer.setdefault(peer, {})
                entry = slices.setdefault(
                    str(shard),
                    {
                        "profiles": [],
                        "digests": [],
                        "removed": [],
                        "full": full,
                    },
                )
                for profile in profiles:
                    entry["profiles"].append(profile.to_dict())
                    entry["digests"].append(profile.wire_digest)
        self._send_replica_frames(per_peer)

    def _replicate_removals(
        self, profiles: Iterable[TranslatorProfile]
    ) -> None:
        """Stream removals (evictions and origin reaping) to the replicas
        of every owned shard the profiles were placed under, so a slice
        does not keep serving a profile its primary already dropped."""
        if not self.replicated:
            return
        per_peer: Dict[str, Dict[str, dict]] = {}
        for profile in profiles:
            for shard in self.shards_of_profile(profile) & self._owned:
                for peer in self._replica_peers(shard):
                    slices = per_peer.setdefault(peer, {})
                    entry = slices.setdefault(
                        str(shard),
                        {
                            "profiles": [],
                            "digests": [],
                            "removed": [],
                            "full": False,
                        },
                    )
                    entry["removed"].append(profile.translator_id)
        self._send_replica_frames(per_peer)

    def _send_replica_frames(
        self, per_peer: Dict[str, Dict[str, dict]]
    ) -> None:
        for peer, slices in per_peer.items():
            payload = {
                "kind": "umiddle-shard-replica",
                "origin": self.runtime_id,
                "epoch": self.epoch,
                "slices": slices,
            }
            size = 64
            for entry in slices.values():
                size += 24
                size += sum(len(d) + 48 for d in entry["profiles"])
                size += sum(len(r) + 4 for r in entry["removed"])
            self._send(payload, size, peer)
            self.replica_pushes_sent += 1

    # -- interest-scoped deltas --------------------------------------------

    def subscribe_routed(self, route_key: Optional[_IndexKey]) -> None:
        """A local standing query registered under ``route_key`` (None =
        not coarsely indexable, interested in everything): make sure the
        key's owner streams us its deltas."""
        if not self.enabled or not self.active:
            return
        record = self._subs_out.get(route_key)
        if record is None:
            record = {"count": 0, "owners": set()}
            self._subs_out[route_key] = record
        record["count"] += 1
        self._route_subscription(route_key, record)

    def unsubscribe_routed(self, route_key: Optional[_IndexKey]) -> None:
        if not self.enabled or not self.active:
            return
        record = self._subs_out.get(route_key)
        if record is None:
            return
        record["count"] -= 1
        if record["count"] > 0:
            return
        del self._subs_out[route_key]
        payload = {
            "kind": "umiddle-shard-unsubscribe",
            "origin": self.runtime_id,
            "key": list(route_key) if route_key is not None else None,
        }
        for owner in record["owners"]:
            self._send(payload, 96, owner)

    def _route_subscription(
        self, route_key: Optional[_IndexKey], record: Dict
    ) -> None:
        """(Re)register interest with the key's current owner(s)."""
        if route_key is None:
            targets = set(self.map.members) or {self.runtime_id}
        else:
            # Interest covers every sub-shard of the key: whichever owner
            # a matching profile's salt lands on must reach us.
            targets = set()
            for shard in self.read_shards(route_key):
                owner = self.map.owner(shard)
                targets.add(owner if owner is not None else self.runtime_id)
        stale = record["owners"] - targets
        if stale:
            payload = {
                "kind": "umiddle-shard-unsubscribe",
                "origin": self.runtime_id,
                "key": list(route_key) if route_key is not None else None,
            }
            for owner in stale:
                self._send(payload, 96, owner)
        for owner in targets - record["owners"]:
            self._send(
                {
                    "kind": "umiddle-shard-subscribe",
                    "origin": self.runtime_id,
                    "key": list(route_key) if route_key is not None else None,
                },
                96,
                owner,
            )
        record["owners"] = targets

    def _reroute_subscriptions(self) -> None:
        for route_key, record in self._subs_out.items():
            self._route_subscription(route_key, record)

    def _interest_drop_subscriber(self, runtime_id: str) -> None:
        for key, subscribers in list(self._interest.items()):
            subscribers.discard(runtime_id)
            if not subscribers:
                del self._interest[key]

    def _emit_deltas(
        self,
        added: Iterable[TranslatorProfile],
        removed: Iterable[TranslatorProfile],
    ) -> None:
        """Stream a store change only to subscribers whose interest set
        covers one of the affected profiles' keys."""
        if not self._interest:
            return
        per_subscriber: Dict[str, Dict[str, list]] = {}

        def targets_for(profile: TranslatorProfile) -> Set[str]:
            targets = set(self._interest.get(None, ()))
            for key in profile.index_keys():
                subscribers = self._interest.get(key)
                if subscribers:
                    targets |= subscribers
            return targets

        for profile in added:
            for subscriber in targets_for(profile):
                bucket = per_subscriber.setdefault(
                    subscriber, {"profiles": [], "digests": [], "removed": []}
                )
                bucket["profiles"].append(profile.to_dict())
                bucket["digests"].append(profile.wire_digest)
        for profile in removed:
            for subscriber in targets_for(profile):
                bucket = per_subscriber.setdefault(
                    subscriber, {"profiles": [], "digests": [], "removed": []}
                )
                bucket["removed"].append(profile.translator_id)
        for subscriber, delta in per_subscriber.items():
            payload = {
                "kind": "umiddle-shard-delta",
                "origin": self.runtime_id,
                "profiles": delta["profiles"],
                "digests": delta["digests"],
                "removed": delta["removed"],
            }
            size = 64 + sum(len(d) + 48 for d in delta["profiles"]) + sum(
                len(r) + 4 for r in delta["removed"]
            )
            self._send(payload, size, subscriber)
            self.deltas_sent += 1

    # -- lookups -----------------------------------------------------------

    def lookup(self, query: Query) -> List[TranslatorProfile]:
        """Sharded lookup: route by the query's first index key to the
        owning shard (TTL cache for hot keys), fan out + merge when the
        query has no indexable key, and overlay the local directory view
        (own translators are visible before placement propagates).

        Results are ordered healthy-first, then by translator id -- the
        flat path's per-node registration order has no global analog."""
        keys = query.index_keys()
        if not keys:
            matched = self._fanout_scan(query)
        else:
            route_key = keys[0]
            remote: Dict[str, List[int]] = {}
            local = False
            for shard in self.read_shards(route_key):
                owner = self.map.owner(shard)
                if owner is None or owner == self.runtime_id:
                    local = True
                else:
                    shards = remote.setdefault(owner, [])
                    if shard not in shards:
                        shards.append(shard)
            matched = []
            if local:
                self.local_lookups += 1
                matched.extend(self.store.lookup(query))
            if remote:
                bucket = self._routed_bucket(route_key, remote)
                matched.extend(p for p in bucket if query.matches(p))
        if self._lost_origins:
            # A peer whose lease expiry fires after ours (or a stale TTL
            # cache entry) can still serve profiles from an origin this
            # node already reaped; the flat path would never show them.
            alive = self.directory._runtimes
            matched = [
                p
                for p in matched
                if p.runtime_id not in self._lost_origins
                or p.runtime_id in alive
            ]
        merged = {profile.translator_id: profile for profile in matched}
        for profile in self.directory.lookup_local(query):
            merged.setdefault(profile.translator_id, profile)
        return self._order(list(merged.values()), query)

    def _quarantined_peer(self, runtime_id: str) -> bool:
        """Owner suspicion feeding failover: a quarantined primary is
        skipped in favor of its replicas -- but only once replicas exist
        to fail over to, so the single-homed path never turns a
        reachable-but-suspect owner into an unavailable shard."""
        if not self.replicated:
            return False
        monitor = self.runtime.health
        if not monitor.enabled:
            return False
        return monitor.peer_health(runtime_id) is HealthState.QUARANTINED

    def _routed_bucket(
        self, route_key: _IndexKey, owner_shards: Dict[str, List[int]]
    ) -> Tuple[TranslatorProfile, ...]:
        """The merged remote bucket for one key: one RPC per distinct
        sub-shard owner, replica failover per shard, TTL-cached as a
        unit.

        A reachable, non-quarantined primary serves its whole key bucket
        authoritatively.  An unreachable one fails over shard by shard:
        every sub-shard of the key the dead owner held is read from its
        ranked replicas as an explicitly-traced degraded read (never
        cached) carrying the slice's bounded-staleness marker.  A
        reachable replica holding no slice vouches the sub-shard empty
        (a primary streams a slice the moment it holds an entry, and
        slices are journaled, so absence at a live replica means absence
        -- modulo the same sync lag every degraded read accepts).  Only
        a sub-shard with no reachable replica at all falls through: a
        stale cache entry backfills, and a route with none of the three
        raises :class:`ShardUnavailable` instead of silently returning a
        wrong partial answer served by a non-holder."""
        now = self.runtime.kernel.now
        cached = self._cache.get(route_key)
        if (
            cached is not None
            and self.cache_ttl > 0
            and now - cached[0] <= self.cache_ttl
        ):
            self.cache_hits += 1
            return cached[1]
        fabric = shard_fabric(self.runtime.network)
        merged: Dict[str, TranslatorProfile] = {}
        authoritative = True
        failed: Optional[Tuple[int, str]] = None
        for owner, shards in owner_shards.items():
            router = self._peer_router(fabric, owner)
            if router is not None and not self._quarantined_peer(owner):
                self.routed_lookups += 1
                for profile in router.serve_bucket(route_key):
                    merged.setdefault(profile.translator_id, profile)
                continue
            authoritative = False
            if not self.replicated:
                if failed is None:
                    failed = (shards[0], owner)
                continue
            for shard in shards:
                served = False
                vouched_empty = False
                for candidate in replicas_of(
                    self.map, shard, self.replication_factor
                ):
                    if candidate == self.runtime_id:
                        result = self.serve_replica_bucket(shard, route_key)
                    else:
                        replica_router = self._peer_router(fabric, candidate)
                        if replica_router is None:
                            continue
                        self.routed_lookups += 1
                        result = replica_router.serve_replica_bucket(
                            shard, route_key
                        )
                    if result is None:
                        vouched_empty = True
                        continue
                    replica_bucket, synced_at = result
                    for profile in replica_bucket:
                        merged.setdefault(profile.translator_id, profile)
                    served = True
                    self.degraded_reads += 1
                    if self.runtime.tracing:
                        self.runtime.trace(
                            "shard.degraded-read",
                            f"shard {shard}: primary {owner} unreachable, "
                            f"replica {candidate} served "
                            f"{len(replica_bucket)} profile(s) "
                            f"(staleness {max(0.0, now - synced_at):.3f}s)",
                            shard=shard,
                            staleness=max(0.0, now - synced_at),
                        )
                    break
                if not served and not vouched_empty and failed is None:
                    failed = (shard, owner)
        if failed is not None:
            # Mid-failover window with no live holder for some sub-shard:
            # backfill from the stale cache if we have one; with no cache
            # either the lookup surfaces a structured failure instead of
            # a silently wrong partial answer.
            self.routed_failures += 1
            if cached is None:
                failed_shard, failed_owner = failed
                self.unavailable_lookups += 1
                if self.runtime.tracing:
                    self.runtime.trace(
                        "shard.unavailable",
                        f"shard {failed_shard}: primary {failed_owner} "
                        "unreachable and no replica or cached bucket "
                        f"serves {route_key[0]}={route_key[1]}",
                        shard=failed_shard,
                    )
                raise ShardUnavailable(
                    failed_shard, failed_owner, self.epoch
                )
            for profile in cached[1]:
                merged.setdefault(profile.translator_id, profile)
        bucket = tuple(merged.values())
        if authoritative:
            self._cache[route_key] = (now, bucket)
        if self.runtime.tracing:
            self.runtime.trace(
                "shard.lookup-routed",
                f"{route_key[0]}={route_key[1]} -> "
                f"{len(owner_shards)} owner(s) "
                f"({len(bucket)} candidate(s))",
                owners=len(owner_shards),
            )
        return bucket

    def _fanout_scan(self, query: Query) -> List[TranslatorProfile]:
        self.fanout_lookups += 1
        fabric = shard_fabric(self.runtime.network)
        merged: Dict[str, TranslatorProfile] = {}
        members = self.map.members or (self.runtime_id,)
        for member in members:
            if member == self.runtime_id:
                matches = self.store.scan(query)
            else:
                router = self._peer_router(fabric, member)
                if router is None:
                    continue
                self.routed_lookups += 1
                matches = router.serve_scan(query)
            for profile in matches:
                merged.setdefault(profile.translator_id, profile)
        return list(merged.values())

    def serve_bucket(self, route_key: _IndexKey) -> List[TranslatorProfile]:
        """Owner side of a routed lookup: the full bucket for one key."""
        bucket = self.store.bucket(route_key)
        self.bucket_serves += 1
        self.bucket_bytes_served += sum(self._profile_wire_size(p) for p in bucket)
        return bucket

    def serve_replica_bucket(
        self, shard: int, route_key: _IndexKey
    ) -> Optional[Tuple[List[TranslatorProfile], float]]:
        """Replica side of a degraded read: the bucket held in one replica
        slice plus the slice's last-sync instant (the bounded-staleness
        marker the reader traces), or ``None`` when this node holds no
        slice for the shard."""
        slice_ = self.replicas.get(shard)
        if slice_ is None:
            return None
        bucket = self.replicas.bucket(shard, route_key)
        self.bucket_serves += 1
        self.bucket_bytes_served += sum(
            self._profile_wire_size(p) for p in bucket
        )
        return bucket, slice_.synced_at

    def serve_scan(self, query: Query) -> List[TranslatorProfile]:
        self.scan_serves += 1
        return self.store.scan(query)

    def _order(
        self, matched: List[TranslatorProfile], query: Query
    ) -> List[TranslatorProfile]:
        monitor = self.runtime.health
        if not monitor.enabled:
            matched.sort(key=lambda profile: profile.translator_id)
            return matched
        decorated = []
        for profile in matched:
            rank = monitor.effective_rank(profile)
            if rank >= 2 and not query.include_quarantined:
                continue
            decorated.append((rank, profile.translator_id, profile))
        decorated.sort()
        return [profile for _rank, _tid, profile in decorated]

    # -- message plane ------------------------------------------------------

    def handle(self, payload: dict) -> None:
        """Dispatch one ``umiddle-shard-*`` payload (directory receiver)."""
        if not self.enabled or not self.active:
            return
        kind = payload.get("kind")
        # No origin==self guard: all shard traffic is unicast, and a
        # self-targeted send (we own the shard a local subscription or
        # placement routes to) legitimately short-circuits through here.
        origin = payload.get("origin")
        if kind == "umiddle-shard-store":
            self.stores_received += 1
            digests = payload.get("digests") or [None] * len(payload["profiles"])
            batch = [
                TranslatorProfile.from_dict(data, digest=digest)
                for data, digest in zip(payload["profiles"], digests)
            ]
            self._admit(batch, payload.get("shards"))
            if self.replicated:
                claimed = {p.translator_id for p in batch}
                pending = self._provisional.get(origin)
                if pending:
                    for tid in claimed:
                        pending.pop(tid, None)
                if payload.get("complete"):
                    self._reap_stale_promotions(origin, claimed)
        elif kind == "umiddle-shard-remove":
            self.removes_received += 1
            for translator_id in payload["ids"]:
                self._evict(translator_id)
        elif kind == "umiddle-shard-subscribe":
            self._handle_subscribe(origin, payload.get("key"))
        elif kind == "umiddle-shard-unsubscribe":
            key = payload.get("key")
            route_key = tuple(key) if key is not None else None
            subscribers = self._interest.get(route_key)
            if subscribers is not None:
                subscribers.discard(origin)
                if not subscribers:
                    del self._interest[route_key]
        elif kind == "umiddle-shard-delta":
            self.deltas_received += 1
            self.directory.apply_shard_delta(
                origin,
                payload.get("profiles", ()),
                payload.get("digests"),
                payload.get("removed", ()),
            )
        elif kind == "umiddle-shard-replica":
            if self.replicated:
                self._handle_replica(origin, payload)
        elif kind == "umiddle-shard-digest":
            if self.replicated:
                self._handle_digest(origin, payload)
        elif kind == "umiddle-shard-digest-reply":
            if self.replicated:
                self._handle_digest_reply(origin, payload)

    def _handle_replica(self, origin: str, payload: dict) -> None:
        """Replica side of the primary's slice stream: apply each pushed
        slice unless the sender is not the shard's current primary under
        this receiver's membership view -- the fence that keeps a deposed
        primary from resurrecting reaped state.

        The fence is anchored on the map owner rather than on a bare
        epoch comparison because epochs are per-node counters with
        incomparable histories: a deposed primary may carry *more* bumps
        than the replica's recorded fence (it saw more ownership churn
        before the partition) and a legitimately elected late joiner may
        carry fewer.  The membership view is the authority anchor used
        everywhere else in the directory, so it is the authority anchor
        here too; the stamped epoch is journaled with every accepted
        slice, reported back in digest replies (the deposed primary's
        stand-down signal) and surfaced in fencing traces."""
        self.replica_pushes_received += 1
        epoch = int(payload.get("epoch", 0))
        now = self.runtime.kernel.now
        for shard_key, entry in (payload.get("slices") or {}).items():
            shard = int(shard_key)
            if self.map.owner(shard) != origin:
                fence = max(
                    self._shard_epochs.get(shard, 0),
                    self.replicas.epoch_of(shard),
                )
                self.fenced_frames += 1
                if self.runtime.tracing:
                    self.runtime.trace(
                        "shard.fenced",
                        f"push for shard {shard} from non-owner {origin} "
                        f"rejected (epoch {epoch}, fence {fence})",
                        shard=shard,
                        epoch=epoch,
                    )
                continue
            profile_dicts = entry.get("profiles") or []
            digests = entry.get("digests") or [None] * len(profile_dicts)
            profiles = [
                TranslatorProfile.from_dict(data, digest=digest)
                for data, digest in zip(profile_dicts, digests)
            ]
            removed = entry.get("removed") or []
            full = bool(entry.get("full"))
            self.replicas.apply_store(
                shard, profiles, epoch, now, full=full, force=True
            )
            if removed:
                self.replicas.apply_remove(
                    shard, removed, epoch, now, force=True
                )
            self._shard_epochs[shard] = max(
                self._shard_epochs.get(shard, 0), epoch
            )
            self.runtime.journal.append(
                "shard-replica",
                {
                    "shard": shard,
                    "profiles": profile_dicts,
                    "removed": list(removed),
                    "epoch": epoch,
                    "full": full,
                },
            )

    def _handle_digest(self, origin: str, payload: dict) -> None:
        """Anti-entropy digest receiver, both directions.

        As a *replica* (the digested shard is owned by the sender):
        compare the primary's per-shard slice summaries with local slices
        and answer with the shards whose content mismatches (plus the
        fencing epochs a deposed sender should respect).

        As the *primary* (we own the digested shard and the sender is one
        of its replicas): compare the replica's summary against the
        authoritative slice and full-sync mismatches directly.  This is
        the pull path a rejoining replica needs -- its own restart never
        changes the primary's membership view (the lease never expired),
        so the primary-side push digest would never fire."""
        epoch = int(payload.get("epoch", 0))
        mismatched = []
        stale_held = []
        epochs: Dict[str, int] = {}
        for shard_key, summary in (payload.get("shards") or {}).items():
            shard = int(shard_key)
            count, digest = int(summary[0]), summary[1]
            if shard in self._owned:
                # Primary side: resync a divergent replica on request.
                if origin not in replicas_of(
                    self.map, shard, self.replication_factor
                ):
                    continue
                profiles = self.store.slice_of(shard)
                mine = slice_digest(
                    {p.translator_id: p for p in profiles}
                )
                if len(profiles) != count or mine != digest:
                    stale_held.append(shard)
                continue
            # Replica side.  Same owner-anchored fence as
            # _handle_replica: a digest from a sender that is not the
            # current map owner is a deposed primary's.  Refuse the
            # exchange and report the recorded fence epoch instead of
            # inviting a stale sync.
            if self.map.owner(shard) != origin:
                self.fenced_frames += 1
                epochs[str(shard)] = max(
                    self._shard_epochs.get(shard, 0),
                    self.replicas.epoch_of(shard),
                )
                continue
            slice_ = self.replicas.get(shard)
            if slice_ is None:
                if count:
                    mismatched.append(shard)
                continue
            if len(slice_.entries) != count or slice_.digest() != digest:
                mismatched.append(shard)
        if stale_held:
            self._full_sync(origin, stale_held)
        if not mismatched and not epochs:
            return
        self.digest_replies += 1
        self._send(
            {
                "kind": "umiddle-shard-digest-reply",
                "origin": self.runtime_id,
                "shards": sorted(mismatched),
                "epochs": epochs,
            },
            64 + 8 * len(mismatched) + 12 * len(epochs),
            origin,
        )

    def _handle_digest_reply(self, origin: str, payload: dict) -> None:
        """Primary side of anti-entropy: full-sync exactly the shards the
        replica reported divergent -- unless the replica's recorded epoch
        dominates ours, in which case we are the deposed primary and
        stand down until the membership view (and a fresh quorum epoch)
        catches up."""
        epochs = payload.get("epochs") or {}
        to_sync = []
        for shard in payload.get("shards") or ():
            shard = int(shard)
            if shard not in self._owned:
                continue
            if int(epochs.get(str(shard), 0)) > self.epoch:
                continue
            to_sync.append(shard)
        self._full_sync(origin, to_sync)

    def _full_sync(self, peer: str, shards: List[int]) -> None:
        """Push the full authoritative slice of each shard to one
        replica -- the repair both anti-entropy directions converge on."""
        slices: Dict[str, dict] = {}
        size = 64
        for shard in shards:
            profiles = self.store.slice_of(shard)
            entry = {
                "profiles": [p.to_dict() for p in profiles],
                "digests": [p.wire_digest for p in profiles],
                "removed": [],
                "full": True,
            }
            slices[str(shard)] = entry
            size += 24 + sum(len(d) + 48 for d in entry["profiles"])
        if not slices:
            return
        self.replica_syncs += len(slices)
        self._send(
            {
                "kind": "umiddle-shard-replica",
                "origin": self.runtime_id,
                "epoch": self.epoch,
                "slices": slices,
            },
            size,
            peer,
        )
        self.replica_pushes_sent += 1

    def _handle_subscribe(self, origin: str, key) -> None:
        route_key = tuple(key) if key is not None else None
        self._interest.setdefault(route_key, set()).add(origin)
        # Initial sync: the subscriber gets the current bucket at once so a
        # standing query re-routed to a new owner never misses the state
        # that predates its subscription.
        if route_key is None:
            current = list(self.store._profiles.values())
        else:
            current = self.store.bucket(route_key)
        if not current:
            return
        payload = {
            "kind": "umiddle-shard-delta",
            "origin": self.runtime_id,
            "profiles": [p.to_dict() for p in current],
            "digests": [p.wire_digest for p in current],
            "removed": [],
        }
        size = 64 + sum(self._profile_wire_size(p) + 48 for p in current)
        self._send(payload, size, origin)
        self.deltas_sent += 1

    def _send(self, payload: dict, size: int, runtime_id: str) -> None:
        """Ship one shard-plane payload to a peer router.

        Live runtimes use real datagrams on the directory port; a router
        without a socket (offline tests/benchmarks) dispatches directly
        through the fabric so placement still converges without a kernel.
        Self-targeted sends always short-circuit in process.

        Bulk payloads (slice pushes, cold-ingest stores, anti-entropy
        full syncs, initial subscription syncs) to peers that negotiated
        the z capability ship as zlib-compressed self-contained frames
        charged at their *actual* encoded size; everything else keeps the
        declared-size dict datagram.
        """
        if runtime_id == self.runtime_id:
            self.handle(payload)
            return
        socket = self.directory._socket
        if socket is not None and not socket.closed:
            info = self.directory.runtime_info(runtime_id)
            if info is None:
                return
            if size >= Z_MIN_BYTES and self.runtime.transport.compression_ready(
                runtime_id
            ):
                try:
                    frame = encode_gossip(payload, compress=True)
                except TypeError:
                    frame = None
                if frame is not None:
                    self.z_frames_sent += 1
                    self.z_bytes_saved += max(0, size - frame.wire_size)
                    socket.sendto(
                        frame, frame.wire_size, info.address, info.directory_port
                    )
                    return
            socket.sendto(payload, size, info.address, info.directory_port)
            return
        router = shard_fabric(self.runtime.network).get(runtime_id)
        if router is not None:
            self.direct_dispatches += 1
            router.handle(payload)
