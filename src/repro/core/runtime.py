"""The uMiddle runtime: one intermediary node of the infrastructure.

A :class:`UMiddleRuntime` lives on a simulated network node and hosts the
directory module, the transport module, any number of platform mappers and
their translators, plus native uMiddle services (translators written
directly against uMiddle).  Multiple runtimes on a network federate through
their directory modules and exchange messages through their transport
modules, forming the common intermediary semantic space (Section 3.6's
room/house/campus deployments).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Union

from repro.calibration import Calibration, DEFAULT
from repro.core.binding import DynamicBinding, connect_saga as _connect_saga
from repro.core.directory import DIRECTORY_PORT, Directory
from repro.core.errors import TransportError, UMiddleError
from repro.core.health import HealthMonitor, HealthState, Supervisor
from repro.core.journal import Journal, durable_media
from repro.core.ports import DigitalInputPort, DigitalOutputPort
from repro.core.profile import PortRef, TranslatorProfile
from repro.core.qos import QosPolicy
from repro.core.query import Query
from repro.core.saga import Saga, SagaManager
from repro.core.shard import DEFAULT_SHARD_COUNT, ShardRouter
from repro.core.translator import Translator
from repro.core.transport import MessagePath, RemotePathHandle, Transport
from repro.simnet.kernel import Kernel
from repro.simnet.net import Node

__all__ = ["UMiddleRuntime", "TRANSPORT_PORT"]

TRANSPORT_PORT = 7700

_runtime_counter = itertools.count(1)


class UMiddleRuntime:
    """One uMiddle intermediary node.

    Construction wires the modules together; :meth:`start` (called
    automatically unless ``auto_start=False``) begins the directory's
    announcement processes and the transport server.
    """

    def __init__(
        self,
        node: Node,
        name: Optional[str] = None,
        calibration: Calibration = DEFAULT,
        transport_port: int = TRANSPORT_PORT,
        directory_port: int = DIRECTORY_PORT,
        auto_start: bool = True,
        health_enabled: bool = True,
        journal_enabled: bool = True,
        fsync_interval: float = 0.0,
        batching_enabled: bool = False,
        sharding_enabled: bool = False,
        shard_count: int = DEFAULT_SHARD_COUNT,
        replication_factor: int = 1,
        codec_enabled: bool = False,
        compression_enabled: bool = False,
        saga_enabled: bool = False,
    ):
        self.node = node
        self.kernel: Kernel = node.network.kernel
        self.network = node.network
        self.calibration = calibration
        self.runtime_id = name or f"umiddle-{next(_runtime_counter)}-{node.name}"
        #: Binary wire codec: envelopes, batch frames, gossip bodies, and
        #: journal records use the interned varint encoding from
        #: :mod:`repro.core.codec` instead of canonical JSON; the transport
        #: negotiates it per peer (``codec-hello``) and keeps speaking JSON
        #: to peers that never answer.  Off by default -- the JSON paths
        #: reproduce the pre-codec wire and journal bytes exactly.  Must be
        #: set before the journal/directory/transport constructors below,
        #: which all read it.
        self.codec_enabled = codec_enabled or compression_enabled
        #: Data-plane v3: intra-batch delta encoding, zlib block
        #: compression for bulk/full-state transfers (negotiated per peer
        #: via a ``codec-hello`` capability bit), compressed journal
        #: checkpoints, and load-weighted shard placement.  Implies
        #: ``codec_enabled`` -- the delta and compressed frames are binary
        #: codec forms.  Off by default: wire bytes, journal bytes and
        #: shard placement are byte-for-byte the pre-compression build.
        self.compression_enabled = compression_enabled
        # The write-ahead journal must exist before the directory and
        # transport: both append records from their first state change.
        # The durable media lives on the network, so a journal constructed
        # for a runtime_id that crashed before continues its LSN chain.
        self.journal = Journal(
            self,
            durable_media(node.network),
            enabled=journal_enabled,
            fsync_interval=fsync_interval,
            binary=self.codec_enabled,
            compress=compression_enabled,
        )
        # Health machinery must exist before the directory and transport:
        # both consult it from their constructors onward.
        self.health = HealthMonitor(
            self.kernel,
            enabled=health_enabled,
            on_local_change=self._on_local_health_changed,
            on_peer_change=self._on_peer_health_changed,
        )
        self.supervisor = Supervisor(self)
        #: Data-plane batching: the per-peer sender coalesces spooled
        #: envelopes into pipelined batch frames and acks them with one
        #: journal record per batch.  Off by default -- the unbatched
        #: sender reproduces the pre-batching wire and journal behavior
        #: byte for byte.
        self.batching_enabled = batching_enabled
        #: Sharded directory: the namespace is rendezvous-partitioned over
        #: the federation instead of fully replicated on every node.  Off
        #: by default -- the flat replica reproduces the pre-sharding
        #: directory byte for byte.  All runtimes of one federation must
        #: agree on the flag and on ``shard_count``.
        #: ``replication_factor`` > 1 additionally places each virtual
        #: shard on the top-R ranked owners: rank 0 stays the
        #: authoritative primary, ranks 1..R-1 hold passive replica
        #: slices serving epoch-fenced degraded reads and warm handoff
        #: ingest (:mod:`repro.core.replica`).  The default (1)
        #: reproduces the single-homed sharded directory byte for byte.
        self.shards = ShardRouter(
            self,
            enabled=sharding_enabled,
            shard_count=shard_count,
            replication_factor=replication_factor,
        )
        self.directory = Directory(self, port=directory_port)
        self.transport = Transport(self, port=transport_port)
        #: Journaled saga coordinator/participant (:mod:`repro.core.saga`).
        #: Off by default -- a disabled manager refuses `connect_saga` and
        #: keeps wire and journal bytes identical to a saga-free build.
        self.sagas = SagaManager(self, enabled=saga_enabled)
        self.mappers: List = []
        self.translators: Dict[str, Translator] = {}
        self._bindings: List[DynamicBinding] = []
        self.crashed = False
        #: True only between a ``crash(lose_state=True)`` that really
        #: discarded memory and the :meth:`recover` that rebuilds it;
        #: :meth:`recover` after a *warm* crash must not replay the journal
        #: on top of surviving in-memory state.
        self._cold_crashed = False
        if auto_start:
            self.start()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self.transport.start()
        self.directory.start()
        self.shards.start()

    def shutdown(self) -> None:
        """Stop mappers, unregister translators, close sockets."""
        for mapper in list(self.mappers):
            mapper.stop()
        for translator in list(self.translators.values()):
            self.unregister_translator(translator)
        self.shards.deactivate()
        self.transport.stop()
        self.directory.stop()

    def crash(self, lose_state: bool = False) -> None:
        """Fail abruptly: sockets vanish without goodbyes, every message
        path and discovery process dies, and soft state learned from peers
        is lost.  Local translators survive (they model configuration that
        a restarted process re-establishes).  Peers notice only through
        directory lease expiry or through their transport retry budget.

        ``lose_state=False`` (the warm crash of PR 1) keeps the in-memory
        directory, spool and bindings for :meth:`restart`.
        ``lose_state=True`` is a *cold* crash: everything in memory dies --
        directory entries (even local ones), standing bindings, the spool,
        breakers and the dedup window -- and only the write-ahead journal
        survives, for :meth:`recover` to rebuild from.  Un-fsynced
        group-commit records die with the process either way.  With the
        journal disabled a cold crash degrades to a warm one: there is
        nothing on disk to rebuild from, so the runtime keeps today's
        relearn-from-gossip semantics."""
        if self.crashed:
            return
        self.crashed = True
        # Nothing that happens while dead (path teardown below, or a late
        # timer) may reach the journal; recovery must see the pre-crash log.
        self.journal.lose_pending()
        self.journal.muted = True
        for mapper in list(self.mappers):
            mapper.suspend()
        self.shards.deactivate()
        self.transport.stop(graceful=False)
        self.directory.stop()
        self.directory.forget_remote()
        self.health.forget_peers()
        self.sagas.deactivate()
        if lose_state and self.journal.enabled:
            self._cold_crashed = True
            for binding in list(self._bindings):
                binding.close()
            self._bindings.clear()
            self.directory.discard_local()
            self.transport.discard_state()
            self.shards.discard_state()
            self.sagas.discard_state()
            self.trace("runtime.crash", "crashed (in-memory state lost)")
        else:
            self.trace("runtime.crash", "crashed")

    def restart(self) -> None:
        """Warm restart from :meth:`crash`: reopen the transport and
        directory (which immediately re-advertises the full local state),
        resume platform discovery, and re-evaluate standing query bindings.
        Application paths torn down by the crash are recorded as closed in
        the journal -- a warm restart does not resurrect them, so a later
        cold restart must not either."""
        if not self.crashed:
            return
        self.crashed = False
        self._cold_crashed = False
        self.journal.muted = False
        for path_id in self.transport.drain_orphaned_paths():
            self.journal.append("path-close", {"path_id": path_id})
        self.transport.start()
        self.directory.start()
        self.shards.start()
        for mapper in list(self.mappers):
            mapper.resume()
        for binding in list(self._bindings):
            binding.refresh()
        # Unfinished sagas survive a warm crash in memory; respawn their
        # drivers (a re-driven step is deduped by the participant cache).
        self.sagas.resume()
        self.trace("runtime.restart", "restarted")

    def recover(self) -> None:
        """Cold restart: rebuild the runtime purely from the write-ahead
        journal after a ``crash(lose_state=True)``.

        Replays the log to its last checksum-consistent prefix (physically
        truncating any corrupt tail), then in order: re-admits local
        directory entries with their journaled health, restores transport
        sequence counters, the unacked spool and half-open breakers,
        restarts the modules, re-opens standing query bindings under their
        journaled ids, and recreates application paths under their
        original ids.  Anything past the consistent prefix -- or remote
        soft state, which is never journaled -- is re-learned through the
        normal gossip pull.  Recovery ends with a journal checkpoint, so
        the durable view matches the rebuilt runtime exactly (skipped
        opaque spool markers included) and a second replay starts from one
        compact record.  With the journal disabled -- or after a *warm*
        crash, whose in-memory state survived and must not have the log
        replayed on top of it -- this degrades to :meth:`restart`."""
        if not self.crashed:
            return
        if not self.journal.enabled or not self._cold_crashed:
            self.restart()
            return
        self._cold_crashed = False
        self.journal.muted = True  # replay must not re-log what it reads
        state = self.journal.replay()
        if state.truncated:
            self.trace(
                "journal.truncated",
                f"discarded {state.discarded_bytes} corrupt tail byte(s); "
                "anything past the consistent prefix is re-learned via gossip",
                discarded=state.discarded_bytes,
                applied=state.applied_records,
            )
        self.crashed = False
        self.transport.drain_orphaned_paths()  # superseded by the replay
        for data in state.registered.values():
            self.directory.recover_local(TranslatorProfile.from_dict(data))
        self.transport.recover(state)
        self.shards.recover(state)
        self.sagas.recover(state)
        self.journal.muted = False
        self.transport.start()
        self.directory.start()
        self.shards.start()
        for mapper in list(self.mappers):
            mapper.resume()
        for binding_id, data in state.bindings.items():
            port = self._recover_port(data["port"])
            if port is None:
                continue
            binding = DynamicBinding(
                self,
                port,
                Query.from_dict(data["query"]),
                failover=bool(data.get("failover", False)),
                binding_id=binding_id,
            )
            self._bindings.append(binding)
        for path_id, data in state.paths.items():
            qos = QosPolicy.from_dict(data["qos"]) if data.get("qos") else None
            self.transport.recover_path(
                path_id,
                PortRef.parse(data["src"]),
                PortRef.parse(data["dst"]),
                qos,
            )
        # Seal recovery with a checkpoint: the durable view now equals the
        # rebuilt runtime (opaque spool markers the respool skipped are
        # gone from it), and the replayed prefix collapses to one record.
        self.journal.checkpoint()
        # Re-drive unfinished sagas only after the checkpoint sealed the
        # recovered view: their fresh records land in the new epoch.
        self.sagas.resume()
        self.trace(
            "runtime.recover",
            f"cold restart from {state.applied_records} journal record(s): "
            f"{len(state.registered)} translator(s), "
            f"{len(state.bindings)} binding(s), {len(state.paths)} path(s), "
            f"{sum(len(v) for v in state.spool.values())} spooled envelope(s), "
            f"{len(state.shard_entries)} shard-stored profile(s), "
            f"{len(state.sagas)} unfinished saga(s)",
        )

    def _recover_port(
        self, ref_str: str
    ) -> Optional[Union[DigitalOutputPort, DigitalInputPort]]:
        ref = PortRef.parse(ref_str)
        try:
            return self.local_output_port(ref)
        except TransportError:
            pass
        try:
            return self.local_input_port(ref)
        except TransportError:
            return None

    def trace(self, category: str, message: str, **details) -> None:
        self.network.trace.emit(category, f"[{self.runtime_id}] {message}", **details)

    @property
    def tracing(self) -> bool:
        """Cheap guard for hot paths: skip building trace f-strings (and
        the :meth:`trace` call) entirely when the recorder is disabled."""
        return self.network.trace.enabled

    # -- health --------------------------------------------------------------

    def _on_local_health_changed(
        self, translator_id: str, state: HealthState, reason: str
    ) -> None:
        self.trace(
            "health.translator", f"{translator_id} -> {state.value} ({reason})"
        )
        self.directory.update_local_health(translator_id, state.value)
        self.journal.append(
            "health", {"translator_id": translator_id, "health": state.value}
        )
        self._reevaluate_failover()

    def _on_peer_health_changed(
        self, runtime_id: str, state: HealthState, reason: str
    ) -> None:
        self.trace("health.peer", f"{runtime_id} -> {state.value} ({reason})")
        self._reevaluate_failover()

    def _reevaluate_failover(self) -> None:
        for binding in list(self._bindings):
            if binding.failover:
                binding.reevaluate()

    # -- translators ---------------------------------------------------------------

    def register_translator(self, translator: Translator) -> Translator:
        """Admit a translator (native service or platform bridge) to the
        semantic space: attaches it, indexes its ports and advertises it."""
        if translator.translator_id in self.translators:
            raise UMiddleError(
                f"translator {translator.translator_id!r} already registered"
            )
        translator.attach(self)
        self.translators[translator.translator_id] = translator
        profile = translator.profile
        self.directory.register(profile)
        self.journal.append("register", {"profile": profile.to_dict()})
        return translator

    def unregister_translator(self, translator: Translator) -> None:
        if translator.translator_id not in self.translators:
            raise UMiddleError(
                f"translator {translator.translator_id!r} is not registered here"
            )
        self.transport.close_paths_of_translator(translator.translator_id)
        del self.translators[translator.translator_id]
        self.directory.unregister(translator.translator_id)
        self.journal.append(
            "unregister", {"translator_id": translator.translator_id}
        )
        translator.detach()

    def translator(self, translator_id: str) -> Translator:
        try:
            return self.translators[translator_id]
        except KeyError:
            raise UMiddleError(f"no local translator {translator_id!r}") from None

    # -- mappers ----------------------------------------------------------------------

    def add_mapper(self, mapper, start: bool = True):
        self.mappers.append(mapper)
        if start:
            mapper.start()
        return mapper

    # -- port resolution -----------------------------------------------------------------

    def _local_port(self, ref: PortRef):
        if ref.runtime_id != self.runtime_id:
            raise TransportError(f"{ref} is not on runtime {self.runtime_id!r}")
        translator = self.translators.get(ref.translator_id)
        if translator is None:
            raise TransportError(f"no local translator for {ref}")
        return translator.port(ref.port_name)

    def local_output_port(self, ref: PortRef) -> DigitalOutputPort:
        port = self._local_port(ref)
        if not isinstance(port, DigitalOutputPort):
            raise TransportError(f"{ref} is not a digital output port")
        return port

    def local_input_port(self, ref: PortRef) -> DigitalInputPort:
        port = self._local_port(ref)
        if not isinstance(port, DigitalInputPort):
            raise TransportError(f"{ref} is not a digital input port")
        return port

    def find_input_port(self, ref: PortRef) -> Optional[DigitalInputPort]:
        """Non-raising lookup used by the transport's ingress path."""
        try:
            return self.local_input_port(ref)
        except TransportError:
            return None

    # -- the application-facing API (Figures 6 and 7) -----------------------------------------

    def lookup(self, query: Query) -> List[TranslatorProfile]:
        """Figure 6-1: profiles of translators matching ``query``."""
        return self.directory.lookup(query)

    def add_directory_listener(self, listener) -> None:
        """Figure 6-2: register for map/unmap notifications."""
        self.directory.add_directory_listener(listener)

    def connect(
        self,
        src: Union[DigitalOutputPort, PortRef],
        dst: Union[DigitalInputPort, PortRef],
        qos: Optional[QosPolicy] = None,
    ) -> Union[MessagePath, RemotePathHandle]:
        """Figure 7-1: a concrete path between two specific ports.

        Local paths created through this application API are journaled and
        survive a cold restart; paths a :class:`DynamicBinding` creates are
        derived state (the journaled binding recreates them), and a
        :class:`RemotePathHandle`'s path is the owning peer's to journal.
        """
        path = self.transport.connect(src, dst, qos=qos)
        if isinstance(path, MessagePath):
            path.journaled = True
            self.journal.append(
                "path-open",
                {
                    "path_id": path.path_id,
                    "src": str(path.src_ref),
                    "dst": str(path.dst_ref),
                    "qos": qos.to_dict() if qos is not None else None,
                },
            )
        return path

    def connect_query(
        self,
        port: Union[DigitalOutputPort, DigitalInputPort],
        query: Query,
        failover: bool = False,
    ) -> DynamicBinding:
        """Figure 7-2: a dynamic message path bound by a query template.

        With ``failover=True`` the binding tracks only the single best
        (healthiest) matching translator and migrates as health changes.
        """
        binding = DynamicBinding(self, port, query, failover=failover)
        self._bindings.append(binding)
        self.journal.append(
            "binding-open",
            {
                "binding_id": binding.binding_id,
                "port": str(port.ref),
                "query": query.to_dict(),
                "failover": failover,
            },
        )
        return binding

    def connect_saga(
        self,
        actions,
        timeout_s: float = 5.0,
        max_attempts: int = 3,
    ) -> Saga:
        """Composite action with transactional semantics: a journaled saga.

        ``actions`` is an ordered list of ``(target, message)`` or
        ``(target, message, compensation)`` tuples (or ready-made
        :class:`~repro.core.saga.SagaStep` objects); each target is a
        :class:`~repro.core.query.Query` (healthy-first resolution with
        failover) or a pinned :class:`~repro.core.profile.PortRef`.  Either
        every step's effect applies, or every applied effect is
        compensated -- never half, across warm/cold crashes and owner
        failover.  Requires ``saga_enabled=True``.
        """
        return _connect_saga(
            self, actions, timeout_s=timeout_s, max_attempts=max_attempts
        )

    def _forget_binding(self, binding: DynamicBinding) -> None:
        if binding in self._bindings:
            self._bindings.remove(binding)

    def federate(self, peer: "UMiddleRuntime") -> None:
        """Explicitly join another runtime's federation (both directions)."""
        self.directory.federate(peer.node.address, peer.directory.port)
        peer.directory.federate(self.node.address, self.directory.port)
