"""Mappers: service-level and transport-level bridges (Section 3.2).

A mapper encapsulates one native platform: it discovers native devices via
the platform's own discovery protocol (SSDP, SDP, registry polling, ...)
and imports each into the intermediary semantic space by instantiating the
device-specific translator from a USDL document.  It also contains the
base-protocol support for the platform (its native handles wrap the
platform's protocol stack).

The base class provides the instantiation machinery, the per-device-type
mapping-duration statistics that Figure 10 reports, and unmapping.  Each
platform bridge subclasses :class:`Mapper` and implements :meth:`discover`.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, TYPE_CHECKING

from repro.core.errors import TranslationError
from repro.core.translator import GenericTranslator, NativeHandle, Translator
from repro.core.usdl import UsdlDocument
from repro.simnet.kernel import Interrupt, ProcessKilled

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import UMiddleRuntime

__all__ = ["Mapper"]


class Mapper:
    """Base class for platform mappers."""

    #: The native platform this mapper bridges; subclasses override.
    platform = "abstract"

    def __init__(self, runtime: "UMiddleRuntime"):
        self.runtime = runtime
        self.translators: List[Translator] = []
        #: device_type -> list of mapping durations (simulated seconds);
        #: this is the data series of Figure 10.
        self.mapping_durations: Dict[str, List[float]] = {}
        self.started = False
        #: True while suspended (crash/stall): subclasses must also ignore
        #: passive discovery events (e.g. SSDP notifications) when set.
        self.suspended = False
        self._discovery_process = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Begin platform discovery (idempotent)."""
        if self.started:
            return
        self.started = True
        self._discovery_process = self.runtime.kernel.process(
            self.discover(), name=f"discover:{self.platform}"
        )
        self.runtime.supervisor.watch(
            f"discover:{self.platform}",
            self._discovery_process,
            self._respawn_discovery,
        )

    def _respawn_discovery(self):
        """Supervisor hook: restart a crashed discovery loop."""
        if not self.started or self.suspended:
            return None
        self._discovery_process = self.runtime.kernel.process(
            self.discover(), name=f"discover:{self.platform}"
        )
        return self._discovery_process

    def stop(self) -> None:
        if self._discovery_process is not None and self._discovery_process.is_alive:
            self._discovery_process.kill("mapper stopped")
        self._discovery_process = None
        self.started = False
        for translator in list(self.translators):
            self.unmap(translator)

    def suspend(self) -> None:
        """Pause discovery *without* unmapping (crash/stall semantics).

        Mapped translators stay in the semantic space; native churn that
        happens while suspended is only noticed once :meth:`resume`
        restarts the discovery loop.
        """
        if self._discovery_process is not None and self._discovery_process.is_alive:
            self._discovery_process.kill("mapper suspended")
        self._discovery_process = None
        self.suspended = True
        if self.started:
            self.started = False
            self.runtime.trace(
                "mapper.suspended", f"{self.platform}: discovery paused"
            )

    def resume(self) -> None:
        """Restart discovery after :meth:`suspend` (a fresh discover() run
        re-walks the platform, re-mapping devices that appeared and
        unmapping ones that vanished while we were blind)."""
        if self.started:
            return
        self.suspended = False
        self.runtime.trace("mapper.resumed", f"{self.platform}: discovery resumed")
        # Departures that happened while suspended left stale translators
        # in the semantic space; reconcile immediately instead of waiting
        # for the discovery loop's next periodic sweep.  The resync process
        # is spawned before the discovery loop restarts so the removals are
        # attributed to it rather than racing the loop's first pass.
        resync = self.resync()
        if resync is not None:
            self.runtime.kernel.process(
                self._run_resync(resync), name=f"resync:{self.platform}"
            )
        self.start()

    def resync(self) -> Optional[Generator]:
        """Hook: return a generator that reconciles the known-device set
        against one fresh discovery pass, unmapping devices that vanished
        while suspended, and returns the number of removals.  ``None``
        (the default) means the platform has no cheap resync pass."""
        return None

    def _run_resync(self, resync: Generator) -> Generator:
        try:
            removed = yield from resync
        except (Interrupt, ProcessKilled):
            raise
        except Exception as exc:
            self.runtime.trace(
                "mapper.resync-failed", f"{self.platform}: {exc}"
            )
            return
        self.runtime.trace(
            "mapper.resynced",
            f"{self.platform}: reconciled after suspend "
            f"({removed or 0} removed)",
            removed=removed or 0,
        )

    def discover(self) -> Generator:
        """Platform-specific discovery loop; subclasses implement.

        The generator runs as a kernel process for the life of the mapper.
        It should call :meth:`map_device` (with ``yield from``) whenever a
        native device appears, and :meth:`unmap` when one disappears.
        """
        raise NotImplementedError
        yield  # pragma: no cover

    # -- mapping ------------------------------------------------------------------

    def map_device(
        self,
        document: UsdlDocument,
        native: NativeHandle,
        instance_name: Optional[str] = None,
        extra_attributes: Optional[dict] = None,
        started_at: Optional[float] = None,
    ) -> Generator:
        """Instantiate and register the translator for one native device.

        Generator (run with ``yield from`` inside a process): charges the
        calibrated USDL-parse and translator-construction costs that
        Figure 10 measures, then registers the translator with the runtime.
        Returns the :class:`GenericTranslator`.

        ``started_at`` backdates the recorded mapping duration, for mappers
        whose translator generation includes platform channel setup (e.g.
        Bluetooth paging/SDP before the translator can proxy).
        """
        if document.platform != self.platform:
            raise TranslationError(
                f"{self.platform} mapper cannot map a {document.platform!r} document"
            )
        kernel = self.runtime.kernel
        costs = self.runtime.calibration.umiddle
        started = started_at if started_at is not None else kernel.now

        digital_ports = sum(1 for p in document.ports if p.is_digital)
        physical_ports = document.port_count - digital_ports
        # Parse/validate the USDL document describing the device.
        yield kernel.timeout(costs.usdl_parse_per_port_s * document.port_count)
        # Reflection-heavy construction of the translator's object graph.
        yield kernel.timeout(
            costs.translator_fixed_s
            + costs.translator_per_digital_port_s * digital_ports
            + costs.translator_per_physical_port_s * physical_ports
            + costs.translator_per_entity_s * document.entity_count
        )

        translator = GenericTranslator(
            document,
            native,
            instance_name=instance_name,
            extra_attributes=extra_attributes,
        )
        self.runtime.register_translator(translator)
        self.translators.append(translator)

        duration = kernel.now - started
        self.mapping_durations.setdefault(document.device_type, []).append(duration)
        self.runtime.trace(
            "mapper.mapped",
            f"{self.platform}: {translator.name} "
            f"({document.port_count} ports) in {duration * 1000:.1f} ms",
            duration=duration,
            device_type=document.device_type,
        )
        return translator

    def unmap(self, translator: Translator) -> None:
        """Remove a translator when its native device disappears."""
        if translator not in self.translators:
            raise TranslationError(
                f"{translator.translator_id!r} was not mapped by this mapper"
            )
        self.translators.remove(translator)
        self.runtime.unregister_translator(translator)
        self.runtime.trace("mapper.unmapped", f"{self.platform}: {translator.name}")

    # -- statistics -----------------------------------------------------------------

    def mean_mapping_duration(self, device_type: str) -> float:
        durations = self.mapping_durations.get(device_type)
        if not durations:
            raise TranslationError(f"no mappings recorded for {device_type!r}")
        return sum(durations) / len(durations)
