"""Replicated shard slices with epoch-fenced ownership.

The sharded directory (:mod:`repro.core.shard`) single-homes each
``(axis, value)`` slice on one rendezvous-hashed owner: an owner crash or
a partition blacks out keyed lookups for those shards until lease reaping
and origin re-push reconverge.  This module adds the availability tier on
top, gated on ``UMiddleRuntime(replication_factor=...)``:

- **Placement** -- each virtual shard is placed on the top-R members of
  the existing :meth:`ShardMap.owners_ranked` order.  Rank 0 is the
  *primary* (authoritative, exactly the PR 6 owner); ranks ``1..R-1``
  hold passive *replica slices* streamed from the primary.  No new hash,
  no new coordination: every node derives the identical replica sets
  from the identical membership view.
- **ReplicaStore** -- the passive side: per-shard profile slices with the
  epoch that last wrote them and the simulated time of the last accepted
  sync (the bounded-staleness marker degraded reads report).
- **Epoch fencing** -- ownership carries a monotonic per-node epoch,
  journaled as ``shard-epoch`` records.  A node only advances its epoch
  on an ownership transition whose membership view retains a majority of
  the previous view (:func:`has_quorum`), so a primary deposed into a
  minority keeps its stale epoch.  Every replica-plane frame is stamped
  with the sender's epoch; receivers reject (fence) any frame whose
  sender is not the shard's current primary under their own membership
  view -- the view is the authority anchor, because per-node epoch
  counters have incomparable histories -- so a deposed primary can never
  resurrect reaped state.  The stamped epoch is journaled with every
  accepted slice, reported back in digest replies (the deposed primary's
  stand-down signal) and carried on fencing traces and
  :class:`~repro.core.errors.ShardUnavailable`.
- **Anti-entropy** -- on every membership change the primary sends its
  replicas a per-shard ``(count, digest)`` summary; a replica answers
  with the shards whose slice digest mismatches and the primary re-syncs
  exactly those with a full-slice push.  The same exchange bootstraps a
  brand-new replica (its empty slice always mismatches) and repairs a
  slice that diverged across a partition.

The authoritative store, origin re-push and lease reaping are untouched:
replication is purely an availability overlay, and the correctness
backstop of PR 6 (origins re-push on every membership change) remains
the final word on slice content.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from repro.core.profile import TranslatorProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.shard import ShardMap

__all__ = [
    "ReplicaSlice",
    "ReplicaStore",
    "replicas_of",
    "slice_digest",
    "has_quorum",
]


def replicas_of(
    shard_map: "ShardMap", shard: int, replication_factor: int
) -> List[str]:
    """The replica members of ``shard``: ranks ``1..R-1`` of the
    rendezvous order (rank 0 is the primary).  Fewer members than R means
    fewer replicas -- never a wrap-around double placement."""
    if replication_factor <= 1:
        return []
    ranked = shard_map.owners_ranked(shard)
    return ranked[1:replication_factor]


def has_quorum(view_size: int, previous_size: int) -> bool:
    """True when a membership view of ``view_size`` retains a strict
    majority of the ``previous_size``-member view it replaced.

    This is the epoch-advance gate: the majority side of a partition
    advances its ownership epoch (its writes fence out the minority's),
    while a primary deposed into a minority keeps its stale epoch.  An
    exact even split advances neither side; divergence across such a
    split is repaired by origin re-push and anti-entropy on heal rather
    than by fencing.
    """
    return view_size * 2 > previous_size


def slice_digest(entries: Dict[str, TranslatorProfile]) -> str:
    """Order-insensitive digest of one shard slice's content, compared
    between primary and replica during anti-entropy."""
    hasher = hashlib.sha1()
    for translator_id in sorted(entries):
        hasher.update(translator_id.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(entries[translator_id].wire_digest.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


class ReplicaSlice:
    """One shard's passive replica: content plus fencing/staleness state."""

    __slots__ = ("shard", "epoch", "synced_at", "entries")

    def __init__(self, shard: int, epoch: int = 0, synced_at: float = 0.0):
        self.shard = shard
        #: Highest ownership epoch whose primary wrote this slice; frames
        #: stamped with a lower epoch are fenced out.
        self.epoch = epoch
        #: Simulated time of the last accepted sync from the primary: the
        #: bound a degraded read reports as its staleness marker.
        self.synced_at = synced_at
        self.entries: Dict[str, TranslatorProfile] = {}

    def digest(self) -> str:
        return slice_digest(self.entries)


class ReplicaStore:
    """All replica slices one node passively holds for its peers.

    Kept strictly apart from the authoritative :class:`ShardStore`: the
    placement invariant, journaling and sweep semantics of the primary
    path are untouched, and a replica slice only ever surfaces through an
    explicitly-traced degraded read or a warm-ingest promotion.
    """

    def __init__(self):
        self._slices: Dict[int, ReplicaSlice] = {}

    # -- inspection --------------------------------------------------------

    @property
    def slice_count(self) -> int:
        return len(self._slices)

    @property
    def profile_count(self) -> int:
        return sum(len(s.entries) for s in self._slices.values())

    def shards(self) -> List[int]:
        return list(self._slices)

    def estimated_bytes(self) -> int:
        """Modeled bytes of every replicated profile held here -- the
        replica-tier share of a node's state footprint (the benchmark's
        fattest-node accounting sums this with the primary store's)."""
        return sum(
            profile.estimated_size()
            for slice_ in self._slices.values()
            for profile in slice_.entries.values()
        )

    def origins(self) -> "set[str]":
        """Every origin runtime with at least one replicated profile --
        swept against the membership view just like the primary store's
        origins."""
        found = set()
        for slice_ in self._slices.values():
            for profile in slice_.entries.values():
                found.add(profile.runtime_id)
        return found

    def get(self, shard: int) -> Optional[ReplicaSlice]:
        return self._slices.get(shard)

    def epoch_of(self, shard: int) -> int:
        slice_ = self._slices.get(shard)
        return slice_.epoch if slice_ is not None else 0

    def snapshot(self) -> Dict[str, dict]:
        """Canonical JSON-serializable content (recovery equivalence).
        Shard keys are strings so the blob round-trips through JSON."""
        return {
            str(shard): {
                "epoch": slice_.epoch,
                "entries": {
                    tid: slice_.entries[tid].to_dict()
                    for tid in sorted(slice_.entries)
                },
            }
            for shard, slice_ in sorted(self._slices.items())
        }

    # -- mutation ----------------------------------------------------------

    def _slice(self, shard: int) -> ReplicaSlice:
        slice_ = self._slices.get(shard)
        if slice_ is None:
            slice_ = ReplicaSlice(shard)
            self._slices[shard] = slice_
        return slice_

    def apply_store(
        self,
        shard: int,
        profiles: Iterable[TranslatorProfile],
        epoch: int,
        now: float,
        full: bool = False,
        force: bool = False,
    ) -> bool:
        """Merge (or, with ``full``, replace with) the pushed profiles.
        Returns False when the push is fenced out by a higher epoch
        already recorded for the slice; ``force`` skips that comparison
        (the router passes it for pushes from the shard's *current* map
        owner, whose authority comes from the membership view -- epochs
        are per-node counters, so a legitimately elected primary may
        well carry fewer bumps than its predecessor)."""
        slice_ = self._slices.get(shard)
        if not force and slice_ is not None and epoch < slice_.epoch:
            return False
        slice_ = self._slice(shard)
        if full:
            slice_.entries.clear()
        for profile in profiles:
            slice_.entries[profile.translator_id] = profile
        slice_.epoch = max(slice_.epoch, epoch)
        slice_.synced_at = now
        return True

    def apply_remove(
        self,
        shard: int,
        translator_ids: Iterable[str],
        epoch: int,
        now: float,
        force: bool = False,
    ) -> bool:
        slice_ = self._slices.get(shard)
        if slice_ is None:
            return True  # nothing to remove: vacuously applied
        if not force and epoch < slice_.epoch:
            return False
        for translator_id in translator_ids:
            slice_.entries.pop(translator_id, None)
        slice_.epoch = max(slice_.epoch, epoch)
        slice_.synced_at = now
        return True

    def drop(self, shard: int) -> bool:
        return self._slices.pop(shard, None) is not None

    def drop_origin(self, origin: str) -> List[int]:
        """Reap every replica entry from a conclusively-lost origin (the
        replica-plane analog of the primary's ``origin_lost``); returns
        the shards touched."""
        touched = []
        for shard, slice_ in list(self._slices.items()):
            gone = [
                tid
                for tid, profile in slice_.entries.items()
                if profile.runtime_id == origin
            ]
            if gone:
                for tid in gone:
                    del slice_.entries[tid]
                touched.append(shard)
        return touched

    def clear(self) -> None:
        self._slices.clear()

    # -- serving -----------------------------------------------------------

    def bucket(
        self, shard: int, key: Tuple[str, str]
    ) -> List[TranslatorProfile]:
        """Profiles in one replica slice carrying ``key``.  Slices are
        small (one virtual shard), so a linear scan beats maintaining a
        per-slice index that degraded reads rarely consult."""
        slice_ = self._slices.get(shard)
        if slice_ is None:
            return []
        return [
            profile
            for profile in slice_.entries.values()
            if key in profile.index_keys()
        ]
