"""Runtime port objects owned by translators.

These are the live counterparts of the static :class:`~repro.core.shapes.PortSpec`
descriptions: a :class:`DigitalOutputPort` injects messages into the
transport module, a :class:`DigitalInputPort` receives them (its handler may
be a plain callable or a generator function, in which case delivery runs it
as part of the message path's delivery process, providing natural
backpressure into the translation buffer), and a :class:`PhysicalPort`
records the device's physical-world effects so tests and the G2 UI
application can observe them.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.core.errors import PortError
from repro.core.messages import UMessage
from repro.core.profile import PortRef
from repro.core.shapes import Direction, DigitalType, PhysicalType, PortSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.translator import Translator

__all__ = ["Port", "DigitalInputPort", "DigitalOutputPort", "PhysicalPort"]


class Port:
    """Base class for live ports."""

    def __init__(self, spec: PortSpec, translator: "Translator"):
        self.spec = spec
        self.translator = translator

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def direction(self) -> Direction:
        return self.spec.direction

    @property
    def ref(self) -> PortRef:
        runtime = self.translator.runtime
        if runtime is None:
            raise PortError(
                f"port {self.name!r}: translator {self.translator.translator_id!r} "
                "is not attached to a runtime"
            )
        return PortRef(runtime.runtime_id, self.translator.translator_id, self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.__class__.__name__} {self.translator.translator_id}/{self.name}>"


class DigitalInputPort(Port):
    """A digital input endpoint: messages arrive here.

    ``handler(message)`` may return ``None`` (synchronous handling) or a
    generator (asynchronous handling executed by the delivering message
    path, charging simulated time and applying backpressure).
    """

    def __init__(
        self,
        spec: PortSpec,
        translator: "Translator",
        handler: Callable[[UMessage], Any],
    ):
        if spec.direction is not Direction.IN or not spec.is_digital:
            raise PortError(f"{spec.name!r} is not a digital input spec")
        super().__init__(spec, translator)
        self.handler = handler
        self.messages_received = 0
        self.bytes_received = 0

    @property
    def mime(self) -> DigitalType:
        return self.spec.digital_type

    def deliver(self, message: UMessage) -> Any:
        """Invoke the handler; returns its result (possibly a generator)."""
        self.messages_received += 1
        self.bytes_received += message.size
        return self.handler(message)


class DigitalOutputPort(Port):
    """A digital output endpoint: translators send messages from here."""

    def __init__(self, spec: PortSpec, translator: "Translator"):
        if spec.direction is not Direction.OUT or not spec.is_digital:
            raise PortError(f"{spec.name!r} is not a digital output spec")
        super().__init__(spec, translator)
        self.messages_sent = 0
        self.bytes_sent = 0

    @property
    def mime(self) -> DigitalType:
        return self.spec.digital_type

    def send(self, message: UMessage) -> None:
        """Hand ``message`` to the transport module for all bound paths.

        The message's MIME type must equal the port's type: ports are the
        unit of type compatibility in the semantic space, so sending a
        mistyped message would silently defeat shape matching.
        """
        if message.mime != self.mime:
            raise PortError(
                f"port {self.name!r} carries {self.mime}, not {message.mime}"
            )
        runtime = self.translator.runtime
        if runtime is None:
            raise PortError(
                f"cannot send from detached translator "
                f"{self.translator.translator_id!r}"
            )
        self.messages_sent += 1
        self.bytes_sent += message.size
        runtime.transport.dispatch(self, message.with_source(str(self.ref)))

    def send_flow(self, message: UMessage):
        """Flow-controlled send (generator): waits for buffer space on every
        bound path instead of risking drops -- the backpressure half of the
        QoS mechanism.  Use from a kernel process: ``yield from
        port.send_flow(msg)``."""
        if message.mime != self.mime:
            raise PortError(
                f"port {self.name!r} carries {self.mime}, not {message.mime}"
            )
        runtime = self.translator.runtime
        if runtime is None:
            raise PortError(
                f"cannot send from detached translator "
                f"{self.translator.translator_id!r}"
            )
        self.messages_sent += 1
        self.bytes_sent += message.size
        admitted = yield from runtime.transport.dispatch_flow(
            self, message.with_source(str(self.ref))
        )
        return admitted


class PhysicalPort(Port):
    """A physical endpoint: a perceptible effect in (or sensed from) the world.

    Physical ports carry no digital traffic; they exist so shapes can
    express affordances (``visible/paper``).  For observability, translators
    may record *manifestations* -- e.g. the light translator records an
    ``illumination`` change whenever the native light switches -- which
    tests and applications can inspect.
    """

    def __init__(self, spec: PortSpec, translator: "Translator"):
        if spec.is_digital:
            raise PortError(f"{spec.name!r} is not a physical spec")
        super().__init__(spec, translator)
        self.manifestations: List[Any] = []
        self._observers: List[Callable[[Any], None]] = []

    @property
    def physical_type(self) -> PhysicalType:
        return self.spec.physical_type

    def manifest(self, effect: Any) -> None:
        """Record a physical-world effect and notify observers."""
        self.manifestations.append(effect)
        for observer in list(self._observers):
            observer(effect)

    def observe(self, observer: Callable[[Any], None]) -> None:
        self._observers.append(observer)

    @property
    def last_manifestation(self) -> Optional[Any]:
        return self.manifestations[-1] if self.manifestations else None
