"""Translator profiles: what the directory advertises about a translator.

A profile is the directory-visible description of a translator: identity,
origin platform, role, shape, and free-form attributes.  Profiles are plain
data (JSON-serializable) so they can be gossiped between uMiddle runtimes
by the directory module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.core.errors import ShapeError
from repro.core.shapes import Direction, DigitalType, PhysicalType, PortSpec, Shape

__all__ = ["PortRef", "TranslatorProfile"]


@dataclass(frozen=True, order=True)
class PortRef:
    """A globally unique reference to one port of one translator."""

    runtime_id: str
    translator_id: str
    port_name: str

    def __str__(self) -> str:
        return f"{self.runtime_id}/{self.translator_id}/{self.port_name}"

    @classmethod
    def parse(cls, text: str) -> "PortRef":
        parts = text.split("/")
        if len(parts) != 3 or not all(parts):
            raise ShapeError(f"malformed port reference: {text!r}")
        return cls(*parts)


@dataclass(frozen=True)
class TranslatorProfile:
    """The advertised description of one translator.

    ``attributes`` carry platform- or application-specific metadata such as
    G2 UI geographic coordinates or the native device's address.
    """

    translator_id: str
    name: str
    platform: str
    device_type: str
    role: str
    runtime_id: str
    shape: Shape
    description: str = ""
    attributes: Dict[str, Any] = field(default_factory=dict)

    def port_ref(self, port_name: str) -> PortRef:
        self.shape.port(port_name)  # validates existence
        return PortRef(self.runtime_id, self.translator_id, port_name)

    # -- wire form ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form used by directory advertisements."""
        ports = []
        for spec in self.shape:
            entry: Dict[str, Any] = {
                "name": spec.name,
                "direction": spec.direction.value,
            }
            if spec.is_digital:
                entry["mime"] = spec.digital_type.mime
            else:
                entry["physical"] = str(spec.physical_type)
            ports.append(entry)
        return {
            "translator_id": self.translator_id,
            "name": self.name,
            "platform": self.platform,
            "device_type": self.device_type,
            "role": self.role,
            "runtime_id": self.runtime_id,
            "description": self.description,
            "attributes": dict(self.attributes),
            "ports": ports,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TranslatorProfile":
        specs = []
        for entry in data["ports"]:
            direction = Direction(entry["direction"])
            if "mime" in entry:
                specs.append(
                    PortSpec(
                        name=entry["name"],
                        direction=direction,
                        digital_type=DigitalType(entry["mime"]),
                    )
                )
            else:
                specs.append(
                    PortSpec(
                        name=entry["name"],
                        direction=direction,
                        physical_type=PhysicalType.parse(entry["physical"]),
                    )
                )
        return cls(
            translator_id=data["translator_id"],
            name=data["name"],
            platform=data["platform"],
            device_type=data["device_type"],
            role=data["role"],
            runtime_id=data["runtime_id"],
            shape=Shape(specs),
            description=data.get("description", ""),
            attributes=dict(data.get("attributes", {})),
        )

    def estimated_size(self) -> int:
        """Approximate advertisement size in bytes (for simulated costs)."""
        base = 96
        base += len(self.name) + len(self.device_type) + len(self.role)
        base += 32 * len(self.shape)
        base += sum(len(str(k)) + len(str(v)) for k, v in self.attributes.items())
        return base
