"""Translator profiles: what the directory advertises about a translator.

A profile is the directory-visible description of a translator: identity,
origin platform, role, shape, and free-form attributes.  Profiles are plain
data (JSON-serializable) so they can be gossiped between uMiddle runtimes
by the directory module.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Tuple

from repro.core import codec
from repro.core.errors import ShapeError
from repro.core.shapes import Direction, DigitalType, PhysicalType, PortSpec, Shape

__all__ = ["PortRef", "TranslatorProfile", "same_except_health"]


def _canonical_encode(data: Dict[str, Any]) -> bytes:
    """The canonical (key-sorted, compact) JSON encoding of a wire dict."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _canonical_digest(data: Dict[str, Any]) -> str:
    """Content digest of a wire-form dict (canonical JSON, key-sorted)."""
    return hashlib.sha1(_canonical_encode(data)).hexdigest()


#: Profiles reconstructed from the wire, keyed by content digest.  Unchanged
#: re-announcements of the same profile skip PortSpec/Shape reconstruction and
#: validation entirely and share one instance (which also makes the cached
#: wire form and index keys below pay off across the whole federation view).
_INTERNED: "weakref.WeakValueDictionary[str, TranslatorProfile]" = (
    weakref.WeakValueDictionary()
)


@dataclass(frozen=True, order=True)
class PortRef:
    """A globally unique reference to one port of one translator."""

    runtime_id: str
    translator_id: str
    port_name: str

    def __str__(self) -> str:
        return f"{self.runtime_id}/{self.translator_id}/{self.port_name}"

    @classmethod
    def parse(cls, text: str) -> "PortRef":
        parts = text.split("/")
        if len(parts) != 3 or not all(parts):
            raise ShapeError(f"malformed port reference: {text!r}")
        return cls(*parts)


@dataclass(frozen=True)
class TranslatorProfile:
    """The advertised description of one translator.

    ``attributes`` carry platform- or application-specific metadata such as
    G2 UI geographic coordinates or the native device's address.

    ``health`` is the owner runtime's observed health of the translator
    (``healthy``/``degraded``/``quarantined``); it rides the wire form so
    remote directories order lookups health-first, but it is *not* part of
    the discovery index keys (health changes never re-bucket an entry).
    """

    translator_id: str
    name: str
    platform: str
    device_type: str
    role: str
    runtime_id: str
    shape: Shape
    description: str = ""
    attributes: Dict[str, Any] = field(default_factory=dict)
    health: str = "healthy"

    def with_health(self, health: str) -> "TranslatorProfile":
        """A copy differing only in ``health`` (self when unchanged)."""
        if health == self.health:
            return self
        return replace(self, health=health)

    def port_ref(self, port_name: str) -> PortRef:
        self.shape.port(port_name)  # validates existence
        return PortRef(self.runtime_id, self.translator_id, port_name)

    # -- wire form ---------------------------------------------------------
    #
    # The profile is frozen, so its wire form, estimated size, content
    # digest and discovery index keys are each computed once and cached on
    # the instance (via object.__setattr__).  Callers must treat the dict
    # returned by to_dict() as immutable.

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form used by directory advertisements."""
        cached = self.__dict__.get("_wire")
        if cached is not None:
            return cached
        ports = []
        for spec in self.shape:
            entry: Dict[str, Any] = {
                "name": spec.name,
                "direction": spec.direction.value,
            }
            if spec.is_digital:
                entry["mime"] = spec.digital_type.mime
            else:
                entry["physical"] = str(spec.physical_type)
            ports.append(entry)
        wire = {
            "translator_id": self.translator_id,
            "name": self.name,
            "platform": self.platform,
            "device_type": self.device_type,
            "role": self.role,
            "runtime_id": self.runtime_id,
            "description": self.description,
            "attributes": dict(self.attributes),
            "health": self.health,
            "ports": ports,
        }
        object.__setattr__(self, "_wire", wire)
        return wire

    @property
    def wire_bytes(self) -> bytes:
        """The canonical JSON encoding of the wire form, computed once.

        Both the content digest and the JSON size estimate derive from
        this one cached encoding -- previously each site re-serialized
        the dict independently.
        """
        cached = self.__dict__.get("_wire_bytes")
        if cached is None:
            cached = _canonical_encode(self.to_dict())
            object.__setattr__(self, "_wire_bytes", cached)
        return cached

    @property
    def wire_digest(self) -> str:
        """Stable content digest of the wire form (delta/digest gossip)."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = hashlib.sha1(self.wire_bytes).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    @classmethod
    def from_dict(
        cls, data: Dict[str, Any], digest: str = None
    ) -> "TranslatorProfile":
        """Reconstruct (or intern-share) a profile from its wire form.

        ``digest`` lets senders that already know the content digest (it is
        cached on their instance and shipped alongside the wire form) skip
        the canonical-JSON + SHA-1 recompute here -- the dominant cost of a
        cold full-state apply.  A wrong digest would alias a different
        profile, so only pass digests produced by :attr:`wire_digest`.
        """
        if digest is None:
            digest = _canonical_digest(data)
        interned = _INTERNED.get(digest)
        if interned is not None:
            return interned
        specs = []
        for entry in data["ports"]:
            direction = Direction(entry["direction"])
            if "mime" in entry:
                specs.append(
                    PortSpec(
                        name=entry["name"],
                        direction=direction,
                        digital_type=DigitalType(entry["mime"]),
                    )
                )
            else:
                specs.append(
                    PortSpec(
                        name=entry["name"],
                        direction=direction,
                        physical_type=PhysicalType.parse(entry["physical"]),
                    )
                )
        profile = cls(
            translator_id=data["translator_id"],
            name=data["name"],
            platform=data["platform"],
            device_type=data["device_type"],
            role=data["role"],
            runtime_id=data["runtime_id"],
            shape=Shape(specs),
            description=data.get("description", ""),
            attributes=dict(data.get("attributes", {})),
            health=data.get("health", "healthy"),
        )
        # Seed the digest cache with the incoming form's digest: our own
        # senders always emit the canonical (port-sorted) form, so this
        # equals the canonical digest for all gossiped profiles.
        object.__setattr__(profile, "_digest", digest)
        _INTERNED[digest] = profile
        return profile

    def estimated_size(self) -> int:
        """Approximate advertisement size in bytes (for simulated costs)."""
        cached = self.__dict__.get("_size")
        if cached is not None:
            return cached
        base = 96
        base += len(self.name) + len(self.device_type) + len(self.role)
        base += 32 * len(self.shape)
        base += sum(len(str(k)) + len(str(v)) for k, v in self.attributes.items())
        object.__setattr__(self, "_size", base)
        return base

    def encoded_size(self) -> int:
        """Advertisement size in bytes under the binary wire codec.

        The codec-honest counterpart of :meth:`estimated_size`: callers
        that charge simulated bandwidth while ``codec_enabled`` is on use
        the actual self-contained binary encoding length, not the JSON
        heuristic.
        """
        cached = self.__dict__.get("_bin_size")
        if cached is not None:
            return cached
        size = codec.encoded_size(self.to_dict())
        object.__setattr__(self, "_bin_size", size)
        return size

    def index_keys(self) -> Tuple[Tuple[str, str], ...]:
        """Every coarse (axis, value) key this profile is discoverable by.

        The closure property: for any query ``q`` with ``q.matches(self)``,
        ``set(q.index_keys()) <= set(self.index_keys())``.  Scalar axes are
        indexed verbatim; each concrete port type is expanded to all
        wildcard patterns it satisfies, so pattern queries are exact-key
        lookups too.
        """
        cached = self.__dict__.get("_index_keys")
        if cached is not None:
            return cached
        keys = [
            ("platform", self.platform),
            ("device", self.device_type),
            ("role", self.role),
        ]
        for spec in self.shape:
            if spec.is_digital:
                axis = "din" if spec.direction is Direction.IN else "dout"
                keys.extend((axis, text) for text in spec.digital_type.expansions())
            else:
                axis = "pin" if spec.direction is Direction.IN else "pout"
                keys.extend((axis, text) for text in spec.physical_type.expansions())
        result = tuple(dict.fromkeys(keys))
        object.__setattr__(self, "_index_keys", result)
        return result


def same_except_health(a: TranslatorProfile, b: TranslatorProfile) -> bool:
    """True when two profiles differ in nothing but ``health``.

    The directory uses this to distinguish a *health-only* gossip change
    (entry swapped in place, ``changed`` notification) from a real shape/
    attribute change (``removed`` + ``added``, so bindings re-evaluate
    against the new shape).
    """
    return (
        a.translator_id == b.translator_id
        and a.name == b.name
        and a.platform == b.platform
        and a.device_type == b.device_type
        and a.role == b.role
        and a.runtime_id == b.runtime_id
        and a.description == b.description
        and a.attributes == b.attributes
        and a.shape == b.shape
    )
