"""Translators: device-level bridges (Section 3.2).

A translator (1) projects a native device's semantics into the intermediary
semantic space as a shape of typed ports, (2) acts as a proxy for the
device -- traffic to the translator triggers actual native interactions --
and (3) encapsulates all protocol knowledge specific to its device, using
the base-protocol support of its platform's mapper.

Two classes:

- :class:`Translator` -- the base class.  "Native uMiddle devices" (services
  written directly against uMiddle, like the eighteen devices in the Pads
  screenshot of Figure 8) subclass this directly.
- :class:`GenericTranslator` -- the USDL-parameterized translator: given a
  USDL document and a :class:`NativeHandle` from the platform mapper, it
  materializes the document's ports and wires each binding to the native
  device.  This realizes Section 3.4's observation that translator
  implementations can be generic, configured mechanically per device.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.core.errors import InvokeError, PortError, TranslationError
from repro.core.health import CircuitBreaker
from repro.core.messages import UMessage
from repro.core.ports import DigitalInputPort, DigitalOutputPort, PhysicalPort, Port
from repro.core.profile import TranslatorProfile
from repro.core.shapes import Direction, PortSpec, Shape
from repro.core.usdl import UsdlBinding, UsdlDocument
from repro.simnet.kernel import Interrupt, ProcessKilled

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import UMiddleRuntime

__all__ = ["Translator", "NativeHandle", "GenericTranslator"]

_instance_counter = itertools.count(1)


class Translator:
    """Base class for all translators.

    Subclasses declare ports with :meth:`add_digital_input`,
    :meth:`add_digital_output` and :meth:`add_physical` (typically in
    ``__init__``), then the translator is registered with a runtime via
    :meth:`UMiddleRuntime.register_translator`.
    """

    def __init__(
        self,
        name: str,
        platform: str = "umiddle",
        device_type: str = "urn:umiddle:native",
        role: str = "service",
        description: str = "",
        attributes: Optional[Dict[str, Any]] = None,
        translator_id: Optional[str] = None,
    ):
        self.translator_id = translator_id or f"t{next(_instance_counter)}-{name}"
        self.name = name
        self.platform = platform
        self.device_type = device_type
        self.role = role
        self.description = description
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.runtime: Optional["UMiddleRuntime"] = None
        self._ports: Dict[str, Port] = {}

    # -- port declaration ---------------------------------------------------

    def _add_port(self, port: Port) -> Port:
        if port.name in self._ports:
            raise PortError(
                f"translator {self.translator_id!r} already has a port "
                f"named {port.name!r}"
            )
        self._ports[port.name] = port
        return port

    def add_digital_input(
        self, name: str, mime: str, handler: Callable[[UMessage], Any]
    ) -> DigitalInputPort:
        spec = PortSpec.digital(name, Direction.IN, mime)
        return self._add_port(DigitalInputPort(spec, self, handler))

    def add_digital_output(self, name: str, mime: str) -> DigitalOutputPort:
        spec = PortSpec.digital(name, Direction.OUT, mime)
        return self._add_port(DigitalOutputPort(spec, self))

    def add_physical(self, name: str, direction: Direction, tag: str) -> PhysicalPort:
        spec = PortSpec.physical(name, direction, tag)
        return self._add_port(PhysicalPort(spec, self))

    # -- access -------------------------------------------------------------

    def port(self, name: str) -> Port:
        try:
            return self._ports[name]
        except KeyError:
            raise PortError(
                f"translator {self.translator_id!r} has no port {name!r}"
            ) from None

    def input_port(self, name: str) -> DigitalInputPort:
        port = self.port(name)
        if not isinstance(port, DigitalInputPort):
            raise PortError(f"{name!r} is not a digital input port")
        return port

    def output_port(self, name: str) -> DigitalOutputPort:
        port = self.port(name)
        if not isinstance(port, DigitalOutputPort):
            raise PortError(f"{name!r} is not a digital output port")
        return port

    def physical_port(self, name: str) -> PhysicalPort:
        port = self.port(name)
        if not isinstance(port, PhysicalPort):
            raise PortError(f"{name!r} is not a physical port")
        return port

    @property
    def ports(self) -> List[Port]:
        return list(self._ports.values())

    @property
    def shape(self) -> Shape:
        return Shape(p.spec for p in self._ports.values())

    @property
    def profile(self) -> TranslatorProfile:
        if self.runtime is None:
            raise TranslationError(
                f"translator {self.translator_id!r} is not attached to a runtime"
            )
        return TranslatorProfile(
            translator_id=self.translator_id,
            name=self.name,
            platform=self.platform,
            device_type=self.device_type,
            role=self.role,
            runtime_id=self.runtime.runtime_id,
            shape=self.shape,
            description=self.description,
            attributes=dict(self.attributes),
            health=self.runtime.health.health_of(self.translator_id).value,
        )

    # -- structured invocation ------------------------------------------------

    def invoke(
        self, port_name: str, message: UMessage, step: Optional[int] = None
    ) -> Generator:
        """Deliver ``message`` to the digital input ``port_name`` and run
        the handler to completion, as a generator charging the handler's
        simulated costs inline.

        Unlike plain port delivery (fire-and-forget), failures surface as
        a structured :class:`InvokeError` carrying the translator id, the
        optional saga ``step``, the underlying cause and a ``retryable``
        flag (an exception attribute of the same name on the cause, when
        present).  The saga coordinator uses this to decide retry versus
        compensate; any caller gets a stable exception surface instead of
        bare platform exceptions.  Success and failure both feed the
        runtime's health monitor.
        """
        port = self.input_port(port_name)
        runtime = self.runtime
        if runtime is None:
            raise InvokeError(
                self.translator_id, "translator is detached", step=step
            )
        try:
            result = port.deliver(message)
            if hasattr(result, "send") and hasattr(result, "throw"):
                yield from result
        except (Interrupt, ProcessKilled):
            raise
        except InvokeError:
            runtime.health.record_failure(self.translator_id, kind="invoke")
            raise
        except Exception as exc:
            runtime.health.record_failure(self.translator_id, kind="invoke")
            raise InvokeError(
                self.translator_id,
                step=step,
                cause=exc,
                retryable=bool(getattr(exc, "retryable", False)),
            ) from exc
        else:
            runtime.health.record_success(self.translator_id)

    # -- lifecycle -----------------------------------------------------------

    def attach(self, runtime: "UMiddleRuntime") -> None:
        if self.runtime is not None:
            raise TranslationError(
                f"translator {self.translator_id!r} is already attached"
            )
        self.runtime = runtime
        self.on_attached()

    def detach(self) -> None:
        if self.runtime is None:
            return
        self.on_detached()
        self.runtime = None

    def on_attached(self) -> None:
        """Hook: runs after the translator joins a runtime."""

    def on_detached(self) -> None:
        """Hook: runs before the translator leaves its runtime."""


class NativeHandle:
    """The mapper-provided adapter through which a generic translator talks
    to one native device.

    Platform bridges subclass this.  ``invoke`` handles ``action`` and
    ``sink`` bindings and must return a *generator* (run as part of the
    delivering message path, charging native-protocol time); ``subscribe``
    registers a callback for ``event`` and ``source`` bindings -- the
    platform stack calls it with a :class:`UMessage` whenever the native
    device produces data.
    """

    def invoke(
        self, binding: UsdlBinding, message: UMessage
    ) -> Generator:  # pragma: no cover - interface
        raise NotImplementedError

    def subscribe(
        self, binding: UsdlBinding, callback: Callable[[UMessage], None]
    ) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def unsubscribe_all(self) -> None:
        """Hook: stop delivering native events (device unmapped)."""


class GenericTranslator(Translator):
    """A USDL-parameterized translator for one native device.

    Inbound (``action``/``sink``) ports charge uMiddle's device-level
    translation cost and then invoke the native device through the handle;
    outbound (``event``/``source``) ports are fed by the native handle's
    subscriptions through an internal queue so that translation costs are
    charged in this translator's own outbound process (Section 5.2:
    "translating the mouse signal to a VML document ... and passes it to
    the uMiddle's transport module").
    """

    def __init__(
        self,
        document: UsdlDocument,
        native: NativeHandle,
        instance_name: Optional[str] = None,
        extra_attributes: Optional[Dict[str, Any]] = None,
    ):
        attributes: Dict[str, Any] = dict(document.attributes)
        attributes.update(extra_attributes or {})
        super().__init__(
            name=instance_name or document.name,
            platform=document.platform,
            device_type=document.device_type,
            role=document.role,
            description=document.description,
            attributes=attributes,
        )
        self.document = document
        self.native = native
        self._outbound: List = []  # queued (port, message) pairs before attach
        self._outbound_event = None
        self.invoke_failures = 0
        self.short_circuited = 0
        self._invoke_breaker: Optional[CircuitBreaker] = None
        #: port name -> USDL binding for digital inputs, so the structured
        #: :meth:`invoke` surface can reach the native device directly.
        self._input_bindings: Dict[str, UsdlBinding] = {}

        for usdl_port in document.ports:
            if not usdl_port.is_digital:
                self.add_physical(
                    usdl_port.name, usdl_port.direction, str(usdl_port.physical_type)
                )
            elif usdl_port.direction is Direction.IN:
                binding = usdl_port.binding
                if binding is None:
                    raise TranslationError(
                        f"USDL digital input {usdl_port.name!r} has no binding"
                    )
                handler = self._make_input_handler(binding)
                self.add_digital_input(
                    usdl_port.name, usdl_port.digital_type.mime, handler
                )
                self._input_bindings[usdl_port.name] = binding
            else:
                port = self.add_digital_output(
                    usdl_port.name, usdl_port.digital_type.mime
                )
                if usdl_port.binding is not None:
                    self._subscribe_output(port, usdl_port.binding)

    # -- inbound: common space -> native device ----------------------------------

    def _make_input_handler(self, binding: UsdlBinding):
        def handler(message: UMessage) -> Generator:
            return self._inbound(binding, message)

        return handler

    def _inbound(self, binding: UsdlBinding, message: UMessage) -> Generator:
        runtime = self.runtime
        if runtime is None:
            raise TranslationError("message delivered to a detached translator")
        yield from self._charge_translation(binding)
        try:
            yield from self._native_invoke(binding, message)
        except InvokeError:
            # Plain message-path delivery stays fire-and-forget: the
            # failure was recorded (breaker, health, counters) inside
            # _native_invoke and the message is dropped.
            pass

    def _charge_translation(self, binding: UsdlBinding) -> Generator:
        runtime = self.runtime
        costs = runtime.calibration.umiddle
        if binding.kind == "action":
            # Device-level control translation (~10 ms in the paper).
            yield runtime.kernel.timeout(costs.message_translation_s)
        else:  # sink: stream data passes through with only dispatch cost
            yield runtime.kernel.timeout(costs.transport_dispatch_s)

    def _native_invoke(
        self,
        binding: UsdlBinding,
        message: UMessage,
        step: Optional[int] = None,
    ) -> Generator:
        """Run one breaker-guarded native invocation; failures (including
        breaker sheds) raise a structured :class:`InvokeError`."""
        runtime = self.runtime
        breaker = self._invoke_breaker
        if breaker is not None and not breaker.allow():
            # Native endpoint conclusively failing: shed the invocation
            # instead of burning native-protocol time on it.
            self.short_circuited += 1
            runtime.trace(
                "translator.short-circuit",
                f"{self.translator_id}: native invoke shed (breaker open)",
            )
            raise InvokeError(
                self.translator_id,
                "native invoke shed (breaker open)",
                step=step,
                retryable=True,
            )
        try:
            yield from self.native.invoke(binding, message)
        except (Interrupt, ProcessKilled):
            raise
        except Exception as exc:
            self.invoke_failures += 1
            if breaker is not None:
                breaker.record_failure()
            runtime.health.record_failure(self.translator_id, kind="invoke")
            runtime.trace(
                "translator.invoke-failed",
                f"{self.translator_id}: native invoke failed: {exc}",
            )
            raise InvokeError(
                self.translator_id,
                step=step,
                cause=exc,
                retryable=bool(getattr(exc, "retryable", False)),
            ) from exc
        else:
            if breaker is not None:
                breaker.record_success()
            runtime.health.record_success(self.translator_id)

    def invoke(
        self, port_name: str, message: UMessage, step: Optional[int] = None
    ) -> Generator:
        """Structured invocation through the native handle: same breaker
        and translation-cost path as message delivery, but failures
        surface as :class:`InvokeError` instead of being swallowed."""
        binding = self._input_bindings.get(port_name)
        if binding is None:
            yield from super().invoke(port_name, message, step=step)
            return
        if self.runtime is None:
            raise InvokeError(
                self.translator_id, "translator is detached", step=step
            )
        yield from self._charge_translation(binding)
        yield from self._native_invoke(binding, message, step=step)

    # -- outbound: native device -> common space -----------------------------------

    def _subscribe_output(self, port: DigitalOutputPort, binding: UsdlBinding) -> None:
        def on_native(message: UMessage) -> None:
            self._enqueue_outbound(port, binding, message)

        self.native.subscribe(binding, on_native)

    def _enqueue_outbound(
        self, port: DigitalOutputPort, binding: UsdlBinding, message: UMessage
    ) -> None:
        self._outbound.append((port, binding, message))
        if self.runtime is not None and self._outbound_event is not None:
            if not self._outbound_event.triggered:
                self._outbound_event.succeed()

    def on_attached(self) -> None:
        runtime = self.runtime
        if runtime.health.enabled:
            self._invoke_breaker = CircuitBreaker(
                runtime.kernel,
                key=f"invoke:{runtime.runtime_id}/{self.translator_id}",
                failure_threshold=3,
                reopen_base_s=2.0,
                reopen_max_s=30.0,
            )
        pump = runtime.kernel.process(
            self._outbound_pump(), name=f"outbound:{self.translator_id}"
        )
        runtime.supervisor.watch(
            f"outbound:{self.translator_id}", pump, self._respawn_pump
        )

    def _respawn_pump(self):
        if self.runtime is None:
            return None
        return self.runtime.kernel.process(
            self._outbound_pump(), name=f"outbound:{self.translator_id}"
        )

    def on_detached(self) -> None:
        self.native.unsubscribe_all()
        if self._outbound_event is not None and not self._outbound_event.triggered:
            self._outbound_event.succeed()

    def _outbound_pump(self) -> Generator:
        kernel = self.runtime.kernel
        costs = self.runtime.calibration.umiddle
        while self.runtime is not None:
            if not self._outbound:
                self._outbound_event = kernel.event(
                    name=f"outbound-wait:{self.translator_id}"
                )
                yield self._outbound_event
                self._outbound_event = None
                continue
            port, binding, message = self._outbound.pop(0)
            if self.runtime is None:
                return
            if binding.kind == "event":
                # Build the common (VML-like) representation and translate.
                yield kernel.timeout(costs.vml_build_s + costs.message_translation_s)
            else:  # source: stream data, dispatch cost only
                yield kernel.timeout(costs.transport_dispatch_s)
            if self.runtime is None:
                return  # detached while translating: drop silently
            port.send(message)
