"""The uMiddle directory module (Figure 6).

The directory handles the exchange of device advertisements among uMiddle
runtimes: each runtime advertises the profiles of its local translators,
learns the profiles hosted by its peers, and notifies registered
:class:`DirectoryListener` objects when translators appear or disappear --
the discovery mechanism that is independent of the native discovery
protocols used by particular devices (Section 3.2).

Gossip transport: UDP.  Runtimes on the same network segment find each
other via a well-known multicast group; runtimes on different segments are
federated explicitly with :meth:`Directory.federate`.  Advertisements are
periodic full-state announcements plus immediate incremental updates;
remote entries are soft state with a lease, so crashed runtimes age out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.core.errors import DirectoryError
from repro.core.profile import TranslatorProfile
from repro.core.query import Query
from repro.simnet.addresses import Address
from repro.simnet.sockets import ConnectionClosed, DatagramSocket

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import UMiddleRuntime

__all__ = ["DirectoryListener", "RuntimeInfo", "Directory"]

#: Well-known multicast group and port for runtime presence + advertisements.
DIRECTORY_GROUP = "umiddle-directory"
DIRECTORY_PORT = 7701

#: Period between full-state announcements.
ANNOUNCE_INTERVAL = 5.0
#: Remote entries (and runtimes) older than this are expired.
LEASE = 3 * ANNOUNCE_INTERVAL
#: Period of the expiry sweep.
SWEEP_INTERVAL = 1.0


class DirectoryListener:
    """Receives notifications when translators are mapped or unmapped.

    Subclass and override, or use :meth:`from_callbacks`.
    """

    def translator_added(self, profile: TranslatorProfile) -> None:
        """A translator became visible in the semantic space."""

    def translator_removed(self, profile: TranslatorProfile) -> None:
        """A translator left the semantic space."""

    @classmethod
    def from_callbacks(
        cls,
        added: Optional[Callable[[TranslatorProfile], None]] = None,
        removed: Optional[Callable[[TranslatorProfile], None]] = None,
    ) -> "DirectoryListener":
        listener = cls()
        if added is not None:
            listener.translator_added = added  # type: ignore[method-assign]
        if removed is not None:
            listener.translator_removed = removed  # type: ignore[method-assign]
        return listener


@dataclass
class RuntimeInfo:
    """What we know about one uMiddle runtime in the federation."""

    runtime_id: str
    address: Address
    transport_port: int
    directory_port: int
    last_seen: float


@dataclass
class _Entry:
    profile: TranslatorProfile
    local: bool
    last_seen: float


class Directory:
    """One runtime's directory module."""

    def __init__(self, runtime: "UMiddleRuntime", port: int = DIRECTORY_PORT):
        self.runtime = runtime
        self.port = port
        self._entries: Dict[str, _Entry] = {}
        self._listeners: List[DirectoryListener] = []
        self._runtimes: Dict[str, RuntimeInfo] = {}
        self._peers: Dict[Address, int] = {}
        self._socket: Optional[DatagramSocket] = None
        self.announcements_sent = 0
        self.announcements_received = 0
        self.started = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self.started:
            return
        self.started = True
        self._socket = DatagramSocket(
            self.runtime.node, self.runtime.calibration.network, port=self.port
        )
        self._socket.join(DIRECTORY_GROUP, self.port)
        kernel = self.runtime.kernel
        kernel.process(self._receiver(), name=f"dir-recv:{self.runtime.runtime_id}")
        kernel.process(self._announcer(), name=f"dir-announce:{self.runtime.runtime_id}")
        kernel.process(self._sweeper(), name=f"dir-sweep:{self.runtime.runtime_id}")

    def stop(self) -> None:
        """Stop announcing and listening; :meth:`start` may be called again
        (a restarted runtime re-advertises its full local state at once)."""
        self.started = False
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    # -- Figure 6 API ------------------------------------------------------------

    def lookup(self, query: Query) -> List[TranslatorProfile]:
        """Profiles of translators that match ``query`` (Figure 6-1)."""
        return [
            entry.profile
            for entry in self._entries.values()
            if query.matches(entry.profile)
        ]

    def add_directory_listener(self, listener: DirectoryListener) -> None:
        """Register for map/unmap notifications (Figure 6-2)."""
        self._listeners.append(listener)

    def remove_directory_listener(self, listener: DirectoryListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- local registration ---------------------------------------------------------

    def register(self, profile: TranslatorProfile) -> None:
        if profile.translator_id in self._entries:
            raise DirectoryError(f"duplicate translator id {profile.translator_id!r}")
        self._entries[profile.translator_id] = _Entry(
            profile, local=True, last_seen=self.runtime.kernel.now
        )
        self._notify_added(profile)
        if self.started:
            self._announce(profiles=[profile])

    def unregister(self, translator_id: str) -> None:
        entry = self._entries.pop(translator_id, None)
        if entry is None:
            raise DirectoryError(f"unknown translator id {translator_id!r}")
        self._notify_removed(entry.profile)
        if self.started:
            self._announce(removed=[translator_id])

    # -- queries used by other modules ------------------------------------------------

    def profiles(self) -> List[TranslatorProfile]:
        return [entry.profile for entry in self._entries.values()]

    def profile_of(self, translator_id: str) -> Optional[TranslatorProfile]:
        entry = self._entries.get(translator_id)
        return entry.profile if entry else None

    def platform_of(self, translator_id: str) -> Optional[str]:
        profile = self.profile_of(translator_id)
        return profile.platform if profile else None

    def runtime_info(self, runtime_id: str) -> Optional[RuntimeInfo]:
        if runtime_id == self.runtime.runtime_id:
            return RuntimeInfo(
                runtime_id=runtime_id,
                address=self.runtime.node.address,
                transport_port=self.runtime.transport.port,
                directory_port=self.port,
                last_seen=self.runtime.kernel.now,
            )
        return self._runtimes.get(runtime_id)

    def known_runtimes(self) -> List[RuntimeInfo]:
        return list(self._runtimes.values())

    # -- failure handling --------------------------------------------------------------

    def expire_runtime(self, runtime_id: str, reason: str = "unreachable") -> None:
        """Crash-triggered lease reaping: drop a peer and its translators
        *now* instead of waiting for the lease sweeper.

        Called by the transport module once a peer is conclusively
        unreachable (its delivery retry budget is exhausted), so standing
        bindings re-evaluate promptly rather than after a full lease.
        """
        if runtime_id == self.runtime.runtime_id:
            return
        info = self._runtimes.pop(runtime_id, None)
        reaped = 0
        for translator_id, entry in list(self._entries.items()):
            if not entry.local and entry.profile.runtime_id == runtime_id:
                del self._entries[translator_id]
                self._notify_removed(entry.profile)
                reaped += 1
        if info is not None or reaped:
            self.runtime.trace(
                "directory.runtime-expired",
                f"{runtime_id}: {reason} ({reaped} entries reaped)",
                reaped=reaped,
            )

    def forget_remote(self) -> None:
        """Drop every soft-state entry learned from peers (crash semantics:
        a crashed runtime loses its in-memory view of the federation and
        re-learns it from gossip after restart).  Listeners are notified so
        standing bindings unbind their now-unknown remote endpoints."""
        for translator_id, entry in list(self._entries.items()):
            if not entry.local:
                del self._entries[translator_id]
                self._notify_removed(entry.profile)
        self._runtimes.clear()

    # -- federation ------------------------------------------------------------------------

    def federate(self, peer: Address, peer_port: int = DIRECTORY_PORT) -> None:
        """Add an explicit unicast peer (for cross-segment federations) and
        push it our full state immediately."""
        self._peers[peer] = peer_port
        if self.started:
            self._announce(full=True, to=[(peer, peer_port)])

    # -- notification helpers -----------------------------------------------------------------

    def _notify_added(self, profile: TranslatorProfile) -> None:
        self.runtime.trace(
            "directory.added", f"{profile.translator_id} ({profile.name})"
        )
        for listener in list(self._listeners):
            listener.translator_added(profile)

    def _notify_removed(self, profile: TranslatorProfile) -> None:
        self.runtime.trace(
            "directory.removed", f"{profile.translator_id} ({profile.name})"
        )
        for listener in list(self._listeners):
            listener.translator_removed(profile)

    # -- announcements ---------------------------------------------------------------------------

    def _local_profiles(self) -> List[TranslatorProfile]:
        return [e.profile for e in self._entries.values() if e.local]

    def _announcement(self, profiles, removed, full) -> dict:
        return {
            "kind": "umiddle-directory",
            "runtime": {
                "id": self.runtime.runtime_id,
                "address": str(self.runtime.node.address),
                "transport_port": self.runtime.transport.port,
                "directory_port": self.port,
            },
            "full": full,
            "profiles": [p.to_dict() for p in profiles],
            "removed": list(removed),
        }

    def _estimate_size(self, profiles, removed) -> int:
        return (
            96
            + sum(p.estimated_size() for p in profiles)
            + sum(len(r) + 4 for r in removed)
        )

    def _announce(
        self,
        profiles: Optional[List[TranslatorProfile]] = None,
        removed: Optional[List[str]] = None,
        full: bool = False,
        to: Optional[List] = None,
    ) -> None:
        if self._socket is None or self._socket.closed:
            return
        profiles = profiles if profiles is not None else []
        removed = removed or []
        if full:
            profiles = self._local_profiles()
        payload = self._announcement(profiles, removed, full)
        size = self._estimate_size(profiles, removed)
        if to is None:
            self._socket.send_multicast(payload, size, DIRECTORY_GROUP, self.port)
            for peer, port in self._peers.items():
                self._socket.sendto(payload, size, peer, port)
        else:
            for address, port in to:
                self._socket.sendto(payload, size, address, port)
        self.announcements_sent += 1

    def _announcer(self) -> Generator:
        kernel = self.runtime.kernel
        socket = self._socket
        while socket is not None and not socket.closed:
            self._announce(full=True)
            yield kernel.timeout(ANNOUNCE_INTERVAL)

    def _sweeper(self) -> Generator:
        kernel = self.runtime.kernel
        socket = self._socket
        while socket is not None and not socket.closed:
            yield kernel.timeout(SWEEP_INTERVAL)
            deadline = kernel.now - LEASE
            for translator_id, entry in list(self._entries.items()):
                if not entry.local and entry.last_seen < deadline:
                    del self._entries[translator_id]
                    self._notify_removed(entry.profile)
            for runtime_id, info in list(self._runtimes.items()):
                if info.last_seen < deadline:
                    del self._runtimes[runtime_id]
                    self.runtime.trace("directory.runtime-lost", runtime_id)

    # -- receiving ----------------------------------------------------------------------------------

    def _receiver(self) -> Generator:
        kernel = self.runtime.kernel
        per_entry = self.runtime.calibration.umiddle.directory_entry_s
        socket = self._socket
        while socket is not None and not socket.closed:
            try:
                datagram = yield socket.recv()
            except ConnectionClosed:
                return
            payload = datagram.payload
            if not isinstance(payload, dict) or payload.get("kind") != "umiddle-directory":
                continue
            origin = payload["runtime"]
            if origin["id"] == self.runtime.runtime_id:
                continue
            self.announcements_received += 1
            work = len(payload["profiles"]) + len(payload["removed"])
            if work:
                yield kernel.timeout(per_entry * work)
            self._apply_announcement(payload)

    def _apply_announcement(self, payload: dict) -> None:
        now = self.runtime.kernel.now
        origin = payload["runtime"]
        runtime_id = origin["id"]
        address = Address(origin["address"])
        self._runtimes[runtime_id] = RuntimeInfo(
            runtime_id=runtime_id,
            address=address,
            transport_port=origin["transport_port"],
            directory_port=origin["directory_port"],
            last_seen=now,
        )
        self._peers[address] = origin["directory_port"]

        mentioned = set()
        for data in payload["profiles"]:
            profile = TranslatorProfile.from_dict(data)
            mentioned.add(profile.translator_id)
            existing = self._entries.get(profile.translator_id)
            if existing is None:
                self._entries[profile.translator_id] = _Entry(
                    profile, local=False, last_seen=now
                )
                self._notify_added(profile)
            elif not existing.local:
                existing.profile = profile
                existing.last_seen = now

        for translator_id in payload["removed"]:
            entry = self._entries.get(translator_id)
            if entry is not None and not entry.local:
                del self._entries[translator_id]
                self._notify_removed(entry.profile)

        if payload["full"]:
            # Entries claimed by this runtime but absent from its full state
            # are gone.
            for translator_id, entry in list(self._entries.items()):
                if (
                    not entry.local
                    and entry.profile.runtime_id == runtime_id
                    and translator_id not in mentioned
                ):
                    del self._entries[translator_id]
                    self._notify_removed(entry.profile)
