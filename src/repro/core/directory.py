"""The uMiddle directory module (Figure 6).

The directory handles the exchange of device advertisements among uMiddle
runtimes: each runtime advertises the profiles of its local translators,
learns the profiles hosted by its peers, and notifies registered
:class:`DirectoryListener` objects when translators appear or disappear --
the discovery mechanism that is independent of the native discovery
protocols used by particular devices (Section 3.2).

Gossip transport: UDP.  Runtimes on the same network segment find each
other via a well-known multicast group; runtimes on different segments are
federated explicitly with :meth:`Directory.federate`.

Discovery hot path (beyond the paper, for federation scale):

- **Inverted index.**  Every entry is indexed under its coarse (axis,
  value) keys -- platform, device type, role, and each port type expanded
  to all wildcard patterns it satisfies (see
  :meth:`TranslatorProfile.index_keys`).  :meth:`lookup` intersects the
  buckets for the query's keys and runs :meth:`Query.matches` only on the
  candidate set, instead of scanning every entry.
- **Standing-query subscriptions.**  :meth:`subscribe_query` registers a
  listener under one of its query's coarse keys, so added/removed events
  are routed only to subscribers whose key appears in the profile's key
  set -- O(affected) instead of O(listeners) per event.
- **Delta/digest gossip.**  Immediate incremental (versioned) updates on
  register/unregister; the periodic announcement is a constant-size
  heartbeat carrying a digest of the sender's full local state.  A
  receiver whose recorded digest matches skips all parsing; on mismatch
  (or a version gap in the delta stream) it requests a full state
  transfer.  Remote entries are soft state with a lease, refreshed by the
  owner runtime's heartbeats, so crashed runtimes age out.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from repro.core.codec import BinaryFrame, CodecError, decode_gossip, encode_gossip
from repro.core.errors import DirectoryError
from repro.core.profile import TranslatorProfile, same_except_health
from repro.core.query import Query
from repro.simnet.addresses import Address
from repro.simnet.sockets import ConnectionClosed, DatagramSocket

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import UMiddleRuntime

__all__ = ["DirectoryListener", "RuntimeInfo", "Directory"]

#: Well-known multicast group and port for runtime presence + advertisements.
DIRECTORY_GROUP = "umiddle-directory"
DIRECTORY_PORT = 7701

#: Period between announcements (heartbeats after the initial full state).
ANNOUNCE_INTERVAL = 5.0
#: Remote entries (and runtimes) older than this are expired.
LEASE = 3 * ANNOUNCE_INTERVAL
#: Period of the expiry sweep.
SWEEP_INTERVAL = 1.0

#: Wire size of a constant-size control datagram (heartbeat header,
#: version + digest, full-state request).
CONTROL_OVERHEAD = 144

_IndexKey = Tuple[str, str]


class DirectoryListener:
    """Receives notifications when translators are mapped or unmapped.

    Subclass and override, or use :meth:`from_callbacks`.
    """

    def translator_added(self, profile: TranslatorProfile) -> None:
        """A translator became visible in the semantic space."""

    def translator_removed(self, profile: TranslatorProfile) -> None:
        """A translator left the semantic space."""

    def translator_changed(
        self, profile: TranslatorProfile, previous: TranslatorProfile
    ) -> None:
        """A translator's advertised *health* changed in place.

        Identity, shape and attributes are unchanged (real profile changes
        fire removed + added instead), so most listeners can ignore this;
        failover bindings re-evaluate their target choice.
        """

    @classmethod
    def from_callbacks(
        cls,
        added: Optional[Callable[[TranslatorProfile], None]] = None,
        removed: Optional[Callable[[TranslatorProfile], None]] = None,
        changed: Optional[
            Callable[[TranslatorProfile, TranslatorProfile], None]
        ] = None,
    ) -> "DirectoryListener":
        listener = cls()
        if added is not None:
            listener.translator_added = added  # type: ignore[method-assign]
        if removed is not None:
            listener.translator_removed = removed  # type: ignore[method-assign]
        if changed is not None:
            listener.translator_changed = changed  # type: ignore[method-assign]
        return listener


@dataclass
class RuntimeInfo:
    """What we know about one uMiddle runtime in the federation."""

    runtime_id: str
    address: Address
    transport_port: int
    directory_port: int
    last_seen: float


@dataclass
class _Entry:
    profile: TranslatorProfile
    local: bool
    last_seen: float
    seq: int = 0


@dataclass
class _PeerState:
    """Last-applied gossip state for one peer runtime (digest bookkeeping)."""

    version: int
    digest: Optional[str]


class _QuerySubscription:
    """One standing query routed through the subscription index."""

    __slots__ = ("query", "listener", "route_key", "seq")

    def __init__(
        self,
        query: Query,
        listener: DirectoryListener,
        route_key: Optional[_IndexKey],
        seq: int,
    ):
        self.query = query
        self.listener = listener
        self.route_key = route_key
        self.seq = seq


class Directory:
    """One runtime's directory module."""

    def __init__(self, runtime: "UMiddleRuntime", port: int = DIRECTORY_PORT):
        self.runtime = runtime
        self.port = port
        self._entries: Dict[str, _Entry] = {}
        self._entry_seq = 0
        #: entries whose profile carries a non-healthy state; lookup's fast
        #: path skips health ordering entirely while this is zero (and no
        #: peer overlay is active).
        self._unhealthy_entries = 0
        #: inverted discovery index: coarse key -> translator ids.
        self._index: Dict[_IndexKey, Set[str]] = {}
        #: remote translator ids grouped by owning runtime.
        self._by_runtime: Dict[str, Set[str]] = {}
        self._listeners: List[DirectoryListener] = []
        #: standing-query subscriptions, bucketed by one routing key each
        #: (None = not coarsely indexable, receives every event).
        self._subscriptions: Dict[Optional[_IndexKey], List[_QuerySubscription]] = {}
        self._subscribed: Dict[DirectoryListener, _QuerySubscription] = {}
        self._sub_seq = 0
        self._runtimes: Dict[str, RuntimeInfo] = {}
        self._peers: Dict[Address, int] = {}
        #: addresses added via explicit federate(); never auto-expired.
        self._federated: Set[Address] = set()
        self._peer_states: Dict[str, _PeerState] = {}
        self._version = 0
        self._digest_cache: Optional[str] = None
        self._socket: Optional[DatagramSocket] = None
        self.announcements_sent = 0
        self.announcements_received = 0
        self.full_requests_sent = 0
        self.full_requests_received = 0
        self.codec_frames_sent = 0
        self.codec_fallbacks = 0
        self.started = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self.started:
            return
        self.started = True
        self._socket = DatagramSocket(
            self.runtime.node, self.runtime.calibration.network, port=self.port
        )
        self._socket.join(DIRECTORY_GROUP, self.port)
        kernel = self.runtime.kernel
        kernel.process(self._receiver(), name=f"dir-recv:{self.runtime.runtime_id}")
        kernel.process(self._announcer(), name=f"dir-announce:{self.runtime.runtime_id}")
        kernel.process(self._sweeper(), name=f"dir-sweep:{self.runtime.runtime_id}")

    def stop(self) -> None:
        """Stop announcing and listening; :meth:`start` may be called again
        (a restarted runtime re-advertises its full local state at once)."""
        self.started = False
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    # -- Figure 6 API ------------------------------------------------------------

    def lookup(self, query: Query) -> List[TranslatorProfile]:
        """Profiles of translators that match ``query`` (Figure 6-1).

        Sub-linear for any query with at least one coarse criterion: the
        index buckets for the query's keys are intersected and
        :meth:`Query.matches` runs only on the candidates.  Queries with no
        indexable criterion (empty, or name/attributes only) fall back to
        the linear scan.

        With sharding active the flat replica does not exist; the lookup
        is routed to the owning shard(s) by the
        :class:`~repro.core.shard.ShardRouter` (which overlays this
        directory's local view on the routed result).
        """
        router = self.runtime.shards
        if router.enabled and router.active:
            return router.lookup(query)
        return self.lookup_local(query)

    def lookup_local(self, query: Query) -> List[TranslatorProfile]:
        """The indexed lookup over this directory's own entry table only
        (local translators plus whatever gossip/interest deltas fed it) --
        the non-routed path, and the local overlay under sharding."""
        keys = query.index_keys()
        if not keys:
            return self.lookup_linear(query)
        buckets = []
        for key in keys:
            bucket = self._index.get(key)
            if not bucket:
                return []
            buckets.append(bucket)
        buckets.sort(key=len)
        candidates = buckets[0]
        for other in buckets[1:]:
            candidates = candidates & other
            if not candidates:
                return []
        matched = [
            entry
            for entry in (self._entries[tid] for tid in candidates)
            if query.matches(entry.profile)
        ]
        return self._order_matches(matched, query)

    def lookup_linear(self, query: Query) -> List[TranslatorProfile]:
        """Reference O(entries) scan -- the pre-index semantics, kept as
        the oracle for equivalence tests and the benchmark baseline."""
        matched = [
            entry
            for entry in self._entries.values()
            if query.matches(entry.profile)
        ]
        return self._order_matches(matched, query)

    def _order_matches(
        self, matched: List[_Entry], query: Query
    ) -> List[TranslatorProfile]:
        """Health-aware result ordering, shared by both lookup paths.

        Fast path: with health disabled, or when every entry is healthy
        and no peer overlay is active, this is exactly the pre-health
        registration-order sort -- no per-entry health work at all, which
        is what keeps indexed lookup within its PR 2 latency budget.
        Otherwise results are ordered healthy-first (then registration
        order) and quarantined translators are excluded unless the query
        opts in with ``include_quarantined``.
        """
        monitor = self.runtime.health
        if not monitor.enabled or (
            self._unhealthy_entries == 0 and not monitor.overlay_active
        ):
            matched.sort(key=lambda entry: entry.seq)
            return [entry.profile for entry in matched]
        decorated = []
        for entry in matched:
            rank = monitor.effective_rank(entry.profile)
            if rank >= 2 and not query.include_quarantined:
                continue
            decorated.append((rank, entry.seq, entry.profile))
        decorated.sort(key=lambda item: (item[0], item[1]))
        return [profile for _rank, _seq, profile in decorated]

    def add_directory_listener(self, listener: DirectoryListener) -> None:
        """Register for every map/unmap notification (Figure 6-2)."""
        self._listeners.append(listener)

    def remove_directory_listener(self, listener: DirectoryListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def subscribe_query(self, query: Query, listener: DirectoryListener) -> None:
        """Register a standing query: ``listener`` receives added/removed
        events only for profiles that carry one of the query's coarse keys
        (a superset of the exact matches -- callers still run
        :meth:`Query.matches`)."""
        if listener in self._subscribed:
            return
        keys = query.index_keys()
        route_key = keys[0] if keys else None
        self._sub_seq += 1
        subscription = _QuerySubscription(query, listener, route_key, self._sub_seq)
        self._subscribed[listener] = subscription
        self._subscriptions.setdefault(route_key, []).append(subscription)
        # Under sharding, events for this key originate at the key's owner:
        # register our interest there so its deltas reach this directory.
        self.runtime.shards.subscribe_routed(route_key)

    def unsubscribe_query(self, listener: DirectoryListener) -> None:
        subscription = self._subscribed.pop(listener, None)
        if subscription is None:
            return
        bucket = self._subscriptions.get(subscription.route_key)
        if bucket is not None:
            bucket.remove(subscription)
            if not bucket:
                del self._subscriptions[subscription.route_key]
        self.runtime.shards.unsubscribe_routed(subscription.route_key)

    # -- local registration ---------------------------------------------------------

    @property
    def _sharded(self) -> bool:
        """True while the runtime's shard router is routing this directory:
        profile gossip is suppressed (placement and interest deltas carry
        the state instead) and lookups are routed."""
        router = self.runtime.shards
        return router.enabled and router.active

    def register(self, profile: TranslatorProfile) -> None:
        if profile.translator_id in self._entries:
            raise DirectoryError(f"duplicate translator id {profile.translator_id!r}")
        self._store_entry(profile, local=True, now=self.runtime.kernel.now)
        self._bump_version()
        self._notify_added(profile)
        if self._sharded:
            self.runtime.shards.local_registered(profile)
        elif self.started:
            self._announce(profiles=[profile])

    def unregister(self, translator_id: str) -> None:
        entry = self._drop_entry(translator_id)
        if entry is None:
            raise DirectoryError(f"unknown translator id {translator_id!r}")
        self._bump_version()
        self._notify_removed(entry.profile)
        if self._sharded:
            self.runtime.shards.local_unregistered(entry.profile)
        elif self.started:
            self._announce(removed=[translator_id])

    def update_local_health(self, translator_id: str, health: str) -> None:
        """Re-advertise a local translator with a new health state.

        The entry is swapped in place (health is not indexed), listeners
        and standing queries get a ``changed`` notification, and the
        change is gossiped as a delta carrying the profile in the
        announcement's ``changed`` list -- receivers swap in place too
        instead of tearing the entry down and re-adding it.
        """
        entry = self._entries.get(translator_id)
        if entry is None or not entry.local:
            return
        old = entry.profile
        if old.health == health:
            return
        new = old.with_health(health)
        self._swap_profile(entry, new)
        self._bump_version()
        self._notify_changed(new, old)
        if self._sharded:
            # Re-place with the new health: owners swap in place and stream
            # the change to interested subscribers.
            self.runtime.shards.local_registered(new)
        elif self.started:
            self._announce(changed=[new])

    # -- cold restart (journal recovery) -----------------------------------------------

    def discard_local(self) -> None:
        """``crash(lose_state=True)`` semantics: even the entries for local
        translators die with the process (they are in-memory state, unlike
        the translator objects, which model on-disk configuration).
        Silent -- in-memory listeners die with the same crash."""
        for translator_id, entry in list(self._entries.items()):
            if entry.local:
                self._drop_entry(translator_id)
        self._bump_version()

    def recover_local(self, profile: TranslatorProfile) -> None:
        """Re-admit one journaled local translator during cold recovery.

        Silent: no listener notifications (standing queries are re-opened
        *after* the directory is rebuilt and do their own initial lookup)
        and no per-entry announcements (the post-recovery
        :meth:`start` announces the full local state once)."""
        if profile.translator_id in self._entries:
            return
        self._store_entry(profile, local=True, now=self.runtime.kernel.now)
        self._bump_version()

    # -- queries used by other modules ------------------------------------------------

    def profiles(self) -> List[TranslatorProfile]:
        return [entry.profile for entry in self._entries.values()]

    def profile_of(self, translator_id: str) -> Optional[TranslatorProfile]:
        entry = self._entries.get(translator_id)
        return entry.profile if entry else None

    def platform_of(self, translator_id: str) -> Optional[str]:
        profile = self.profile_of(translator_id)
        return profile.platform if profile else None

    def runtime_info(self, runtime_id: str) -> Optional[RuntimeInfo]:
        if runtime_id == self.runtime.runtime_id:
            return RuntimeInfo(
                runtime_id=runtime_id,
                address=self.runtime.node.address,
                transport_port=self.runtime.transport.port,
                directory_port=self.port,
                last_seen=self.runtime.kernel.now,
            )
        return self._runtimes.get(runtime_id)

    def known_runtimes(self) -> List[RuntimeInfo]:
        return list(self._runtimes.values())

    # -- entry + index maintenance ------------------------------------------------------

    def _store_entry(
        self, profile: TranslatorProfile, local: bool, now: float
    ) -> _Entry:
        self._entry_seq += 1
        entry = _Entry(profile, local=local, last_seen=now, seq=self._entry_seq)
        self._entries[profile.translator_id] = entry
        if profile.health != "healthy":
            self._unhealthy_entries += 1
        for key in profile.index_keys():
            self._index.setdefault(key, set()).add(profile.translator_id)
        if not local:
            self._by_runtime.setdefault(profile.runtime_id, set()).add(
                profile.translator_id
            )
        return entry

    def _store_entries_bulk(
        self, profiles: List[TranslatorProfile], now: float
    ) -> None:
        """Admit a batch of brand-new remote entries with index inserts
        amortized per key: ids accumulate per coarse key across the whole
        batch and land in each bucket with one ``set.update`` -- the
        full-state-apply path's replacement for per-profile
        :meth:`_store_entry` calls."""
        per_key: Dict[_IndexKey, List[str]] = {}
        for profile in profiles:
            self._entry_seq += 1
            self._entries[profile.translator_id] = _Entry(
                profile, local=False, last_seen=now, seq=self._entry_seq
            )
            if profile.health != "healthy":
                self._unhealthy_entries += 1
            for key in profile.index_keys():
                per_key.setdefault(key, []).append(profile.translator_id)
            self._by_runtime.setdefault(profile.runtime_id, set()).add(
                profile.translator_id
            )
        for key, ids in per_key.items():
            bucket = self._index.get(key)
            if bucket is None:
                self._index[key] = set(ids)
            else:
                bucket.update(ids)

    def _drop_entry(self, translator_id: str) -> Optional[_Entry]:
        entry = self._entries.pop(translator_id, None)
        if entry is None:
            return None
        if entry.profile.health != "healthy":
            self._unhealthy_entries -= 1
        for key in entry.profile.index_keys():
            bucket = self._index.get(key)
            if bucket is not None:
                bucket.discard(translator_id)
                if not bucket:
                    del self._index[key]
        if not entry.local:
            owned = self._by_runtime.get(entry.profile.runtime_id)
            if owned is not None:
                owned.discard(translator_id)
                if not owned:
                    del self._by_runtime[entry.profile.runtime_id]
        return entry

    def check_index_consistency(self) -> Dict[str, dict]:
        """Verify the inverted index, per-runtime grouping and unhealthy
        counter exactly mirror ``_entries`` (used by tests after churn).

        Raises :class:`DirectoryError` on divergence -- a real exception,
        not ``assert``, so the invariant survives ``python -O``.  The
        raised error carries a structured ``diff`` attribute (also the
        return value when consistent: an empty dict) mapping each diverged
        aspect to the exact keys and ids involved::

            {"index": {(axis, value): {"missing": [...], "spurious": [...]}},
             "by_runtime": {runtime_id: {"missing": [...], "spurious": [...]}},
             "unhealthy": {"expected": n, "recorded": m}}
        """
        expected_index: Dict[_IndexKey, Set[str]] = {}
        expected_by_runtime: Dict[str, Set[str]] = {}
        for translator_id, entry in self._entries.items():
            for key in entry.profile.index_keys():
                expected_index.setdefault(key, set()).add(translator_id)
            if not entry.local:
                expected_by_runtime.setdefault(entry.profile.runtime_id, set()).add(
                    translator_id
                )
        diff: Dict[str, dict] = {}
        if expected_index != self._index:
            diff["index"] = self._divergent_keys(expected_index, self._index)
        if expected_by_runtime != self._by_runtime:
            diff["by_runtime"] = self._divergent_keys(
                expected_by_runtime, self._by_runtime
            )
        unhealthy = sum(
            1
            for entry in self._entries.values()
            if entry.profile.health != "healthy"
        )
        if unhealthy != self._unhealthy_entries:
            diff["unhealthy"] = {
                "expected": unhealthy,
                "recorded": self._unhealthy_entries,
            }
        if diff:
            summary = ", ".join(
                f"{aspect}: {len(detail)} divergent key(s)"
                if aspect != "unhealthy"
                else f"unhealthy counter {detail['recorded']} != {detail['expected']}"
                for aspect, detail in diff.items()
            )
            error = DirectoryError(
                f"directory index diverged from entries ({summary})"
            )
            error.diff = diff
            raise error
        return diff

    @staticmethod
    def _divergent_keys(expected: Dict, actual: Dict) -> Dict:
        """Per-key missing/spurious ids for two key->set-of-ids mappings,
        restricted to the keys that actually differ."""
        divergent = {}
        for key in set(expected) | set(actual):
            want = expected.get(key, set())
            have = actual.get(key, set())
            if want != have:
                divergent[key] = {
                    "missing": sorted(want - have),
                    "spurious": sorted(have - want),
                }
        return divergent

    def _swap_profile(self, entry: _Entry, profile: TranslatorProfile) -> None:
        """Replace an entry's profile in place for a health-only change.

        ``same_except_health`` profiles share identical index keys and
        runtime id, so neither the inverted index nor the per-runtime
        grouping moves; only the unhealthy counter is adjusted.  The
        entry's seq is preserved -- health changes must not reshuffle
        registration order (recovered translators win back their place).
        """
        was = entry.profile.health != "healthy"
        now_unhealthy = profile.health != "healthy"
        self._unhealthy_entries += int(now_unhealthy) - int(was)
        entry.profile = profile

    # -- failure handling --------------------------------------------------------------

    def expire_runtime(self, runtime_id: str, reason: str = "unreachable") -> None:
        """Crash-triggered lease reaping: drop a peer and its translators
        *now* instead of waiting for the lease sweeper.

        Called by the transport module once a peer is conclusively
        unreachable (its delivery retry budget is exhausted), so standing
        bindings re-evaluate promptly rather than after a full lease.
        """
        if runtime_id == self.runtime.runtime_id:
            return
        info = self._runtimes.pop(runtime_id, None)
        self._forget_peer_state(runtime_id, info)
        reaped = 0
        for translator_id in list(self._by_runtime.get(runtime_id, ())):
            entry = self._drop_entry(translator_id)
            if entry is not None:
                self._notify_removed(entry.profile)
                reaped += 1
        if info is not None or reaped:
            self.runtime.trace(
                "directory.runtime-expired",
                f"{runtime_id}: {reason} ({reaped} entries reaped)",
                reaped=reaped,
            )
            self.runtime.health.note_runtime_expired(runtime_id)
            self.runtime.shards.origin_lost(runtime_id)
            self.runtime.shards.membership_changed()

    def forget_remote(self) -> None:
        """Drop every soft-state entry learned from peers (crash semantics:
        a crashed runtime loses its in-memory view of the federation and
        re-learns it from gossip after restart).  Listeners are notified so
        standing bindings unbind their now-unknown remote endpoints.
        Explicitly federated peer addresses survive -- they are
        configuration, like local translators."""
        for translator_id, entry in list(self._entries.items()):
            if not entry.local:
                self._drop_entry(translator_id)
                self._notify_removed(entry.profile)
        self._runtimes.clear()
        self._peer_states.clear()
        self._peers = {
            address: port
            for address, port in self._peers.items()
            if address in self._federated
        }

    def _forget_peer_state(
        self, runtime_id: str, info: Optional[RuntimeInfo]
    ) -> None:
        """Drop the gossip bookkeeping for a dead peer: its digest record
        (so a later heartbeat cannot false-match against purged state) and
        its learned unicast address (so announcements stop chasing it)."""
        self._peer_states.pop(runtime_id, None)
        if info is not None and info.address not in self._federated:
            self._peers.pop(info.address, None)

    # -- federation ------------------------------------------------------------------------

    def federate(self, peer: Address, peer_port: int = DIRECTORY_PORT) -> None:
        """Add an explicit unicast peer (for cross-segment federations) and
        push it our full state immediately."""
        self._peers[peer] = peer_port
        self._federated.add(peer)
        if self.started:
            self._announce(full=True, to=[(peer, peer_port)])

    # -- notification helpers -----------------------------------------------------------------

    def _subscribers_for(
        self, profile: TranslatorProfile
    ) -> List[_QuerySubscription]:
        if not self._subscriptions:
            return []
        targets = list(self._subscriptions.get(None, ()))
        for key in profile.index_keys():
            bucket = self._subscriptions.get(key)
            if bucket:
                targets.extend(bucket)
        targets.sort(key=lambda subscription: subscription.seq)
        return targets

    def _notify_added(self, profile: TranslatorProfile) -> None:
        if self.runtime.tracing:
            self.runtime.trace(
                "directory.added", f"{profile.translator_id} ({profile.name})"
            )
        for listener in list(self._listeners):
            listener.translator_added(profile)
        for subscription in self._subscribers_for(profile):
            subscription.listener.translator_added(profile)

    def _notify_removed(self, profile: TranslatorProfile) -> None:
        if self.runtime.tracing:
            self.runtime.trace(
                "directory.removed", f"{profile.translator_id} ({profile.name})"
            )
        for listener in list(self._listeners):
            listener.translator_removed(profile)
        for subscription in self._subscribers_for(profile):
            subscription.listener.translator_removed(profile)

    def _notify_changed(
        self, profile: TranslatorProfile, previous: TranslatorProfile
    ) -> None:
        if self.runtime.tracing:
            self.runtime.trace(
                "directory.changed",
                f"{profile.translator_id} health={profile.health}",
            )
        for listener in list(self._listeners):
            listener.translator_changed(profile, previous)
        for subscription in self._subscribers_for(profile):
            subscription.listener.translator_changed(profile, previous)

    # -- announcements ---------------------------------------------------------------------------

    def _local_profiles(self) -> List[TranslatorProfile]:
        return [e.profile for e in self._entries.values() if e.local]

    def _bump_version(self) -> None:
        self._version += 1
        self._digest_cache = None

    def state_digest(self) -> str:
        """Digest of the full local state (the translators we own)."""
        if self._sharded:
            # Profiles never ride announcements under sharding (placement
            # and interest deltas carry them), so the digest handshake has
            # nothing to compare: a constant keeps heartbeat receivers from
            # pulling full transfers forever.
            return "sharded"
        if self._digest_cache is None:
            hasher = hashlib.sha1()
            for translator_id, entry in sorted(self._entries.items()):
                if entry.local:
                    hasher.update(translator_id.encode("utf-8"))
                    hasher.update(b"\x00")
                    hasher.update(entry.profile.wire_digest.encode("ascii"))
                    hasher.update(b"\n")
            self._digest_cache = hasher.hexdigest()
        return self._digest_cache

    def _origin_block(self) -> dict:
        return {
            "id": self.runtime.runtime_id,
            "address": str(self.runtime.node.address),
            "transport_port": self.runtime.transport.port,
            "directory_port": self.port,
        }

    def _announcement(
        self, profiles, removed, full, heartbeat, changed=()
    ) -> dict:
        payload = {
            "kind": "umiddle-directory",
            "runtime": self._origin_block(),
            "full": full,
            "heartbeat": heartbeat,
            "version": self._version,
            "digest": self.state_digest(),
            "profiles": [p.to_dict() for p in profiles],
            # Sender-cached content digests, parallel to "profiles": the
            # receiver's from_dict interns by digest without recomputing
            # canonical JSON + SHA-1 per profile (the cold-apply hotspot).
            "digests": [p.wire_digest for p in profiles],
            "removed": list(removed),
        }
        if changed:
            # Health-only delta: receivers swap the entry in place and fire
            # `changed` instead of removed + added.
            payload["changed"] = [p.to_dict() for p in changed]
        load = self.runtime.shards.load_report()
        if load:
            # Load-weighted placement: piggyback this owner's quantized
            # per-shard load tiers on the announcements it already sends.
            # Absent unless weighting is active *and* some shard is above
            # baseline, so default-off announcements are byte-identical.
            payload["shard_load"] = load
        return payload

    def _estimate_size(self, profiles, removed, changed=()) -> int:
        return (
            CONTROL_OVERHEAD
            + sum(p.estimated_size() for p in profiles)
            + sum(p.estimated_size() for p in changed)
            + sum(len(r) + 4 for r in removed)
        )

    def _announce(
        self,
        profiles: Optional[List[TranslatorProfile]] = None,
        removed: Optional[List[str]] = None,
        full: bool = False,
        heartbeat: bool = False,
        to: Optional[List] = None,
        changed: Optional[List[TranslatorProfile]] = None,
        compress_for: Optional[str] = None,
    ) -> None:
        if self._socket is None or self._socket.closed:
            return
        profiles = profiles if profiles is not None else []
        removed = removed or []
        changed = changed or []
        if self._sharded:
            # Announcements shrink to membership heartbeats: presence,
            # addresses and lease refresh stay global, profile state moves
            # only through shard placement and interest-scoped deltas.  The
            # ``full`` flag still rides so the digest handshake settles
            # (the constant "sharded" digest then suppresses re-pulls).
            profiles = []
            removed = []
            changed = []
        elif full:
            profiles = self._local_profiles()
        payload = self._announcement(profiles, removed, full, heartbeat, changed)
        if self.runtime.codec_enabled:
            # Self-contained binary body: datagrams carry their own symbol
            # table, so every receiver (multicast included) can decode it
            # without negotiation.  The charged size is the actual frame --
            # codec-honest bandwidth modeling, not the JSON estimate.
            # ``compress_for`` names the single unicast target of a bulk
            # transfer (full-state pull reply / newcomer push): when that
            # peer negotiated the z capability the body ships
            # zlib-compressed.  Multicast is never compressed -- receivers
            # that did not negotiate z could not decode the frame kind.
            compress = bool(
                compress_for
                and self.runtime.transport.compression_ready(compress_for)
            )
            try:
                frame = encode_gossip(payload, compress=compress)
            except TypeError:
                self.codec_fallbacks += 1
                self.runtime.trace(
                    "codec.fallback",
                    "announcement body not binary-encodable; sending JSON",
                )
                size = self._estimate_size(profiles, removed, changed)
            else:
                payload = frame
                size = frame.wire_size
                self.codec_frames_sent += 1
        else:
            size = self._estimate_size(profiles, removed, changed)
        if to is None:
            self._socket.send_multicast(payload, size, DIRECTORY_GROUP, self.port)
            for peer, port in self._peers.items():
                self._socket.sendto(payload, size, peer, port)
        else:
            for address, port in to:
                self._socket.sendto(payload, size, address, port)
        self.announcements_sent += 1

    def _request_full_state(self, address: Address, port: int) -> None:
        if self._socket is None or self._socket.closed:
            return
        payload = {"kind": "umiddle-directory-request", "runtime": self._origin_block()}
        self._socket.sendto(payload, CONTROL_OVERHEAD, address, port)
        self.full_requests_sent += 1

    def _announcer(self) -> Generator:
        kernel = self.runtime.kernel
        socket = self._socket
        first = True
        while socket is not None and not socket.closed:
            # Full state once on (re)start, then constant-size heartbeats;
            # receivers pull a full transfer only on digest mismatch.
            self._announce(full=first, heartbeat=not first)
            first = False
            yield kernel.timeout(ANNOUNCE_INTERVAL)

    def _sweeper(self) -> Generator:
        kernel = self.runtime.kernel
        socket = self._socket
        while socket is not None and not socket.closed:
            yield kernel.timeout(SWEEP_INTERVAL)
            deadline = kernel.now - LEASE
            lost_any = False
            for runtime_id, info in list(self._runtimes.items()):
                if info.last_seen < deadline:
                    del self._runtimes[runtime_id]
                    self._forget_peer_state(runtime_id, info)
                    self.runtime.trace("directory.runtime-lost", runtime_id)
                    self.runtime.health.note_runtime_expired(runtime_id)
                    self.runtime.shards.origin_lost(runtime_id)
                    lost_any = True
            if lost_any:
                self.runtime.shards.membership_changed()
            self.runtime.shards.sweep()
            for translator_id, entry in list(self._entries.items()):
                if entry.local:
                    continue
                # A heartbeat refreshes the owner runtime's lease in O(1);
                # its entries inherit that freshness here.
                info = self._runtimes.get(entry.profile.runtime_id)
                last = entry.last_seen if info is None else max(
                    entry.last_seen, info.last_seen
                )
                if last < deadline:
                    self._drop_entry(translator_id)
                    self._notify_removed(entry.profile)

    # -- receiving ----------------------------------------------------------------------------------

    def _receiver(self) -> Generator:
        kernel = self.runtime.kernel
        per_entry = self.runtime.calibration.umiddle.directory_entry_s
        socket = self._socket
        while socket is not None and not socket.closed:
            try:
                datagram = yield socket.recv()
            except ConnectionClosed:
                return
            payload = datagram.payload
            if isinstance(payload, BinaryFrame):
                # Decode capability is unconditional: a JSON-era receiver
                # build never sees binary datagrams, but a codec-capable
                # build must accept them whether or not its own sending
                # side has the flag on.
                try:
                    payload = decode_gossip(payload)
                except CodecError as exc:
                    self.runtime.trace(
                        "directory.protocol-error",
                        f"undecodable binary announcement: {exc}",
                    )
                    continue
            if not isinstance(payload, dict):
                continue
            kind = payload.get("kind")
            if kind == "umiddle-directory-request":
                origin = payload.get("runtime")
                if origin and origin["id"] != self.runtime.runtime_id:
                    self.full_requests_received += 1
                    self._announce(
                        full=True,
                        to=[(Address(origin["address"]), origin["directory_port"])],
                        compress_for=origin["id"],
                    )
                continue
            if isinstance(kind, str) and kind.startswith("umiddle-shard-"):
                work = len(payload.get("profiles", ())) + len(
                    payload.get("removed", ())
                )
                if work:
                    yield kernel.timeout(per_entry * work)
                self.runtime.shards.handle(payload)
                continue
            if kind != "umiddle-directory":
                continue
            origin = payload["runtime"]
            if origin["id"] == self.runtime.runtime_id:
                continue
            self.announcements_received += 1
            work = (
                len(payload["profiles"])
                + len(payload["removed"])
                + len(payload.get("changed", ()))
            )
            if work:
                yield kernel.timeout(per_entry * work)
            self._apply_announcement(payload)

    def _apply_announcement(self, payload: dict) -> None:
        now = self.runtime.kernel.now
        origin = payload["runtime"]
        runtime_id = origin["id"]
        address = Address(origin["address"])
        directory_port = origin["directory_port"]
        newcomer = runtime_id not in self._runtimes
        self._runtimes[runtime_id] = RuntimeInfo(
            runtime_id=runtime_id,
            address=address,
            transport_port=origin["transport_port"],
            directory_port=directory_port,
            last_seen=now,
        )
        self._peers[address] = directory_port
        # Evidence the peer is up: clear delivery-failure degradation and
        # move any open transport breaker for it to probe-eligible, so
        # rebinding after a restart is not held hostage by reopen backoff.
        self.runtime.health.peer_alive(runtime_id)
        self.runtime.transport.peer_seen(runtime_id)

        version = payload.get("version")
        digest = payload.get("digest")
        peer = self._peer_states.get(runtime_id)

        if payload.get("heartbeat"):
            # Lease refresh is the runtime-info update above (the sweeper
            # consults owner liveness); state only moves on mismatch.
            if peer is None or digest is None or peer.digest != digest:
                self._request_full_state(address, directory_port)
        elif payload["full"]:
            if peer is not None and digest is not None and peer.digest == digest:
                if version is not None:
                    peer.version = version  # duplicate copy: state identical
            else:
                self._apply_profiles(payload, runtime_id, now, full=True)
                self._peer_states[runtime_id] = _PeerState(
                    version=version or 0, digest=digest
                )
        else:
            if peer is not None and version is not None and version <= peer.version:
                pass  # stale or duplicate delta (multicast + unicast copies)
            elif peer is not None and version is not None and version == peer.version + 1:
                self._apply_profiles(payload, runtime_id, now, full=False)
                peer.version = version
                peer.digest = digest
            else:
                # Version gap (missed deltas) or first contact via a delta:
                # apply best-effort, drop the digest record so heartbeats
                # cannot false-match, and pull a full transfer.
                self._apply_profiles(payload, runtime_id, now, full=False)
                self._peer_states[runtime_id] = _PeerState(
                    version=version or 0, digest=None
                )
                self._request_full_state(address, directory_port)

        load = payload.get("shard_load")
        if load is not None:
            self.runtime.shards.note_peer_load(runtime_id, load)
        if newcomer and self.started:
            # Teach late joiners our state in one RTT instead of making
            # them wait for our next heartbeat + request round-trip.
            self._announce(
                full=True, to=[(address, directory_port)], compress_for=runtime_id
            )
        if newcomer:
            # A membership change moves shard ownership: rebalance, re-push
            # local placements, re-route standing-query interest.
            self.runtime.shards.membership_changed()

    def apply_shard_delta(
        self, runtime_id: str, profiles_data, digests, removed
    ) -> None:
        """Apply one interest-scoped delta from a shard owner: added/changed
        profiles feed the local entry table (so standing queries and
        listeners fire exactly as under flat gossip), removals drop them.
        Never treated as a full state: a shard owner only ever speaks for
        the keys we subscribed to."""
        payload = {"profiles": list(profiles_data), "removed": list(removed)}
        if digests:
            payload["digests"] = list(digests)
        self._apply_profiles(
            payload, runtime_id, self.runtime.kernel.now, full=False
        )

    def _apply_profiles(
        self, payload: dict, runtime_id: str, now: float, full: bool
    ) -> None:
        mentioned = set()
        digests = payload.get("digests")
        if digests is not None and len(digests) != len(payload["profiles"]):
            digests = None  # malformed pairing: fall back to recomputing
        fresh: List[TranslatorProfile] = []
        for position, data in enumerate(payload["profiles"]):
            profile = TranslatorProfile.from_dict(
                data, digest=digests[position] if digests else None
            )
            mentioned.add(profile.translator_id)
            existing = self._entries.get(profile.translator_id)
            if existing is None:
                # Brand-new entries batch: one bulk index insert after the
                # loop instead of per-profile set churn (cold-apply cost).
                fresh.append(profile)
            elif not existing.local:
                if existing.profile is not profile and existing.profile != profile:
                    old = existing.profile
                    if same_except_health(old, profile):
                        # Health-only difference: keep the entry (and its
                        # lookup-order seq) and tell listeners it changed.
                        self._swap_profile(existing, profile)
                        existing.last_seen = now
                        self._notify_changed(profile, old)
                    else:
                        # The translator's advertised shape/attributes
                        # changed: re-announce it so standing bindings
                        # re-evaluate.
                        self._drop_entry(profile.translator_id)
                        self._notify_removed(old)
                        self._store_entry(profile, local=False, now=now)
                        self._notify_added(profile)
                else:
                    existing.last_seen = now

        if fresh:
            self._store_entries_bulk(fresh, now)
            for profile in fresh:
                self._notify_added(profile)

        for data in payload.get("changed", ()):
            profile = TranslatorProfile.from_dict(data)
            mentioned.add(profile.translator_id)
            existing = self._entries.get(profile.translator_id)
            if existing is None or existing.local:
                # Unknown here (possibly already expired): a health delta
                # must never resurrect an entry, and never touches our own.
                continue
            old = existing.profile
            if old is profile or old == profile:
                existing.last_seen = now
            elif same_except_health(old, profile):
                self._swap_profile(existing, profile)
                existing.last_seen = now
                self._notify_changed(profile, old)
            else:
                # Malformed/mixed delta: fall back to the full change path.
                self._drop_entry(profile.translator_id)
                self._notify_removed(old)
                self._store_entry(profile, local=False, now=now)
                self._notify_added(profile)

        for translator_id in payload["removed"]:
            entry = self._entries.get(translator_id)
            if entry is not None and not entry.local:
                self._drop_entry(translator_id)
                self._notify_removed(entry.profile)

        if full and not self._sharded:
            # Entries claimed by this runtime but absent from its full state
            # are gone.  (Under sharding, full announcements are empty
            # membership handshakes while our entries for that runtime are
            # interest-fed by shard owners -- never prune them here.)
            stale = [
                translator_id
                for translator_id in self._by_runtime.get(runtime_id, ())
                if translator_id not in mentioned
            ]
            for translator_id in stale:
                entry = self._drop_entry(translator_id)
                if entry is not None:
                    self._notify_removed(entry.profile)
