"""Health-aware runtime machinery: breakers, monitor, supervisor.

The paper defers all QoS/robustness control to future work (Section 7);
PR 1 added blind retry and re-binding.  This module makes the runtime
*adaptive*: it observes invocation outcomes, delivery failures and lease
churn, folds them into per-translator and per-peer health states, and
feeds those states back into delivery (circuit breakers), discovery
(health-ordered lookup) and binding (failover) decisions.

Three pieces:

- :class:`CircuitBreaker` -- the classic closed / open / half-open state
  machine on the simulated clock, with jittered exponential reopen
  backoff.  Wrapped around translator native invocations and per-peer
  transport delivery so exhausted retry budgets stop burning spool
  capacity on dead endpoints.
- :class:`HealthMonitor` -- folds outcomes into per-translator
  ``HEALTHY``/``DEGRADED``/``QUARANTINED`` states (carried on
  :class:`~repro.core.profile.TranslatorProfile` and gossiped), with flap
  detection: too many transitions inside a window earns a quarantine
  whose penalty grows while flapping persists and decays with quiet.  A
  separate *peer overlay* tracks delivery failures and lease churn per
  peer runtime; effective health is the max of the gossiped state and the
  local overlay.
- :class:`Supervisor` -- restarts crashed mapper discovery loops and
  translator pump processes with capped exponential backoff instead of
  leaving them dead (deliberate kills are never restarted).

Determinism: breaker jitter is seeded from the breaker's key via CRC-32
(never the process-salted ``hash``), and all timing uses the sim kernel,
so seeded chaos plans replay identical traces.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.simnet.kernel import Kernel, Process, ProcessKilled

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.profile import TranslatorProfile
    from repro.core.runtime import UMiddleRuntime

__all__ = [
    "HealthState",
    "CircuitBreaker",
    "HealthMonitor",
    "Supervisor",
    "jittered_backoff",
]


def jittered_backoff(
    key: str, attempt: int, base_s: float, max_s: float, jitter: float = 0.25
) -> float:
    """Deterministic exponential backoff with CRC-seeded jitter.

    Shared by the saga retry loop (and usable by any budgeted retrier):
    seeding from ``(key, attempt)`` keeps seeded chaos replays identical
    while de-synchronizing concurrent retry loops -- the same reasoning
    as :class:`CircuitBreaker`'s CRC-seeded reopen jitter.
    """
    rng = random.Random(zlib.crc32(f"{key}#{attempt}".encode("utf-8")))
    delay = min(base_s * (2.0 ** max(attempt - 1, 0)), max_s)
    return delay * (1.0 + jitter * (2.0 * rng.random() - 1.0))


class HealthState(Enum):
    """Per-translator health carried on profiles and gossiped."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"

    @property
    def rank(self) -> int:
        return _RANK[self]


_RANK = {
    HealthState.HEALTHY: 0,
    HealthState.DEGRADED: 1,
    HealthState.QUARANTINED: 2,
}

#: Wire-form health string -> ordering rank (unknown strings rank healthy).
WIRE_RANK: Dict[str, int] = {state.value: state.rank for state in HealthState}


# -- circuit breaker ----------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed -> open -> half-open breaker on the simulated clock.

    ``allow()`` is the admission test: always true while closed; while
    open it becomes true exactly once per reopen interval, flipping to
    half-open and admitting a single probe.  A probe success closes the
    breaker (and resets the backoff ladder); a probe failure re-opens it
    with the next (doubled, jittered, capped) reopen delay.
    """

    def __init__(
        self,
        kernel: Kernel,
        key: str,
        failure_threshold: int = 3,
        reopen_base_s: float = 2.0,
        reopen_max_s: float = 30.0,
        jitter: float = 0.25,
    ):
        self.kernel = kernel
        self.key = key
        self.failure_threshold = failure_threshold
        self.reopen_base_s = reopen_base_s
        self.reopen_max_s = reopen_max_s
        self.jitter = jitter
        self.state = CLOSED
        self.failures = 0
        self.times_opened = 0
        self.retry_at = 0.0
        #: Bounded (time, state) log of transitions, for tests/diagnosis.
        self.transitions: List[Tuple[float, str]] = []
        # CRC-32 of the key, not hash(): hash is salted per process and
        # would break seeded-replay determinism.
        self._rng = random.Random(zlib.crc32(key.encode("utf-8")))

    @property
    def is_closed(self) -> bool:
        return self.state == CLOSED

    def allow(self) -> bool:
        """May a call proceed right now?  (May flip open -> half-open.)"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN and self.kernel.now >= self.retry_at:
            self._set_state(HALF_OPEN)
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.times_opened = 0
        self._set_state(CLOSED)

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.failure_threshold:
            self._open()

    def probe_now(self) -> None:
        """External evidence the endpoint may be back (e.g. we heard an
        announcement from the peer): make the next ``allow()`` probe."""
        if self.state == OPEN:
            self.retry_at = self.kernel.now

    def _open(self) -> None:
        self.times_opened += 1
        backoff = min(
            self.reopen_base_s * (2 ** (self.times_opened - 1)),
            self.reopen_max_s,
        )
        if self.jitter:
            backoff *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        self.retry_at = self.kernel.now + backoff
        self.failures = 0
        self._set_state(OPEN)

    def _set_state(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        self.transitions.append((self.kernel.now, state))
        if len(self.transitions) > 64:
            del self.transitions[: len(self.transitions) - 64]


# -- health monitor -----------------------------------------------------------

#: Consecutive invocation failures before a translator turns DEGRADED.
FAILURE_THRESHOLD = 3
#: Consecutive successes (while degraded) before it turns HEALTHY again.
RECOVERY_THRESHOLD = 2
#: Flap detection: this many transitions inside the window -> quarantine.
FLAP_WINDOW_S = 60.0
FLAP_THRESHOLD = 4
#: Quarantine penalty: base doubles per recent quarantine, capped, and the
#: streak decays after a quiet period.
QUARANTINE_BASE_S = 20.0
QUARANTINE_MAX_S = 240.0
QUARANTINE_DECAY_S = 180.0
#: Peer overlay: consecutive delivery failures before a peer is DEGRADED.
PEER_FAILURE_THRESHOLD = 3
#: Lease churn: this many expiries inside the window quarantine the peer.
PEER_CHURN_THRESHOLD = 3
PEER_CHURN_WINDOW_S = 120.0
PEER_QUARANTINE_S = 30.0


@dataclass
class _LocalRecord:
    """Observed health of one local translator."""

    state: HealthState = HealthState.HEALTHY
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    flap_times: List[float] = field(default_factory=list)
    quarantine_until: float = 0.0
    quarantine_streak: int = 0
    last_quarantine: float = float("-inf")


@dataclass
class _PeerRecord:
    """Locally observed overlay for one peer runtime."""

    state: HealthState = HealthState.HEALTHY
    consecutive_failures: int = 0
    expiries: List[float] = field(default_factory=list)
    quarantine_until: float = 0.0


class HealthMonitor:
    """Folds outcomes into health states and notifies on changes.

    ``on_local_change(translator_id, state, reason)`` fires when a local
    translator's state moves (the runtime gossips it via the directory);
    ``on_peer_change(runtime_id, state, reason)`` fires when the peer
    overlay moves (the runtime re-evaluates failover bindings).  All
    recording methods are no-ops when disabled.
    """

    def __init__(
        self,
        kernel: Kernel,
        enabled: bool = True,
        on_local_change: Optional[Callable[[str, HealthState, str], None]] = None,
        on_peer_change: Optional[Callable[[str, HealthState, str], None]] = None,
    ):
        self.kernel = kernel
        self.enabled = enabled
        self.on_local_change = on_local_change
        self.on_peer_change = on_peer_change
        self._local: Dict[str, _LocalRecord] = {}
        self._peers: Dict[str, _PeerRecord] = {}
        self._unhealthy_peers: Set[str] = set()

    # -- local translator health ------------------------------------------

    def record_failure(self, translator_id: str, kind: str = "invoke") -> None:
        if not self.enabled:
            return
        record = self._local.setdefault(translator_id, _LocalRecord())
        record.consecutive_successes = 0
        record.consecutive_failures += 1
        if (
            record.state is HealthState.HEALTHY
            and record.consecutive_failures >= FAILURE_THRESHOLD
        ):
            self._set_local(
                translator_id,
                record,
                HealthState.DEGRADED,
                f"{record.consecutive_failures} consecutive {kind} failures",
            )

    def record_success(self, translator_id: str) -> None:
        if not self.enabled:
            return
        record = self._local.get(translator_id)
        if record is None:
            return
        record.consecutive_failures = 0
        if record.state is HealthState.DEGRADED:
            record.consecutive_successes += 1
            if record.consecutive_successes >= RECOVERY_THRESHOLD:
                self._set_local(
                    translator_id, record, HealthState.HEALTHY, "recovered"
                )

    def health_of(self, translator_id: str) -> HealthState:
        record = self._local.get(translator_id)
        return record.state if record is not None else HealthState.HEALTHY

    def forget_translator(self, translator_id: str) -> None:
        self._local.pop(translator_id, None)

    def _set_local(
        self,
        translator_id: str,
        record: _LocalRecord,
        state: HealthState,
        reason: str,
        flap: bool = True,
    ) -> None:
        now = self.kernel.now
        if flap:
            record.flap_times.append(now)
            cutoff = now - FLAP_WINDOW_S
            record.flap_times = [t for t in record.flap_times if t >= cutoff]
            if (
                state is not HealthState.QUARANTINED
                and len(record.flap_times) >= FLAP_THRESHOLD
            ):
                self._quarantine_local(translator_id, record)
                return
        record.state = state
        record.consecutive_successes = 0
        if self.on_local_change is not None:
            self.on_local_change(translator_id, state, reason)

    def _quarantine_local(self, translator_id: str, record: _LocalRecord) -> None:
        now = self.kernel.now
        if now - record.last_quarantine > QUARANTINE_DECAY_S:
            record.quarantine_streak = 0
        record.quarantine_streak += 1
        record.last_quarantine = now
        penalty = min(
            QUARANTINE_BASE_S * (2 ** (record.quarantine_streak - 1)),
            QUARANTINE_MAX_S,
        )
        record.quarantine_until = now + penalty
        record.state = HealthState.QUARANTINED
        record.flap_times.clear()
        if self.on_local_change is not None:
            self.on_local_change(
                translator_id,
                HealthState.QUARANTINED,
                f"flapping; quarantined for {penalty:.1f}s",
            )
        self.kernel.call_later(penalty, lambda: self._maybe_lift(translator_id))

    def _maybe_lift(self, translator_id: str) -> None:
        record = self._local.get(translator_id)
        if record is None or record.state is not HealthState.QUARANTINED:
            return
        if self.kernel.now + 1e-9 < record.quarantine_until:
            return  # a later quarantine superseded this timer
        record.consecutive_failures = 0
        # Probation, not a clean bill -- and lifting never counts as a flap
        # transition (that would re-quarantine forever).
        self._set_local(
            translator_id,
            record,
            HealthState.DEGRADED,
            "quarantine lifted (probation)",
            flap=False,
        )

    # -- peer overlay ------------------------------------------------------

    def peer_failure(self, runtime_id: str) -> None:
        if not self.enabled:
            return
        record = self._peers.setdefault(runtime_id, _PeerRecord())
        record.consecutive_failures += 1
        if (
            record.state is HealthState.HEALTHY
            and record.consecutive_failures >= PEER_FAILURE_THRESHOLD
        ):
            record.state = HealthState.DEGRADED
            self._unhealthy_peers.add(runtime_id)
            if self.on_peer_change is not None:
                self.on_peer_change(
                    runtime_id,
                    HealthState.DEGRADED,
                    f"{record.consecutive_failures} consecutive delivery failures",
                )

    def peer_success(self, runtime_id: str) -> None:
        self._peer_recovered(runtime_id, "delivery succeeded")

    def peer_alive(self, runtime_id: str) -> None:
        """The peer announced itself (gossip heard): clear degradation
        learned from delivery failures.  Churn quarantines are time-based
        and deliberately survive announcements (flapping peers announce
        every time they come back up)."""
        self._peer_recovered(runtime_id, "announcement heard")

    def _peer_recovered(self, runtime_id: str, reason: str) -> None:
        if not self.enabled:
            return
        record = self._peers.get(runtime_id)
        if record is None:
            return
        record.consecutive_failures = 0
        if record.state is HealthState.DEGRADED:
            record.state = HealthState.HEALTHY
            self._unhealthy_peers.discard(runtime_id)
            if self.on_peer_change is not None:
                self.on_peer_change(runtime_id, HealthState.HEALTHY, reason)

    def note_runtime_expired(self, runtime_id: str) -> None:
        """A peer's lease expired (sweeper or crash-triggered reaping)."""
        if not self.enabled:
            return
        now = self.kernel.now
        record = self._peers.setdefault(runtime_id, _PeerRecord())
        record.expiries.append(now)
        cutoff = now - PEER_CHURN_WINDOW_S
        record.expiries = [t for t in record.expiries if t >= cutoff]
        if (
            len(record.expiries) >= PEER_CHURN_THRESHOLD
            and record.state is not HealthState.QUARANTINED
        ):
            record.state = HealthState.QUARANTINED
            record.quarantine_until = now + PEER_QUARANTINE_S
            self._unhealthy_peers.add(runtime_id)
            if self.on_peer_change is not None:
                self.on_peer_change(
                    runtime_id,
                    HealthState.QUARANTINED,
                    f"lease churn: {len(record.expiries)} expiries in "
                    f"{PEER_CHURN_WINDOW_S:.0f}s",
                )
            self.kernel.call_later(
                PEER_QUARANTINE_S, lambda: self._maybe_lift_peer(runtime_id)
            )

    def _maybe_lift_peer(self, runtime_id: str) -> None:
        record = self._peers.get(runtime_id)
        if record is None or record.state is not HealthState.QUARANTINED:
            return
        if self.kernel.now + 1e-9 < record.quarantine_until:
            return
        record.state = HealthState.HEALTHY
        record.consecutive_failures = 0
        self._unhealthy_peers.discard(runtime_id)
        if self.on_peer_change is not None:
            self.on_peer_change(
                runtime_id, HealthState.HEALTHY, "peer quarantine lifted"
            )

    def peer_health(self, runtime_id: str) -> HealthState:
        record = self._peers.get(runtime_id)
        if record is None:
            return HealthState.HEALTHY
        if record.state is HealthState.QUARANTINED:
            if self.kernel.now < record.quarantine_until:
                return HealthState.QUARANTINED
            return HealthState.HEALTHY
        return record.state

    def forget_peers(self) -> None:
        """Crash semantics: a crashed runtime loses its observed overlay."""
        self._peers.clear()
        self._unhealthy_peers.clear()

    # -- effective health (gossip + overlay) -------------------------------

    @property
    def overlay_active(self) -> bool:
        """True when any peer is currently degraded or quarantined --
        the directory's lookup fast path bypasses ordering otherwise."""
        return bool(self._unhealthy_peers)

    def effective_rank(self, profile: "TranslatorProfile") -> int:
        """Ordering rank: the worse of the profile's gossiped health and
        our locally observed overlay for its owning runtime."""
        rank = WIRE_RANK.get(profile.health, 0)
        if profile.runtime_id in self._unhealthy_peers:
            rank = max(rank, self.peer_health(profile.runtime_id).rank)
        return rank

    def effective_health(self, profile: "TranslatorProfile") -> HealthState:
        rank = self.effective_rank(profile)
        for state in HealthState:
            if state.rank == rank:
                return state
        return HealthState.HEALTHY  # pragma: no cover - ranks are exhaustive


# -- supervisor ---------------------------------------------------------------


class Supervisor:
    """Restarts crashed processes (mapper discovery loops, translator
    pumps) with capped exponential backoff.

    ``watch(name, process, respawn)`` registers a completion callback on
    the process: an unhandled exception (anything but the deliberate
    :class:`ProcessKilled`) is defused -- so one crashed bridge process no
    longer aborts the whole simulation -- and ``respawn()`` is scheduled
    after a backoff that doubles per recent crash and decays with quiet.
    ``respawn`` returns the replacement process (re-watched) or ``None``
    to decline (e.g. the mapper was stopped meanwhile).
    """

    RESTART_BASE_S = 0.5
    RESTART_MAX_S = 8.0
    RESTART_DECAY_S = 60.0

    def __init__(self, runtime: "UMiddleRuntime"):
        self.runtime = runtime
        self.restarts = 0
        self._failures: Dict[str, Tuple[int, float]] = {}

    @property
    def enabled(self) -> bool:
        return self.runtime.health.enabled

    def watch(
        self,
        name: str,
        process: Process,
        respawn: Callable[[], Optional[Process]],
    ) -> Process:
        if not self.enabled:
            return process

        def on_exit(event, _name=name, _respawn=respawn):
            exc = event.exception
            if exc is None or isinstance(exc, ProcessKilled):
                return  # clean exit or deliberate kill: not a crash
            event.defused = True
            self._crashed(_name, _respawn, exc)

        process.add_callback(on_exit)
        return process

    def _crashed(self, name: str, respawn, exc: BaseException) -> None:
        kernel = self.runtime.kernel
        now = kernel.now
        count, last = self._failures.get(name, (0, float("-inf")))
        if now - last > self.RESTART_DECAY_S:
            count = 0
        count += 1
        self._failures[name] = (count, now)
        backoff = min(
            self.RESTART_BASE_S * (2 ** (count - 1)), self.RESTART_MAX_S
        )
        self.restarts += 1
        self.runtime.trace(
            "supervisor.restart",
            f"{name} crashed ({exc}); restart #{count} in {backoff:.2f}s",
            backoff=backoff,
            crashes=count,
        )
        kernel.call_later(backoff, lambda: self._respawn(name, respawn))

    def _respawn(self, name: str, respawn) -> None:
        try:
            process = respawn()
        except Exception as exc:
            self.runtime.trace("supervisor.respawn-failed", f"{name}: {exc}")
            return
        if process is not None:
            self.watch(name, process, respawn)
