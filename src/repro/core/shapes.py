"""Service Shaping: data types, port specifications and shapes (Section 3.3).

The paper represents the semantics of a native device as a set of
communication endpoints, called *ports*, of two kinds:

- **Digital ports** transmit digital information and are tagged with a
  MIME type.  Two translators interoperate if one has an output and the
  other an input port with the same MIME type.
- **Physical ports** describe user-perceptible effects in the physical
  world, tagged with a *perception type* (how users perceive the change:
  ``visible``, ``audible`` or ``tangible``) and a *media type* (the physical
  medium carrying it: ``paper``, ``light``, ``screen``, ``air``, ...).

This combination of typed ports is the device's **shape** -- the affordances
of the device.  Applications select devices by shape: "a device with a
``image/jpeg`` digital input and a ``visible/*`` physical output" means
*anything that can show me this image*; ``visible/paper`` narrows it to a
printer (the paper's PostScript-printer example).

Wildcard semantics: ``*`` matches any single component, so patterns are
``type/subtype``, ``type/*`` or ``*/*`` for MIME types and
``perception/media``, ``perception/*`` or ``*/*`` for physical types.
Patterns appear in queries and templates; concrete ports always carry fully
specified types.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.core.errors import ShapeError

__all__ = [
    "Direction",
    "PortKind",
    "PerceptionType",
    "DigitalType",
    "PhysicalType",
    "PortSpec",
    "Shape",
]


class Direction(enum.Enum):
    """Dataflow direction of a port, from the device's point of view."""

    IN = "in"
    OUT = "out"

    @property
    def opposite(self) -> "Direction":
        return Direction.OUT if self is Direction.IN else Direction.IN


class PortKind(enum.Enum):
    """Whether a port carries digital traffic or physical-world effects."""

    DIGITAL = "digital"
    PHYSICAL = "physical"


class PerceptionType(enum.Enum):
    """How users perceive a physical port's effect (Section 3.3)."""

    VISIBLE = "visible"
    AUDIBLE = "audible"
    TANGIBLE = "tangible"


def _split_two(value: str, what: str) -> Tuple[str, str]:
    parts = value.split("/")
    if len(parts) != 2 or not parts[0] or not parts[1]:
        raise ShapeError(f"malformed {what}: {value!r} (expected 'a/b')")
    return parts[0].lower(), parts[1].lower()


def _component_matches(concrete: str, pattern: str) -> bool:
    return pattern == "*" or concrete == pattern


def _wildcard_expansions(first: str, second: str) -> Tuple[str, str, str, str]:
    """Every pattern string a concrete ``first/second`` type satisfies.

    A concrete type ``a/b`` matches exactly the patterns ``a/b``, ``a/*``,
    ``*/b`` and ``*/*``, so indexing a concrete port under these four keys
    lets any query pattern be answered with a single exact-key lookup
    (the directory's inverted discovery index relies on this closure).
    """
    return (f"{first}/{second}", f"{first}/*", f"*/{second}", "*/*")


@dataclass(frozen=True, order=True)
class DigitalType:
    """A MIME type tag on a digital port, e.g. ``image/jpeg``.

    ``matches(pattern)`` implements the wildcard semantics used by queries
    and templates; two *concrete* types interoperate iff they are equal.
    """

    mime: str

    def __post_init__(self):
        _split_two(self.mime, "MIME type")
        object.__setattr__(self, "mime", self.mime.lower())

    @property
    def major(self) -> str:
        return self.mime.split("/")[0]

    @property
    def minor(self) -> str:
        return self.mime.split("/")[1]

    @property
    def is_pattern(self) -> bool:
        return "*" in self.mime

    def matches(self, pattern: "DigitalType") -> bool:
        """True if this type satisfies ``pattern`` (which may use ``*``)."""
        if self.is_pattern:
            raise ShapeError(f"cannot match a pattern against a pattern: {self.mime}")
        return _component_matches(self.major, pattern.major) and _component_matches(
            self.minor, pattern.minor
        )

    def expansions(self) -> Tuple[str, str, str, str]:
        """All pattern strings this concrete type satisfies (index keys)."""
        return _wildcard_expansions(self.major, self.minor)

    def __str__(self) -> str:
        return self.mime


@dataclass(frozen=True, order=True)
class PhysicalType:
    """A perception/media tag on a physical port, e.g. ``visible/paper``."""

    perception: str
    media: str

    def __post_init__(self):
        perception = self.perception.lower()
        media = self.media.lower()
        valid = {p.value for p in PerceptionType} | {"*"}
        if perception not in valid:
            raise ShapeError(
                f"unknown perception type {perception!r} (expected one of {sorted(valid)})"
            )
        if not media:
            raise ShapeError("empty media type")
        object.__setattr__(self, "perception", perception)
        object.__setattr__(self, "media", media)

    @classmethod
    def parse(cls, text: str) -> "PhysicalType":
        perception, media = _split_two(text, "physical type")
        return cls(perception, media)

    @property
    def is_pattern(self) -> bool:
        return self.perception == "*" or self.media == "*"

    def matches(self, pattern: "PhysicalType") -> bool:
        """True if this type satisfies ``pattern`` (which may use ``*``)."""
        if self.is_pattern:
            raise ShapeError(
                f"cannot match a pattern against a pattern: {self}"
            )
        return _component_matches(self.perception, pattern.perception) and (
            _component_matches(self.media, pattern.media)
        )

    def expansions(self) -> Tuple[str, str, str, str]:
        """All pattern strings this concrete type satisfies (index keys)."""
        return _wildcard_expansions(self.perception, self.media)

    def __str__(self) -> str:
        return f"{self.perception}/{self.media}"


@dataclass(frozen=True, order=True)
class PortSpec:
    """The static description of one port in a shape.

    Exactly one of ``digital_type`` / ``physical_type`` is set, matching the
    port's kind.
    """

    name: str
    direction: Direction
    digital_type: Optional[DigitalType] = None
    physical_type: Optional[PhysicalType] = None

    def __post_init__(self):
        if not self.name:
            raise ShapeError("port name must be non-empty")
        if (self.digital_type is None) == (self.physical_type is None):
            raise ShapeError(
                f"port {self.name!r} must have exactly one of digital/physical type"
            )

    @property
    def kind(self) -> PortKind:
        return PortKind.DIGITAL if self.digital_type else PortKind.PHYSICAL

    @property
    def is_digital(self) -> bool:
        return self.digital_type is not None

    def describe(self) -> str:
        type_text = str(self.digital_type or self.physical_type)
        return f"{self.kind.value} {self.direction.value} {self.name}: {type_text}"

    @classmethod
    def digital(cls, name: str, direction: Direction, mime: str) -> "PortSpec":
        return cls(name=name, direction=direction, digital_type=DigitalType(mime))

    @classmethod
    def physical(cls, name: str, direction: Direction, tag: str) -> "PortSpec":
        return cls(
            name=name, direction=direction, physical_type=PhysicalType.parse(tag)
        )


class Shape:
    """A device's shape: the immutable set of its port specifications.

    The shape is the unit of compatibility in the intermediary semantic
    space (Section 3.3): two devices are compatible if one has a digital
    output whose MIME type equals a digital input of the other.
    """

    def __init__(self, ports: Iterable[PortSpec]):
        port_list: List[PortSpec] = list(ports)
        names = [p.name for p in port_list]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ShapeError(f"duplicate port names in shape: {duplicates}")
        self._ports: FrozenSet[PortSpec] = frozenset(port_list)
        self._by_name = {p.name: p for p in port_list}
        # The shape is immutable: precompute the canonical ordering and the
        # per-kind/direction selections once, instead of re-sorting and
        # re-filtering on every matches()/satisfies() call (these sit on the
        # discovery hot path, which runs them per candidate per lookup).
        self._sorted: List[PortSpec] = sorted(port_list)
        self._digital_in = [
            p for p in self._sorted if p.is_digital and p.direction is Direction.IN
        ]
        self._digital_out = [
            p for p in self._sorted if p.is_digital and p.direction is Direction.OUT
        ]
        self._physical_in = [
            p for p in self._sorted if not p.is_digital and p.direction is Direction.IN
        ]
        self._physical_out = [
            p for p in self._sorted if not p.is_digital and p.direction is Direction.OUT
        ]

    # -- access -----------------------------------------------------------

    @property
    def ports(self) -> FrozenSet[PortSpec]:
        return self._ports

    def port(self, name: str) -> PortSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise ShapeError(f"no port named {name!r} in shape") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[PortSpec]:
        return iter(self._sorted)

    def __len__(self) -> int:
        return len(self._ports)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Shape) and self._ports == other._ports

    def __hash__(self) -> int:
        return hash(self._ports)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(p.describe() for p in self)
        return f"Shape({inner})"

    # -- selections -----------------------------------------------------------

    def digital_inputs(self) -> List[PortSpec]:
        return self._digital_in

    def digital_outputs(self) -> List[PortSpec]:
        return self._digital_out

    def physical_inputs(self) -> List[PortSpec]:
        return self._physical_in

    def physical_outputs(self) -> List[PortSpec]:
        return self._physical_out

    # -- compatibility ----------------------------------------------------------

    def inputs_accepting(self, mime: DigitalType) -> List[PortSpec]:
        """Digital input ports whose type equals ``mime`` (or, if ``mime``
        is a pattern, whose type satisfies it)."""
        result = []
        for spec in self.digital_inputs():
            if mime.is_pattern:
                if spec.digital_type.matches(mime):
                    result.append(spec)
            elif spec.digital_type == mime:
                result.append(spec)
        return result

    def outputs_producing(self, mime: DigitalType) -> List[PortSpec]:
        result = []
        for spec in self.digital_outputs():
            if mime.is_pattern:
                if spec.digital_type.matches(mime):
                    result.append(spec)
            elif spec.digital_type == mime:
                result.append(spec)
        return result

    def compatible_with(self, other: "Shape") -> bool:
        """True if data can flow between the two shapes in either direction.

        Any two devices are compatible if they contain an output and an
        input endpoint with the same associated data type (Section 2.2.3).
        """
        return self.can_send_to(other) or other.can_send_to(self)

    def can_send_to(self, other: "Shape") -> bool:
        """True if one of our digital outputs type-matches one of their inputs."""
        our_outputs = {p.digital_type for p in self.digital_outputs()}
        their_inputs = {p.digital_type for p in other.digital_inputs()}
        return bool(our_outputs & their_inputs)

    def flows_to(self, other: "Shape") -> List[Tuple[PortSpec, PortSpec]]:
        """All (output, input) pairs through which we can send to ``other``."""
        pairs = []
        for out_spec in self.digital_outputs():
            for in_spec in other.digital_inputs():
                if out_spec.digital_type == in_spec.digital_type:
                    pairs.append((out_spec, in_spec))
        return pairs

    # -- template satisfaction ------------------------------------------------------

    def satisfies(self, template: "Shape") -> bool:
        """True if every port in ``template`` is satisfied by some port here.

        Template ports may use wildcard types; a template port is satisfied
        by any same-kind, same-direction port whose type matches it.  Port
        names in templates are ignored (shapes describe affordances, not
        identities).
        """
        for wanted in template:
            if not any(self._port_satisfies(p, wanted) for p in self):
                return False
        return True

    @staticmethod
    def _port_satisfies(concrete: PortSpec, wanted: PortSpec) -> bool:
        if concrete.kind != wanted.kind or concrete.direction != wanted.direction:
            return False
        if concrete.is_digital:
            return concrete.digital_type.matches(wanted.digital_type)
        return concrete.physical_type.matches(wanted.physical_type)
