"""Dynamic device binding (Section 3.5, Figure 7-2).

``connect(port, query)`` establishes a *dynamic message path* between a
specific port and the ports matching a query.  Because native devices are
mapped and unmapped dynamically, the binding engine evaluates the query
template adaptively against the presence of translators: when a matching
translator appears, a concrete path is established, bound to the matching
translator's port whose data type equals the source port's; when the
translator disappears, the path is torn down.

This yields the paper's *fine-grained device polymorphism*: a camera's
``image/jpeg`` output can be simultaneously wired to a player, a storage
device, and anything else whose input MIME type matches, through a single
template-based connection request.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Union, TYPE_CHECKING

from repro.core.directory import DirectoryListener
from repro.core.errors import BindingError, SagaError, ShardUnavailable
from repro.core.messages import UMessage
from repro.core.ports import DigitalInputPort, DigitalOutputPort
from repro.core.profile import PortRef, TranslatorProfile
from repro.core.query import Query
from repro.core.saga import Saga, SagaStep

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import UMiddleRuntime

__all__ = ["DynamicBinding", "connect_saga"]


def connect_saga(
    runtime: "UMiddleRuntime",
    actions,
    timeout_s: float = 5.0,
    max_attempts: int = 3,
) -> Saga:
    """Composite-action front-end: normalize ``actions`` into
    :class:`~repro.core.saga.SagaStep` objects and begin the saga.

    Each action is a :class:`SagaStep`, or a ``(target, message)`` /
    ``(target, message, compensation)`` tuple where ``target`` is a
    :class:`~repro.core.query.Query` (directory-resolved per attempt, so
    the step fails over like a ``failover=True`` binding) or a pinned
    :class:`~repro.core.profile.PortRef`.  ``compensation`` is the message
    that undoes the step; omit it for steps with nothing to undo.
    """
    steps = []
    for action in actions:
        if isinstance(action, SagaStep):
            steps.append(action)
            continue
        if not isinstance(action, (tuple, list)) or not 2 <= len(action) <= 3:
            raise SagaError(
                f"saga action must be a SagaStep or a (target, message"
                f"[, compensation]) tuple, got {action!r}"
            )
        target, message = action[0], action[1]
        compensation = action[2] if len(action) == 3 else None
        if not isinstance(message, UMessage) or (
            compensation is not None and not isinstance(compensation, UMessage)
        ):
            raise SagaError(f"saga messages must be UMessage, got {action!r}")
        query: Optional[Query] = None
        ref: Optional[PortRef] = None
        if isinstance(target, Query):
            query = target
        elif isinstance(target, PortRef):
            ref = target
        else:
            raise SagaError(
                f"saga target must be a Query or PortRef, got {target!r}"
            )
        steps.append(
            SagaStep(
                message=message,
                compensation=compensation,
                query=query,
                target=ref,
                timeout_s=timeout_s,
                max_attempts=max_attempts,
            )
        )
    return runtime.sagas.begin(steps)

_binding_counter = itertools.count(1)


class DynamicBinding(DirectoryListener):
    """A standing template connection between one port and a query.

    The anchor port may be an output (we fan out to every matching
    translator's compatible input) or an input (every matching translator's
    compatible output is wired to us, including remote sources via the
    transport module's remote-connect control protocol).
    """

    def __init__(
        self,
        runtime: "UMiddleRuntime",
        port: Union[DigitalOutputPort, DigitalInputPort],
        query: Query,
        failover: bool = False,
        binding_id: Optional[str] = None,
    ):
        if not isinstance(port, (DigitalOutputPort, DigitalInputPort)):
            raise BindingError(f"cannot bind from port {port!r}")
        query.require_some_criterion()
        self.runtime = runtime
        self.port = port
        self.query = query
        #: Stable identity journaled with the standing query, so a binding
        #: re-opened by cold recovery matches its open/close records.
        self.binding_id = binding_id or (
            f"{runtime.runtime_id}:b{next(_binding_counter)}"
        )
        #: Failover mode: bind only the single *best* (healthiest, then
        #: oldest) matching translator and migrate when health changes,
        #: instead of fanning out to every match.
        self.failover = failover
        #: translator_id -> list of paths/handles bound for that translator.
        self._bound: Dict[str, List] = {}
        self.closed = False

        # Standing-query subscription: the directory routes added/removed
        # events to this binding only for profiles carrying one of the
        # query's coarse index keys, instead of broadcasting every event
        # to every binding.
        runtime.directory.subscribe_query(query, self)
        if failover:
            self.reevaluate()
        else:
            try:
                matches = runtime.directory.lookup(query)
            except ShardUnavailable:
                # The shard owner is dark right now; the standing-query
                # subscription delivers the matches once it resurfaces.
                matches = []
            for profile in matches:
                self._bind_profile(profile)

    # -- DirectoryListener ---------------------------------------------------

    def translator_added(self, profile: TranslatorProfile) -> None:
        if self.closed:
            return
        if profile.translator_id == self.port.translator.translator_id:
            return  # never self-bind
        if self.failover:
            self.reevaluate()
            return
        if self.query.matches(profile):
            self._bind_profile(profile)

    def translator_removed(self, profile: TranslatorProfile) -> None:
        self._unbind(profile.translator_id)
        if self.failover and not self.closed:
            self.reevaluate()

    def translator_changed(
        self, profile: TranslatorProfile, previous: TranslatorProfile
    ) -> None:
        if self.failover and not self.closed:
            self.reevaluate()

    def _unbind(self, translator_id: str) -> None:
        paths = self._bound.pop(translator_id, None)
        if not paths:
            return
        for path in paths:
            path.close()
        self.runtime.trace(
            "binding.unbound",
            f"{self.port.name} x {translator_id}",
        )

    # -- binding -----------------------------------------------------------------

    def _bind_profile(self, profile: TranslatorProfile) -> None:
        if profile.translator_id in self._bound:
            return
        if profile.translator_id == self.port.translator.translator_id:
            return
        paths = []
        if isinstance(self.port, DigitalOutputPort):
            specs = profile.shape.inputs_accepting(self.port.mime)
            for spec in specs:
                dst_ref = profile.port_ref(spec.name)
                paths.append(self.runtime.transport.connect(self.port, dst_ref))
        else:
            specs = profile.shape.outputs_producing(self.port.mime)
            for spec in specs:
                src_ref = profile.port_ref(spec.name)
                paths.append(self.runtime.transport.connect(src_ref, self.port))
        if paths:
            self._bound[profile.translator_id] = paths
            self.runtime.trace(
                "binding.bound",
                f"{self.port.name} x {profile.translator_id} "
                f"({len(paths)} path(s))",
            )

    def refresh(self) -> None:
        """Re-evaluate the template against the directory.

        Prunes bindings whose concrete paths have been torn down underneath
        us (a runtime crash closes every path without notifying bindings)
        and re-binds anything currently matching -- the self-healing step a
        restarted runtime runs for its standing templates.
        """
        if self.closed:
            return
        self._prune_dead_paths()
        if self.failover:
            self.reevaluate()
            return
        try:
            matches = self.runtime.directory.lookup(self.query)
        except ShardUnavailable:
            return  # hold current bindings; the next refresh retries
        for profile in matches:
            self._bind_profile(profile)

    def _prune_dead_paths(self) -> None:
        for translator_id, paths in list(self._bound.items()):
            live = [path for path in paths if not path.closed]
            if live:
                self._bound[translator_id] = live
            else:
                del self._bound[translator_id]

    # -- failover ---------------------------------------------------------------

    def _compatible_ports(self, profile: TranslatorProfile) -> bool:
        if isinstance(self.port, DigitalOutputPort):
            return bool(profile.shape.inputs_accepting(self.port.mime))
        return bool(profile.shape.outputs_producing(self.port.mime))

    def reevaluate(self) -> None:
        """Failover step: (re)bind to the best currently-matching
        translator.

        ``Directory.lookup`` already orders healthy-first (then by entry
        age), so the first compatible non-self profile is the target.  When
        nothing eligible matches we *hold* the current binding — degraded
        service beats none — and when the previous best recovers, the same
        ordering re-binds back to it.
        """
        if self.closed or not self.failover:
            return
        self._prune_dead_paths()
        own_id = self.port.translator.translator_id
        target = None
        try:
            matches = self.runtime.directory.lookup(self.query)
        except ShardUnavailable:
            # Holding the current binding beats failing the caller: the
            # degraded-service rule below already covers "nothing
            # eligible matches", and an unreachable shard owner is the
            # same situation with a structured cause.
            matches = []
        for profile in matches:
            if profile.translator_id == own_id:
                continue
            if self._compatible_ports(profile):
                target = profile
                break
        if target is None:
            return
        current = next(iter(self._bound), None)
        if current == target.translator_id:
            return
        if current is not None:
            self._unbind(current)
        self._bind_profile(target)
        if current is not None:
            self.runtime.trace(
                "binding.failover",
                f"{self.port.name}: {current} -> {target.translator_id}",
            )

    # -- inspection --------------------------------------------------------------

    @property
    def bound_translators(self) -> List[str]:
        return sorted(self._bound)

    @property
    def path_count(self) -> int:
        return sum(len(paths) for paths in self._bound.values())

    def close(self) -> None:
        """Tear down the template and every concrete path it created."""
        if self.closed:
            return
        self.closed = True
        self.runtime.directory.unsubscribe_query(self)
        self.runtime._forget_binding(self)
        self.runtime.journal.append(
            "binding-close", {"binding_id": self.binding_id}
        )
        for paths in self._bound.values():
            for path in paths:
                path.close()
        self._bound.clear()
