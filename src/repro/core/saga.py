"""Transactional multi-device bindings: journaled sagas on the WAL.

uMiddle's purpose is composing devices across platforms ("door unlocks AND
light turns on AND camera records"), but a plain composite action has no
atomicity: a mid-sequence crash leaves half-applied device state.  This
module adds the mediator-owned coordination protocol (the mediating
connector owns compensation, not the heterogeneous endpoints): a
:class:`Saga` is an ordered list of :class:`SagaStep`\\ s -- each a
translator invocation plus an optional compensation action -- driven by a
journaled state machine with the invariant **all effects applied, or all
applied effects compensated, never half**.

Protocol
--------

The *coordinator* (the runtime that called ``connect_saga``) journals
``saga-begin`` (the full step list, so recovery needs nothing else), then
per step: ``saga-step-start`` -> invoke -> ``saga-step-done``.  Every saga
record is force-synced -- state transitions never sit in the group-commit
window.  Steps execute through the structured
:meth:`~repro.core.translator.Translator.invoke` surface (breaker-wrapped
for generic translators), local targets inline and remote targets via
``saga-invoke`` control envelopes with a per-step timeout and a jittered,
budgeted retry loop.  A terminal failure (non-retryable
:class:`~repro.core.errors.InvokeError`, or an exhausted budget) flips the
saga to ``compensating``: applied steps are compensated in reverse order
(``saga-compensate`` records), then ``saga-end`` closes the saga either
way.

The *participant* side owns idempotency.  Each applied invocation journals
a ``saga-applied`` record -- in the same atomic kernel event as the
handler's device effect, and force-synced before the reply leaves -- keyed
``origin|saga|step|leg|translator``.  A re-driven step (coordinator
restart, lost reply, TCP retry) hits the cache and re-replies success
without touching the device.  Saga envelopes deliberately bypass the
transport's generic ``(origin, stream, seq)`` dedup window (they carry no
stream stamp): that window is in-memory and forgets across a cold restart,
while the reply cache is journaled -- exactly-once re-drives survive any
crash the journal survives.

Failover and the cancel protocol
--------------------------------

Query-addressed steps re-resolve through the healthy-first directory on
every attempt, so a resumed step re-binds to an equivalent translator when
the journaled target is quarantined or gone (PR 3 failover).  A timed-out
attempt is *ambiguous* -- the old target may have applied the step and
lost the reply -- so a rebind records ``rebound_from`` in its
``saga-step-start`` and queues a *cancel*: a compensation invoke pinned to
the abandoned target, drained before the saga may end.  A target that
never applied the forward step answers a cancel with "nothing to undo"
(no forward entry in its reply cache); one that did applies the
compensation.  Either way the invariant holds.

Recovery matrix
---------------

``recover()`` rebuilds every unfinished saga from the journal mirror and
re-drives it: a saga interrupted mid-step re-runs the step (fresh attempt
number, deduped by the participant cache), one interrupted
mid-compensation finishes compensating, and one that crashed between a
boundary's journal append and its side effects converges because every
record is idempotent to re-fold.  Warm restarts keep the in-memory saga
objects and just respawn the drivers.  The chaos suite crashes at every
boundary (``tests/chaos/test_saga_boundaries.py``) to prove the matrix.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.core.errors import (
    InvokeError,
    PortError,
    SagaError,
    ShardUnavailable,
    TransportError,
)
from repro.core.health import HealthState, jittered_backoff
from repro.core.messages import UMessage
from repro.core.profile import PortRef
from repro.core.query import Query

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import UMiddleRuntime

__all__ = ["SagaStep", "Saga", "SagaManager"]

_saga_counter = itertools.count(1)

#: Jittered exponential backoff between step retries (and compensation
#: retries, which have no budget -- see :meth:`SagaManager._compensate`).
RETRY_BACKOFF_BASE_S = 0.25
RETRY_BACKOFF_MAX_S = 4.0

#: A boundary hook: ``hook(saga_id, boundary, step, phase)`` called with
#: phase "pre" (before the boundary's journal append) and "post" (after
#: the append + sync).  The chaos fault model crashes runtimes from here.
BoundaryHook = Callable[[str, str, Optional[int], str], None]


def _message_to_dict(message: UMessage) -> dict:
    return {
        "mime": message.mime.mime,
        "payload": message.payload,
        "size": message.size,
        "headers": dict(message.headers),
    }


def _message_from_dict(data: dict) -> UMessage:
    return UMessage(
        mime=data["mime"],
        payload=data["payload"],
        size=data["size"],
        headers=dict(data.get("headers", {})),
    )


@dataclass(frozen=True)
class SagaStep:
    """One step: a forward invocation and its undo.

    ``query`` addresses the target through the directory (healthy-first,
    re-resolved per attempt -> failover); ``target`` pins a concrete port
    instead (no failover).  Exactly one of the two must be set.
    ``compensation`` is the message that undoes the forward effect; a step
    without one is declared side-effect free (nothing to undo, and no
    cancel is ever queued for it).
    """

    message: UMessage
    compensation: Optional[UMessage] = None
    query: Optional[Query] = None
    target: Optional[PortRef] = None
    timeout_s: float = 5.0
    max_attempts: int = 3

    def __post_init__(self):
        if (self.query is None) == (self.target is None):
            raise SagaError("a saga step needs exactly one of query/target")
        if self.query is not None:
            self.query.require_some_criterion()
        if self.max_attempts < 1:
            raise SagaError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_s <= 0:
            raise SagaError(f"timeout_s must be positive, got {self.timeout_s}")

    def to_dict(self) -> dict:
        return {
            "message": _message_to_dict(self.message),
            "compensation": (
                _message_to_dict(self.compensation)
                if self.compensation is not None
                else None
            ),
            "query": self.query.to_dict() if self.query is not None else None,
            "target": str(self.target) if self.target is not None else None,
            "timeout_s": self.timeout_s,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SagaStep":
        return cls(
            message=_message_from_dict(data["message"]),
            compensation=(
                _message_from_dict(data["compensation"])
                if data.get("compensation")
                else None
            ),
            query=Query.from_dict(data["query"]) if data.get("query") else None,
            target=PortRef.parse(data["target"]) if data.get("target") else None,
            timeout_s=data["timeout_s"],
            max_attempts=data["max_attempts"],
        )


class _Outcome:
    """One invocation attempt's result, as seen by the coordinator."""

    __slots__ = ("ok", "retryable", "timeout", "detail")

    def __init__(
        self,
        ok: bool,
        retryable: bool = False,
        timeout: bool = False,
        detail: str = "",
    ):
        self.ok = ok
        self.retryable = retryable
        self.timeout = timeout
        self.detail = detail


class Saga:
    """Coordinator-side state of one invocation group.

    Mutated only by the :class:`SagaManager` driver; every durable
    transition is journaled *before* the in-memory update, so the journal
    mirror and this object never disagree by more than the record being
    written.
    """

    def __init__(self, saga_id: str, steps: List[SagaStep]):
        self.saga_id = saga_id
        self.steps = steps
        #: running -> committed, or running -> compensating -> compensated.
        #: "aborted" marks a begin whose record never became durable.
        self.status = "running"
        #: Next forward step index (== len(steps) when all applied).
        self.current = 0
        #: Attempts already journaled for the in-flight (comp-)step.
        self.attempt = 0
        #: step index -> journaled target port-ref string.  Compensation is
        #: pinned to the journaled forward target, never re-resolved.
        self.targets: Dict[int, str] = {}
        self.applied: List[int] = []
        self.compensated: List[int] = []
        #: Abandoned-target undo queue (see the cancel protocol above).
        self.cancels: List[dict] = []
        #: step index -> True when an attempt timed out against the current
        #: target: it may have applied the step without us hearing back.
        self.suspect: Dict[int, bool] = {}
        #: Completion event (created by ``begin`` on the live kernel; a
        #: cold-recovered saga has none -- poll the manager instead).
        self.completed = None
        #: Resolution-stall tracking, in-memory only: when the current
        #: step's query matches nothing (directory still re-learning after
        #: a recovery, or the device really left), stalls wait with their
        #: own patience window instead of burning invocation attempts.
        self.stall_since: Optional[float] = None
        self.stalls = 0

    @property
    def finished(self) -> bool:
        return self.status in ("committed", "compensated", "aborted")

    def wait(self) -> Generator:
        """Process helper: ``status = yield from saga.wait()``."""
        if self.completed is not None and not self.finished:
            yield self.completed
        return self.status

    @classmethod
    def from_mirror(cls, saga_id: str, data: dict) -> "Saga":
        """Rebuild from the journal mirror's folded representation."""
        saga = cls(saga_id, [SagaStep.from_dict(s) for s in data["steps"]])
        saga.status = data["status"]
        saga.attempt = data["attempt"]
        saga.targets = {int(key): value for key, value in data["targets"].items()}
        saga.applied = list(data["applied"])
        saga.compensated = list(data["compensated"])
        saga.cancels = [dict(entry) for entry in data["cancels"]]
        if saga.status == "running":
            saga.current = (
                data["step"] if data["inflight"] else len(saga.applied)
            )
            if data["inflight"]:
                # The crash interrupted this step between start and done:
                # its journaled target may have applied it.  Treat it like
                # a timeout, so a failover rebind queues the cancel.
                saga.suspect[saga.current] = True
        return saga


class SagaManager:
    """One runtime's saga coordinator *and* participant.

    Lives at ``runtime.sagas``.  ``enabled=False`` (the default) keeps the
    manager inert: ``begin`` raises, inbound saga envelopes are refused,
    and nothing saga-shaped ever reaches the journal -- wire and journal
    bytes stay identical to a build without this module.
    """

    def __init__(self, runtime: "UMiddleRuntime", enabled: bool = False):
        self.runtime = runtime
        self.enabled = enabled
        #: Unfinished sagas this runtime coordinates, by saga_id.
        self._active: Dict[str, Saga] = {}
        #: saga_id -> terminal status, for post-completion inspection
        #: (in-memory only; a finished saga has no journal footprint).
        self._finished: Dict[str, str] = {}
        #: saga_id -> driver process.
        self._drivers: Dict[str, Any] = {}
        #: (saga_id, step, leg) -> (attempt, target, event) reply waiters.
        self._waiters: Dict[Tuple[str, int, str], Tuple[int, str, Any]] = {}
        #: Participant reply cache: "origin|saga|step|leg|translator" ->
        #: {"seq": attempt}.  Journaled (``saga-applied``) and restored by
        #: :meth:`recover`, so re-drives stay exactly-once across cold
        #: restarts.
        self._applied: Dict[str, dict] = {}
        #: In-flight participant apply processes (killed on crash).
        self._apply_procs: Set[Any] = set()
        #: True while the runtime is crashed; drivers unwind through
        #: :meth:`_halted` instead of journaling into a muted journal.
        self._suspended = False
        self._boundary_hooks: List[BoundaryHook] = []
        # Counters (cheap, test/benchmark-facing).
        self.begun = 0
        self.committed = 0
        self.rolled_back = 0
        self.rebinds = 0
        self.step_timeouts = 0
        self.duplicate_applies = 0
        self.comp_failures = 0

    # -- inspection -----------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def idle(self) -> bool:
        return not self._active

    def saga(self, saga_id: str) -> Optional[Saga]:
        return self._active.get(saga_id)

    def outcome(self, saga_id: str) -> Optional[str]:
        """Terminal status of a finished saga, when still known.

        In-memory only: a cold restart forgets outcomes (a finished saga
        leaves no journal footprint by design), so callers across cold
        crashes verify device state instead.
        """
        return self._finished.get(saga_id)

    # -- boundary hooks (chaos integration) -----------------------------------

    def add_boundary_hook(self, hook: BoundaryHook) -> None:
        self._boundary_hooks.append(hook)

    def remove_boundary_hook(self, hook: BoundaryHook) -> None:
        if hook in self._boundary_hooks:
            self._boundary_hooks.remove(hook)

    def _emit_boundary(
        self, saga_id: str, boundary: str, step: Optional[int], phase: str
    ) -> None:
        for hook in list(self._boundary_hooks):
            hook(saga_id, boundary, step, phase)

    # -- coordinator API ------------------------------------------------------

    def begin(
        self, steps: List[SagaStep], saga_id: Optional[str] = None
    ) -> Saga:
        """Start a saga; returns immediately with the driving saga object.

        The ``saga-begin`` record (carrying the full serialized step list)
        is durable before the first step starts, so recovery re-drives
        from the journal alone.
        """
        if not self.enabled:
            raise SagaError(
                "sagas are disabled on this runtime (saga_enabled=False)"
            )
        if self.runtime.crashed:
            raise SagaError("cannot begin a saga on a crashed runtime")
        if not steps:
            raise SagaError("a saga needs at least one step")
        for step in steps:
            if not isinstance(step, SagaStep):
                raise SagaError(f"not a SagaStep: {step!r}")
        sid = saga_id or f"{self.runtime.runtime_id}:s{next(_saga_counter)}"
        saga = Saga(sid, list(steps))
        saga.completed = self.runtime.kernel.event(name=f"saga-done:{sid}")
        self.begun += 1
        written = self._journal_saga(
            saga,
            "saga-begin",
            {"saga_id": sid, "steps": [step.to_dict() for step in steps]},
            boundary="begin",
        )
        if not written:
            # Crashed at the begin boundary before the record was durable:
            # the saga never began -- no step may run, nothing to recover.
            saga.status = "aborted"
            return saga
        self._active[sid] = saga
        self.runtime.trace(
            "saga.begin", f"{sid}: {len(steps)} step(s)", steps=len(steps)
        )
        if not self._halted():
            self._spawn_driver(saga)
        return saga

    # -- journal + boundary plumbing ------------------------------------------

    def _halted(self) -> bool:
        return self.runtime.crashed or self._suspended

    def _journal_saga(
        self,
        saga: Saga,
        kind: str,
        data: dict,
        boundary: str,
        step: Optional[int] = None,
    ) -> bool:
        """Append + force-sync one saga record, bracketed by the boundary
        hooks.  Returns False when a pre-phase hook crashed the runtime --
        the record was *not* written and the caller must not apply the
        in-memory transition either."""
        self._emit_boundary(saga.saga_id, boundary, step, "pre")
        if self._halted():
            return False
        journal = self.runtime.journal
        journal.append(kind, data)
        # Saga transitions are the recovery truth: never leave one in the
        # group-commit window for a crash to eat.
        journal.sync()
        self._emit_boundary(saga.saga_id, boundary, step, "post")
        return True

    def _backoff(self, saga_id: str, index: int, leg: str, attempt: int) -> float:
        return jittered_backoff(
            f"saga:{saga_id}:{index}:{leg}",
            attempt,
            RETRY_BACKOFF_BASE_S,
            RETRY_BACKOFF_MAX_S,
        )

    # -- the driver -----------------------------------------------------------

    def _spawn_driver(self, saga: Saga) -> None:
        self._drivers[saga.saga_id] = self.runtime.kernel.process(
            self._drive(saga), name=f"saga-driver:{saga.saga_id}"
        )

    def _drive(self, saga: Saga) -> Generator:
        kernel = self.runtime.kernel
        try:
            if saga.status == "running":
                while (
                    not self._halted()
                    and saga.status == "running"
                    and saga.current < len(saga.steps)
                ):
                    yield from self._drive_step(saga)
                if self._halted():
                    return
                if saga.status == "running":
                    if not (yield from self._drain_cancels(saga)):
                        return
                    self._finish(saga, "committed")
                    return
            if saga.status == "compensating" and not self._halted():
                yield from self._compensate(saga)
        finally:
            if self._drivers.get(saga.saga_id) is kernel.active_process:
                self._drivers.pop(saga.saga_id, None)

    def _drive_step(self, saga: Saga) -> Generator:
        """One forward attempt: resolve, journal start, invoke, settle.

        Mutates the saga (advance / flip to compensating / burn an
        attempt); the caller's loop re-checks the state."""
        kernel = self.runtime.kernel
        index = saga.current
        step = saga.steps[index]
        attempt = saga.attempt + 1
        if attempt > step.max_attempts:
            self._begin_compensation(
                saga, f"step {index}: retry budget exhausted"
            )
            return
        target = self._resolve_target(saga, index)
        if target is None:
            # Nothing eligible matches right now (storm, quarantine, or a
            # recovered coordinator whose directory is still re-learning
            # via gossip).  A stall is not a failed invocation, so it does
            # not burn the retry budget -- but a bounded patience window
            # (the step's whole invocation budget worth of time) keeps a
            # saga from stalling forever against an empty query.
            now = kernel.now
            if saga.stall_since is None:
                saga.stall_since = now
            if now - saga.stall_since > step.timeout_s * step.max_attempts:
                self._begin_compensation(
                    saga, f"step {index}: no eligible target"
                )
                return
            saga.stalls += 1
            if self.runtime.tracing:
                self.runtime.trace(
                    "saga.stall",
                    f"{saga.saga_id} step {index}: no eligible target "
                    f"(stall {saga.stalls})",
                )
            yield kernel.timeout(
                self._backoff(saga.saga_id, index, "s", saga.stalls)
            )
            return
        saga.stall_since = None
        prev = saga.targets.get(index)
        rebound_from = None
        if prev is not None and str(target) != prev:
            # Failover rebind (PR 3): the previous target is quarantined
            # or gone.  If an earlier attempt against it timed out it may
            # have applied the step -- queue a cancel to undo it (skipped
            # for steps with no compensation: declared side-effect free).
            if saga.suspect.get(index) and step.compensation is not None:
                rebound_from = prev
            self.rebinds += 1
            self.runtime.trace(
                "saga.rebind",
                f"{saga.saga_id} step {index}: {prev} -> {target}",
            )
        data = {
            "saga_id": saga.saga_id,
            "step": index,
            "attempt": attempt,
            "target": str(target),
        }
        if rebound_from is not None:
            data["rebound_from"] = rebound_from
        if not self._journal_saga(saga, "saga-step-start", data, "step-start", index):
            return
        saga.attempt = attempt
        saga.targets[index] = str(target)
        if rebound_from is not None:
            saga.cancels.append({"step": index, "target": rebound_from})
        if prev is not None and str(target) != prev:
            saga.suspect.pop(index, None)
        if self._halted():
            return
        outcome = yield from self._invoke(
            saga, index, target, step.message, attempt, "f", step.timeout_s
        )
        if self._halted():
            return
        if outcome.ok:
            if not self._journal_saga(
                saga,
                "saga-step-done",
                {"saga_id": saga.saga_id, "step": index, "status": "applied"},
                "step-done",
                index,
            ):
                return
            saga.applied.append(index)
            saga.current = index + 1
            saga.attempt = 0
            saga.suspect.pop(index, None)
            if self.runtime.tracing:
                self.runtime.trace(
                    "saga.step",
                    f"{saga.saga_id} step {index} applied on {target} "
                    f"(attempt {attempt})",
                )
            return
        if outcome.timeout:
            # Ambiguous: the target may have applied without replying.
            saga.suspect[index] = True
            yield kernel.timeout(self._backoff(saga.saga_id, index, "f", attempt))
            return
        # An explicit failure reply proves the step was *not* applied on
        # this target (an applied step re-replies success from the cache).
        saga.suspect.pop(index, None)
        if outcome.retryable:
            yield kernel.timeout(self._backoff(saga.saga_id, index, "f", attempt))
            return
        self._begin_compensation(saga, f"step {index}: {outcome.detail}")

    def _resolve_target(self, saga: Saga, index: int) -> Optional[PortRef]:
        step = saga.steps[index]
        if step.target is not None:
            return step.target
        monitor = self.runtime.health
        prev = saga.targets.get(index)
        best = None
        try:
            matches = self.runtime.directory.lookup(step.query)
        except ShardUnavailable:
            # No reachable shard owner right now reads as "no eligible
            # target": the caller already treats that as a retryable
            # resolution failure and re-resolves after a backoff.
            matches = []
        for profile in matches:
            if (
                monitor.enabled
                and monitor.effective_health(profile) is HealthState.QUARANTINED
            ):
                continue
            specs = profile.shape.inputs_accepting(step.message.mime)
            if not specs:
                continue
            ref = profile.port_ref(specs[0].name)
            if prev is not None and str(ref) == prev:
                # Stability: stick with the journaled target while it is
                # still eligible -- a rebind costs a cancel round.
                return ref
            if best is None:
                best = ref  # lookup orders healthy-first already
        return best

    def _begin_compensation(self, saga: Saga, reason: str) -> None:
        index = saga.current
        cancels = []
        if (
            saga.suspect.get(index)
            and saga.targets.get(index) is not None
            and index < len(saga.steps)
            and saga.steps[index].compensation is not None
        ):
            # The current step's last target may have applied it (timeout
            # ambiguity) even though we are giving up: undo it too.
            cancels.append({"step": index, "target": saga.targets[index]})
        data = {
            "saga_id": saga.saga_id,
            "phase": "begin",
            "step": index,
            "reason": reason,
        }
        if cancels:
            data["cancels"] = cancels
        if not self._journal_saga(saga, "saga-compensate", data, "compensate", index):
            return
        saga.status = "compensating"
        saga.attempt = 0
        saga.cancels.extend(cancels)
        saga.suspect.pop(index, None)
        self.rolled_back += 1
        self.runtime.trace(
            "saga.abort", f"{saga.saga_id}: compensating ({reason})"
        )

    def _compensate(self, saga: Saga) -> Generator:
        """Undo applied steps in reverse order, then drain cancels.

        Transient compensation failures retry forever (capped backoff):
        holding the all-or-compensated invariant beats a bounded wait.  A
        *terminal* compensation failure cannot be retried into success --
        it is surfaced loudly (trace + counter + ``error`` on the record)
        and the step is marked compensated so the saga can close."""
        kernel = self.runtime.kernel
        while not self._halted():
            pending = [
                i for i in reversed(saga.applied) if i not in saga.compensated
            ]
            if not pending:
                break
            index = pending[0]
            step = saga.steps[index]
            if step.compensation is None:
                if not self._journal_saga(
                    saga,
                    "saga-step-done",
                    {
                        "saga_id": saga.saga_id,
                        "step": index,
                        "status": "compensated",
                    },
                    "step-done",
                    index,
                ):
                    return
                saga.compensated.append(index)
                saga.attempt = 0
                continue
            # Compensation is pinned to the journaled forward target: undo
            # must land where the effect landed, never on an equivalent.
            target = PortRef.parse(saga.targets[index])
            attempt = saga.attempt + 1
            if not self._journal_saga(
                saga,
                "saga-compensate",
                {
                    "saga_id": saga.saga_id,
                    "phase": "step",
                    "step": index,
                    "attempt": attempt,
                    "target": str(target),
                },
                "compensate",
                index,
            ):
                return
            saga.attempt = attempt
            if self._halted():
                return
            outcome = yield from self._invoke(
                saga, index, target, step.compensation, attempt, "c",
                step.timeout_s,
            )
            if self._halted():
                return
            if not outcome.ok and not outcome.retryable and not outcome.timeout:
                self.comp_failures += 1
                self.runtime.trace(
                    "saga.compensate-failed",
                    f"{saga.saga_id} step {index}: terminal compensation "
                    f"failure on {target}: {outcome.detail}",
                )
            if outcome.ok or (not outcome.retryable and not outcome.timeout):
                done = {
                    "saga_id": saga.saga_id,
                    "step": index,
                    "status": "compensated",
                }
                if not outcome.ok:
                    done["error"] = outcome.detail
                if not self._journal_saga(saga, "saga-step-done", done, "step-done", index):
                    return
                saga.compensated.append(index)
                saga.attempt = 0
                continue
            yield kernel.timeout(self._backoff(saga.saga_id, index, "c", attempt))
        if self._halted():
            return
        if not (yield from self._drain_cancels(saga)):
            return
        self._finish(saga, "compensated")

    def _drain_cancels(self, saga: Saga) -> Generator:
        """Undo possibly-applied attempts on abandoned targets.

        Runs before *any* saga-end -- a committed saga must not leave a
        stray effect on a target it failed over away from.  Returns False
        when halted mid-drain (recovery resumes the queue from the
        journal)."""
        kernel = self.runtime.kernel
        while saga.cancels:
            if self._halted():
                return False
            entry = saga.cancels[0]
            index = entry["step"]
            target = PortRef.parse(entry["target"])
            compensation = saga.steps[index].compensation
            attempt = 0
            while compensation is not None:
                if self._halted():
                    return False
                attempt += 1
                outcome = yield from self._invoke(
                    saga, index, target, compensation, attempt, "c",
                    saga.steps[index].timeout_s,
                )
                if self._halted():
                    return False
                if outcome.ok:
                    if self.runtime.tracing:
                        self.runtime.trace(
                            "saga.cancel",
                            f"{saga.saga_id} step {index}: abandoned target "
                            f"{target} cancelled",
                        )
                    break
                if not outcome.retryable and not outcome.timeout:
                    self.comp_failures += 1
                    self.runtime.trace(
                        "saga.compensate-failed",
                        f"{saga.saga_id} step {index}: terminal cancel "
                        f"failure on {target}: {outcome.detail}",
                    )
                    break
                yield kernel.timeout(
                    self._backoff(saga.saga_id, index, "x", attempt)
                )
            if not self._journal_saga(
                saga,
                "saga-cancel-done",
                {
                    "saga_id": saga.saga_id,
                    "step": index,
                    "target": str(target),
                },
                "cancel",
                index,
            ):
                return False
            saga.cancels.pop(0)
        return True

    def _finish(self, saga: Saga, status: str) -> None:
        if not self._journal_saga(
            saga,
            "saga-end",
            {"saga_id": saga.saga_id, "status": status},
            boundary="end",
        ):
            return
        saga.status = status
        self._active.pop(saga.saga_id, None)
        self._finished[saga.saga_id] = status
        if status == "committed":
            self.committed += 1
        if saga.completed is not None and not saga.completed.triggered:
            saga.completed.succeed(status)
        self.runtime.trace("saga.end", f"{saga.saga_id}: {status}")

    # -- invocation (both legs) ----------------------------------------------

    def _invoke(
        self,
        saga: Saga,
        index: int,
        target: PortRef,
        message: UMessage,
        attempt: int,
        leg: str,
        timeout_s: float,
    ) -> Generator:
        runtime = self.runtime
        if target.runtime_id == runtime.runtime_id:
            outcome = yield from self._apply_local(
                runtime.runtime_id, saga.saga_id, index, leg, target, message,
                attempt,
            )
            return outcome
        envelope = {
            "kind": "saga-invoke",
            "saga": saga.saga_id,
            "step": index,
            "leg": leg,
            "attempt": attempt,
            "target": str(target),
            "mime": message.mime.mime,
            "payload": message.payload,
            "size": message.size,
            "headers": dict(message.headers),
        }
        key = (saga.saga_id, index, leg)
        event = runtime.kernel.event(name=f"saga-wait:{saga.saga_id}:{index}:{leg}")
        self._waiters[key] = (attempt, str(target), event)
        try:
            runtime.transport.send_saga(target.runtime_id, envelope, message.size)
        except TransportError as exc:
            self._waiters.pop(key, None)
            return _Outcome(ok=False, retryable=True, detail=str(exc))
        timeout = runtime.kernel.timeout(timeout_s)
        yield runtime.kernel.any_of([event, timeout])
        if event.processed:
            outcome = event.value
            if outcome.ok:
                runtime.health.peer_success(target.runtime_id)
            return outcome
        self._waiters.pop(key, None)
        self.step_timeouts += 1
        # Step outcomes feed the health monitor's peer overlay: repeated
        # saga timeouts quarantine the peer, which is what makes the next
        # _resolve_target fail over without waiting for lease expiry.
        runtime.health.peer_failure(target.runtime_id)
        return _Outcome(
            ok=False,
            retryable=True,
            timeout=True,
            detail=f"no reply from {target.runtime_id} within {timeout_s}s",
        )

    # -- participant side -----------------------------------------------------

    @staticmethod
    def _applied_key(
        origin: str, saga_id: str, step: int, leg: str, target: PortRef
    ) -> str:
        # The translator id is part of the key: a cancel against an
        # abandoned target and a compensation against its replacement may
        # address the same (saga, step, leg) on one runtime.
        return f"{origin}|{saga_id}|{step}|{leg}|{target.translator_id}"

    def handle_invoke(self, envelope: dict) -> None:
        """Inbound ``saga-invoke`` from a coordinator (transport ingress)."""
        origin = envelope.get("origin")
        if origin is None:
            return
        if not self.enabled:
            # Refuse loudly instead of timing out: the coordinator treats
            # this as terminal and compensates rather than hanging.
            self._reply(
                origin,
                envelope,
                _Outcome(
                    ok=False,
                    retryable=False,
                    detail=f"sagas disabled on {self.runtime.runtime_id}",
                ),
            )
            return
        self._apply_procs = {p for p in self._apply_procs if p.is_alive}
        self._apply_procs.add(
            self.runtime.kernel.process(
                self._serve_invoke(origin, envelope),
                name=f"saga-apply:{envelope['saga']}:{envelope['step']}",
            )
        )

    def _serve_invoke(self, origin: str, envelope: dict) -> Generator:
        message = UMessage(
            mime=envelope["mime"],
            payload=envelope["payload"],
            size=envelope["size"],
            headers=dict(envelope.get("headers", {})),
        )
        target = PortRef.parse(envelope["target"])
        try:
            outcome = yield from self._apply_local(
                origin,
                envelope["saga"],
                envelope["step"],
                envelope["leg"],
                target,
                message,
                envelope["attempt"],
            )
        finally:
            self._apply_procs.discard(self.runtime.kernel.active_process)
        if self._halted():
            return  # crashed while applying: no reply; the coordinator re-drives
        self._reply(origin, envelope, outcome)

    def _reply(self, origin: str, envelope: dict, outcome: _Outcome) -> None:
        try:
            self.runtime.transport._send_control(
                origin,
                {
                    "kind": "saga-result",
                    "saga": envelope["saga"],
                    "step": envelope["step"],
                    "leg": envelope["leg"],
                    "attempt": envelope["attempt"],
                    "target": envelope["target"],
                    "ok": outcome.ok,
                    "retryable": outcome.retryable,
                    "detail": outcome.detail,
                },
            )
        except TransportError:
            pass  # coordinator unknown/unreachable: its timeout re-drives

    def _apply_local(
        self,
        origin: str,
        saga_id: str,
        index: int,
        leg: str,
        target: PortRef,
        message: UMessage,
        attempt: int,
    ) -> Generator:
        """Apply one (forward or compensation) invocation exactly once.

        The handler's device effect (its final atomic segment) and the
        ``saga-applied`` record land in the same kernel event, force-synced
        before any reply -- a crash can separate neither effect from
        record nor record from effect."""
        key = self._applied_key(origin, saga_id, index, leg, target)
        if key in self._applied:
            self.duplicate_applies += 1
            return _Outcome(ok=True, detail="duplicate (already applied)")
        if leg == "c":
            forward = self._applied_key(origin, saga_id, index, "f", target)
            if forward not in self._applied:
                # The forward invocation never applied here: this is a
                # cancel for a suspected-but-innocent target.  Cache the
                # answer so retried cancels stay idempotent.
                self._remember_applied(key, attempt)
                return _Outcome(ok=True, detail="nothing to undo")
        translator = self.runtime.translators.get(target.translator_id)
        if translator is None:
            return _Outcome(
                ok=False,
                retryable=True,
                detail=f"no local translator {target.translator_id!r}",
            )
        self._emit_boundary(saga_id, "applied", index, "pre")
        if self._halted():
            return _Outcome(ok=False, retryable=True, detail="crashed before apply")
        try:
            yield from translator.invoke(target.port_name, message, step=index)
        except InvokeError as exc:
            return _Outcome(ok=False, retryable=exc.retryable, detail=str(exc))
        except PortError as exc:
            return _Outcome(ok=False, retryable=False, detail=str(exc))
        self._remember_applied(key, attempt)
        self._emit_boundary(saga_id, "applied", index, "post")
        return _Outcome(ok=True)

    def _remember_applied(self, key: str, attempt: int) -> None:
        self._applied[key] = {"seq": attempt}
        journal = self.runtime.journal
        journal.append("saga-applied", {"key": key, "seq": attempt})
        journal.sync()  # the reply must never outrun the record

    def handle_result(self, envelope: dict) -> None:
        """Inbound ``saga-result`` reply (transport ingress)."""
        key = (envelope["saga"], envelope["step"], envelope["leg"])
        waiter = self._waiters.get(key)
        if waiter is None:
            return  # late reply after a timeout: the re-drive supersedes it
        attempt, target, event = waiter
        if envelope.get("target") != target:
            return  # stale reply from an abandoned (failed-over) target
        ok = bool(envelope.get("ok"))
        if not ok and envelope.get("attempt") != attempt:
            # A success is a success whichever attempt earned it (the
            # cache replies for all of them), but a failure only settles
            # the attempt it answers -- older ones already timed out.
            return
        self._waiters.pop(key, None)
        if not event.triggered:
            event.succeed(
                _Outcome(
                    ok=ok,
                    retryable=bool(envelope.get("retryable")),
                    detail=envelope.get("detail", ""),
                )
            )

    # -- lifecycle (crash / restart / recover) --------------------------------

    def deactivate(self) -> None:
        """Crash semantics: drivers, apply processes and reply waiters die
        with the process.  The kernel's *active* process is never killed
        (a boundary hook may be crashing the runtime from inside a driver
        frame); it unwinds itself through the :meth:`_halted` checks."""
        self._suspended = True
        active = self.runtime.kernel.active_process
        for sid, proc in list(self._drivers.items()):
            if proc is active:
                continue
            if proc.is_alive:
                proc.kill("saga manager deactivated")
            self._drivers.pop(sid, None)
        for proc in list(self._apply_procs):
            if proc is active:
                continue
            if proc.is_alive:
                proc.kill("saga manager deactivated")
            self._apply_procs.discard(proc)
        self._waiters.clear()

    def discard_state(self) -> None:
        """Cold-crash semantics: in-memory saga state dies; only the
        journal survives for :meth:`recover`."""
        self._active.clear()
        self._applied.clear()
        self._finished.clear()
        self._waiters.clear()

    def resume(self) -> None:
        """Warm restart: respawn a driver for every unfinished saga.  The
        re-driven step burns a fresh attempt number; participant reply
        caches make the re-drive idempotent."""
        if not self.enabled:
            return
        self._suspended = False
        for saga in list(self._active.values()):
            if saga.saga_id not in self._drivers:
                self._spawn_driver(saga)

    def recover(self, state) -> None:
        """Cold restart: rebuild unfinished sagas and the participant
        reply cache from the journal mirror.  Drivers are respawned by
        :meth:`resume` once the transport is back up."""
        if not self.enabled:
            return
        self._applied = {
            key: {"seq": entry["seq"]}
            for key, entry in state.saga_applied.items()
        }
        for sid, data in state.sagas.items():
            self._active[sid] = Saga.from_mirror(sid, data)
        if state.sagas:
            self.runtime.trace(
                "saga.recover",
                f"{len(state.sagas)} unfinished saga(s) rebuilt from the "
                f"journal ({len(self._applied)} applied-record(s))",
            )
