"""The uMiddle core: the paper's primary contribution.

This package implements the intermediary semantic space of Section 3:

- :mod:`repro.core.shapes` -- Service Shaping (Section 3.3): digital and
  physical port types, shapes and wildcard compatibility.
- :mod:`repro.core.ports` -- runtime port objects owned by translators.
- :mod:`repro.core.messages` -- the common message representation.
- :mod:`repro.core.profile` -- translator profiles advertised in the
  intermediary semantic space.
- :mod:`repro.core.query` -- shape/attribute queries (Figure 6's Query).
- :mod:`repro.core.usdl` -- the Universal Service Description Language
  (Section 3.4): XML documents that parameterize generic translators.
- :mod:`repro.core.translator` -- device-level bridges (Section 3.2).
- :mod:`repro.core.mapper` -- service-/transport-level bridges per platform.
- :mod:`repro.core.directory` -- Figure 6's directory API plus inter-runtime
  advertisement exchange.
- :mod:`repro.core.transport` -- Figure 7's transport API: message paths,
  the translation buffer, and inter-node message delivery.
- :mod:`repro.core.binding` -- dynamic device binding (Section 3.5).
- :mod:`repro.core.qos` -- QoS control on message paths (the paper's stated
  future work, implemented here as an extension).
- :mod:`repro.core.journal` -- write-ahead journal and crash-consistent
  cold-restart recovery (durability extension).
- :mod:`repro.core.shard` -- sharded directory: rendezvous-hashed namespace
  partitions with interest-scoped gossip (federation-scale extension).
- :mod:`repro.core.saga` -- journaled multi-translator invocation groups
  with per-step compensation (transactional-composition extension).
- :mod:`repro.core.runtime` -- the uMiddle runtime hosting all of the above
  on a simulated network node.
"""

from repro.core.errors import (
    BindingError,
    DirectoryError,
    InvokeError,
    PortError,
    SagaError,
    ShapeError,
    TranslationError,
    TransportError,
    UMiddleError,
    UsdlError,
)
from repro.core.shapes import (
    Direction,
    DigitalType,
    PhysicalType,
    PortSpec,
    Shape,
)
from repro.core.messages import UMessage
from repro.core.profile import PortRef, TranslatorProfile
from repro.core.query import Query
from repro.core.usdl import UsdlBinding, UsdlDocument, UsdlPort, parse_usdl
from repro.core.health import (
    CircuitBreaker,
    HealthMonitor,
    HealthState,
    Supervisor,
)
from repro.core.journal import DurableMedia, Journal, RecoveredState, durable_media
from repro.core.ports import DigitalInputPort, DigitalOutputPort, PhysicalPort
from repro.core.translator import GenericTranslator, NativeHandle, Translator
from repro.core.mapper import Mapper
from repro.core.qos import DropPolicy, QosPolicy, TokenBucket
from repro.core.saga import Saga, SagaManager, SagaStep
from repro.core.shard import ShardMap, ShardRouter, ShardStore, shard_fabric
from repro.core.runtime import UMiddleRuntime

__all__ = [
    "UMiddleError",
    "ShapeError",
    "PortError",
    "UsdlError",
    "TranslationError",
    "InvokeError",
    "TransportError",
    "DirectoryError",
    "BindingError",
    "SagaError",
    "Direction",
    "DigitalType",
    "PhysicalType",
    "PortSpec",
    "Shape",
    "UMessage",
    "PortRef",
    "TranslatorProfile",
    "Query",
    "UsdlDocument",
    "UsdlPort",
    "UsdlBinding",
    "parse_usdl",
    "CircuitBreaker",
    "HealthMonitor",
    "HealthState",
    "Supervisor",
    "DigitalInputPort",
    "DigitalOutputPort",
    "PhysicalPort",
    "Translator",
    "GenericTranslator",
    "NativeHandle",
    "Mapper",
    "DropPolicy",
    "QosPolicy",
    "TokenBucket",
    "DurableMedia",
    "Journal",
    "RecoveredState",
    "durable_media",
    "Saga",
    "SagaManager",
    "SagaStep",
    "ShardMap",
    "ShardRouter",
    "ShardStore",
    "shard_fabric",
    "UMiddleRuntime",
]
