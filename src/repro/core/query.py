"""Queries over the intermediary semantic space (Figure 6's ``Query``).

A query selects translators by any combination of:

- identity-ish criteria: ``platform``, ``device_type``, ``role``,
  ``name_contains``;
- shape criteria with wildcard types: ``input_mime`` ("accepts this data"),
  ``output_mime`` ("produces this data"), ``physical_output`` /
  ``physical_input`` ("affects the world this way" -- the paper's
  ``visible/paper`` printing example);
- a full shape ``template`` (every template port must be satisfied);
- arbitrary ``attributes`` equality.

All given criteria must hold (conjunction).  An empty query matches every
translator, which is how Pads enumerates the semantic space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.errors import BindingError
from repro.core.profile import TranslatorProfile
from repro.core.shapes import DigitalType, Direction, PhysicalType, PortSpec, Shape

__all__ = ["Query"]


@dataclass(frozen=True)
class Query:
    """A conjunctive filter over translator profiles."""

    platform: Optional[str] = None
    device_type: Optional[str] = None
    role: Optional[str] = None
    name_contains: Optional[str] = None
    input_mime: Optional[DigitalType] = None
    output_mime: Optional[DigitalType] = None
    physical_input: Optional[PhysicalType] = None
    physical_output: Optional[PhysicalType] = None
    template: Optional[Shape] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    #: Health-aware lookup normally excludes quarantined translators; set
    #: True to see them anyway (diagnostic queries, health dashboards).
    #: Not a match criterion: it never affects matches()/is_empty().
    include_quarantined: bool = False

    def __post_init__(self):
        # Allow plain-string convenience at construction time.
        if isinstance(self.input_mime, str):
            object.__setattr__(self, "input_mime", DigitalType(self.input_mime))
        if isinstance(self.output_mime, str):
            object.__setattr__(self, "output_mime", DigitalType(self.output_mime))
        if isinstance(self.physical_input, str):
            object.__setattr__(
                self, "physical_input", PhysicalType.parse(self.physical_input)
            )
        if isinstance(self.physical_output, str):
            object.__setattr__(
                self, "physical_output", PhysicalType.parse(self.physical_output)
            )
        # Case-folded needle, computed once instead of on every matches().
        object.__setattr__(
            self,
            "_needle",
            None if self.name_contains is None else self.name_contains.lower(),
        )

    def matches(self, profile: TranslatorProfile) -> bool:
        """True if ``profile`` satisfies every criterion of this query."""
        if self.platform is not None and profile.platform != self.platform:
            return False
        if self.device_type is not None and profile.device_type != self.device_type:
            return False
        if self.role is not None and profile.role != self.role:
            return False
        if self._needle is not None and self._needle not in profile.name.lower():
            return False
        shape = profile.shape
        if self.input_mime is not None and not shape.inputs_accepting(self.input_mime):
            return False
        if self.output_mime is not None and not shape.outputs_producing(
            self.output_mime
        ):
            return False
        if self.physical_input is not None and not any(
            p.physical_type.matches(self.physical_input)
            for p in shape.physical_inputs()
        ):
            return False
        if self.physical_output is not None and not any(
            p.physical_type.matches(self.physical_output)
            for p in shape.physical_outputs()
        ):
            return False
        if self.template is not None and not shape.satisfies(self.template):
            return False
        for key, value in self.attributes.items():
            if profile.attributes.get(key) != value:
                return False
        return True

    def index_keys(self) -> Tuple[Tuple[str, str], ...]:
        """The coarse (axis, value) keys this query constrains.

        Every profile matching this query carries *all* of these keys in
        its :meth:`TranslatorProfile.index_keys` set, so the directory can
        intersect the index buckets for these keys to get a candidate
        superset before running :meth:`matches` as the exact filter.
        ``name_contains`` and ``attributes`` are not coarsely indexable and
        contribute nothing; an empty result means "must scan".
        """
        cached = self.__dict__.get("_index_keys")
        if cached is not None:
            return cached
        keys = []
        if self.platform is not None:
            keys.append(("platform", self.platform))
        if self.device_type is not None:
            keys.append(("device", self.device_type))
        if self.role is not None:
            keys.append(("role", self.role))
        if self.input_mime is not None:
            keys.append(("din", self.input_mime.mime))
        if self.output_mime is not None:
            keys.append(("dout", self.output_mime.mime))
        if self.physical_input is not None:
            keys.append(("pin", str(self.physical_input)))
        if self.physical_output is not None:
            keys.append(("pout", str(self.physical_output)))
        if self.template is not None:
            for spec in self.template:
                if spec.is_digital:
                    axis = "din" if spec.direction is Direction.IN else "dout"
                    keys.append((axis, spec.digital_type.mime))
                else:
                    axis = "pin" if spec.direction is Direction.IN else "pout"
                    keys.append((axis, str(spec.physical_type)))
        result = tuple(dict.fromkeys(keys))
        object.__setattr__(self, "_index_keys", result)
        return result

    # -- wire form (journaled with standing-query records) ------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for the write-ahead journal (standing queries must
        survive a cold restart).  Only set criteria are emitted."""
        data: Dict[str, Any] = {}
        if self.platform is not None:
            data["platform"] = self.platform
        if self.device_type is not None:
            data["device_type"] = self.device_type
        if self.role is not None:
            data["role"] = self.role
        if self.name_contains is not None:
            data["name_contains"] = self.name_contains
        if self.input_mime is not None:
            data["input_mime"] = self.input_mime.mime
        if self.output_mime is not None:
            data["output_mime"] = self.output_mime.mime
        if self.physical_input is not None:
            data["physical_input"] = str(self.physical_input)
        if self.physical_output is not None:
            data["physical_output"] = str(self.physical_output)
        if self.template is not None:
            ports = []
            for spec in self.template:
                entry: Dict[str, Any] = {
                    "name": spec.name,
                    "direction": spec.direction.value,
                }
                if spec.is_digital:
                    entry["mime"] = spec.digital_type.mime
                else:
                    entry["physical"] = str(spec.physical_type)
                ports.append(entry)
            data["template"] = ports
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.include_quarantined:
            data["include_quarantined"] = True
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Query":
        template = None
        if "template" in data:
            specs = []
            for entry in data["template"]:
                direction = Direction(entry["direction"])
                if "mime" in entry:
                    specs.append(
                        PortSpec(
                            name=entry["name"],
                            direction=direction,
                            digital_type=DigitalType(entry["mime"]),
                        )
                    )
                else:
                    specs.append(
                        PortSpec(
                            name=entry["name"],
                            direction=direction,
                            physical_type=PhysicalType.parse(entry["physical"]),
                        )
                    )
            template = Shape(specs)
        return cls(
            platform=data.get("platform"),
            device_type=data.get("device_type"),
            role=data.get("role"),
            name_contains=data.get("name_contains"),
            input_mime=data.get("input_mime"),
            output_mime=data.get("output_mime"),
            physical_input=data.get("physical_input"),
            physical_output=data.get("physical_output"),
            template=template,
            attributes=dict(data.get("attributes", {})),
            include_quarantined=bool(data.get("include_quarantined", False)),
        )

    def is_empty(self) -> bool:
        """True if this query has no criteria (matches everything)."""
        return (
            self.platform is None
            and self.device_type is None
            and self.role is None
            and self.name_contains is None
            and self.input_mime is None
            and self.output_mime is None
            and self.physical_input is None
            and self.physical_output is None
            and self.template is None
            and not self.attributes
        )

    def require_some_criterion(self) -> None:
        """Raise if the query is empty; used by connect-by-query, where an
        empty query would bind to *every* translator in the space."""
        if self.is_empty():
            raise BindingError("refusing to bind with an empty (match-all) query")
