"""USDL: the Universal Service Description Language (Section 3.4).

USDL is the paper's XML language describing how a native device is
represented in the intermediary semantic space.  A mapper creates a
translator (and its shape) for a native device from a USDL document: the
document lists the device's ports and, for each digital port, a *binding*
describing how the generic per-platform translator realizes it against the
native device.

Binding kinds:

``action``
    An input port invokes a native action (e.g. UPnP ``SetPower``) with the
    fixed ``<argument>`` values; the message payload is additionally passed
    in the argument named by ``payload-argument``, if given.  This realizes
    the paper's light example: two digital input ports, one bound to
    ``SetPower`` with ``Power=1`` (switch on), one with ``Power=0``.

``event``
    A native event (UPnP GENA variable, Bluetooth HID report, mote reading)
    is forwarded out of an output port.

``sink``
    An input port feeds a native data sink (e.g. the MediaRenderer's
    rendering session, a BIP printer's OBEX PUT).

``source``
    A native data source feeds an output port (e.g. images pulled from a
    BIP camera).

Example document::

    <usdl name="upnp-binary-light" platform="upnp"
          device-type="urn:schemas-upnp-org:device:BinaryLight:1">
      <profile role="light" description="A switchable light"/>
      <ports>
        <digital name="power-on" direction="in"
                 mime="application/x-umiddle-switch">
          <binding kind="action" target="SetPower">
            <argument name="Power" value="1"/>
          </binding>
        </digital>
        <physical name="illumination" direction="out"
                  perception="visible" media="light"/>
      </ports>
      <entities>
        <entity name="upnp-device"/>
      </entities>
    </usdl>

The ``<entities>`` section declares auxiliary uMiddle entities the
translator must materialize (the paper's Figure 10 notes the UPnP clock
translator carries "two more uMiddle entities for the UPnP service/device
hierarchy"); they contribute to translator instantiation cost.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import UsdlError
from repro.core.shapes import (
    Direction,
    DigitalType,
    PhysicalType,
    PortSpec,
    Shape,
)

__all__ = [
    "BINDING_KINDS",
    "UsdlBinding",
    "UsdlPort",
    "UsdlDocument",
    "parse_usdl",
]

BINDING_KINDS = ("action", "event", "sink", "source")


@dataclass(frozen=True)
class UsdlBinding:
    """How a digital port is realized against the native device."""

    kind: str
    target: str
    arguments: Dict[str, str] = field(default_factory=dict)
    payload_argument: Optional[str] = None

    def __post_init__(self):
        if self.kind not in BINDING_KINDS:
            raise UsdlError(
                f"unknown binding kind {self.kind!r} (expected one of {BINDING_KINDS})"
            )
        if not self.target:
            raise UsdlError("binding target must be non-empty")


@dataclass(frozen=True)
class UsdlPort:
    """One port declaration in a USDL document."""

    name: str
    direction: Direction
    digital_type: Optional[DigitalType] = None
    physical_type: Optional[PhysicalType] = None
    binding: Optional[UsdlBinding] = None

    def __post_init__(self):
        if (self.digital_type is None) == (self.physical_type is None):
            raise UsdlError(
                f"port {self.name!r} must be exactly one of digital/physical"
            )
        if self.physical_type is not None and self.binding is not None:
            raise UsdlError(f"physical port {self.name!r} cannot carry a binding")
        if self.digital_type is not None and self.digital_type.is_pattern:
            raise UsdlError(
                f"port {self.name!r}: USDL ports need concrete MIME types, "
                f"got {self.digital_type}"
            )
        if self.physical_type is not None and self.physical_type.is_pattern:
            raise UsdlError(
                f"port {self.name!r}: USDL ports need concrete physical types"
            )
        if self.binding is not None:
            inbound = self.direction is Direction.IN
            if self.binding.kind in ("action", "sink") and not inbound:
                raise UsdlError(
                    f"port {self.name!r}: {self.binding.kind} bindings require "
                    "an input port"
                )
            if self.binding.kind in ("event", "source") and inbound:
                raise UsdlError(
                    f"port {self.name!r}: {self.binding.kind} bindings require "
                    "an output port"
                )

    @property
    def is_digital(self) -> bool:
        return self.digital_type is not None

    def to_spec(self) -> PortSpec:
        return PortSpec(
            name=self.name,
            direction=self.direction,
            digital_type=self.digital_type,
            physical_type=self.physical_type,
        )


@dataclass(frozen=True)
class UsdlDocument:
    """A parsed, validated USDL document."""

    name: str
    platform: str
    device_type: str
    role: str
    description: str = ""
    attributes: Dict[str, str] = field(default_factory=dict)
    ports: List[UsdlPort] = field(default_factory=list)
    entities: List[str] = field(default_factory=list)

    def __post_init__(self):
        if not self.name:
            raise UsdlError("document name must be non-empty")
        if not self.platform:
            raise UsdlError("platform must be non-empty")
        # XML 1.0 cannot represent most control characters; reject them up
        # front rather than producing unparseable documents.
        for label, text in (("name", self.name), ("description", self.description)):
            if any(ord(ch) < 0x20 and ch not in "\t\n\r" for ch in text):
                raise UsdlError(f"control characters in document {label}")
        names = [p.name for p in self.ports]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise UsdlError(f"duplicate port names: {duplicates}")

    # -- derived views ------------------------------------------------------

    def shape(self) -> Shape:
        return Shape(p.to_spec() for p in self.ports)

    def port(self, name: str) -> UsdlPort:
        for port in self.ports:
            if port.name == name:
                return port
        raise UsdlError(f"no port named {name!r} in document {self.name!r}")

    @property
    def port_count(self) -> int:
        return len(self.ports)

    @property
    def entity_count(self) -> int:
        return len(self.entities)

    def event_ports(self) -> List[UsdlPort]:
        return [p for p in self.ports if p.binding and p.binding.kind == "event"]

    def source_ports(self) -> List[UsdlPort]:
        return [p for p in self.ports if p.binding and p.binding.kind == "source"]

    # -- serialization ---------------------------------------------------------

    def to_xml(self) -> str:
        root = ET.Element(
            "usdl",
            {
                "name": self.name,
                "platform": self.platform,
                "device-type": self.device_type,
            },
        )
        profile = ET.SubElement(
            root, "profile", {"role": self.role, "description": self.description}
        )
        for key in sorted(self.attributes):
            ET.SubElement(
                profile, "attribute", {"name": key, "value": str(self.attributes[key])}
            )
        ports_el = ET.SubElement(root, "ports")
        for port in self.ports:
            if port.is_digital:
                port_el = ET.SubElement(
                    ports_el,
                    "digital",
                    {
                        "name": port.name,
                        "direction": port.direction.value,
                        "mime": port.digital_type.mime,
                    },
                )
                if port.binding is not None:
                    attrs = {"kind": port.binding.kind, "target": port.binding.target}
                    if port.binding.payload_argument:
                        attrs["payload-argument"] = port.binding.payload_argument
                    binding_el = ET.SubElement(port_el, "binding", attrs)
                    for arg in sorted(port.binding.arguments):
                        ET.SubElement(
                            binding_el,
                            "argument",
                            {"name": arg, "value": port.binding.arguments[arg]},
                        )
            else:
                ET.SubElement(
                    ports_el,
                    "physical",
                    {
                        "name": port.name,
                        "direction": port.direction.value,
                        "perception": port.physical_type.perception,
                        "media": port.physical_type.media,
                    },
                )
        if self.entities:
            entities_el = ET.SubElement(root, "entities")
            for entity in self.entities:
                ET.SubElement(entities_el, "entity", {"name": entity})
        return ET.tostring(root, encoding="unicode")


def _require(element: ET.Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None or value == "":
        raise UsdlError(
            f"<{element.tag}> is missing required attribute {attribute!r}"
        )
    return value


def _parse_binding(element: ET.Element) -> UsdlBinding:
    arguments = {}
    for arg in element.findall("argument"):
        arguments[_require(arg, "name")] = arg.get("value", "")
    return UsdlBinding(
        kind=_require(element, "kind"),
        target=_require(element, "target"),
        arguments=arguments,
        payload_argument=element.get("payload-argument"),
    )


def _parse_direction(element: ET.Element) -> Direction:
    raw = _require(element, "direction")
    try:
        return Direction(raw)
    except ValueError:
        raise UsdlError(
            f"<{element.tag} name={element.get('name')!r}>: bad direction {raw!r}"
        ) from None


def parse_usdl(text: str) -> UsdlDocument:
    """Parse and validate a USDL document from its XML text."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise UsdlError(f"malformed XML: {exc}") from exc
    if root.tag != "usdl":
        raise UsdlError(f"root element must be <usdl>, got <{root.tag}>")

    profile_el = root.find("profile")
    if profile_el is None:
        raise UsdlError("missing <profile> element")
    attributes = {}
    for attr in profile_el.findall("attribute"):
        attributes[_require(attr, "name")] = attr.get("value", "")

    ports: List[UsdlPort] = []
    ports_el = root.find("ports")
    if ports_el is not None:
        for element in ports_el:
            if element.tag == "digital":
                binding_el = element.find("binding")
                ports.append(
                    UsdlPort(
                        name=_require(element, "name"),
                        direction=_parse_direction(element),
                        digital_type=DigitalType(_require(element, "mime")),
                        binding=(
                            _parse_binding(binding_el)
                            if binding_el is not None
                            else None
                        ),
                    )
                )
            elif element.tag == "physical":
                ports.append(
                    UsdlPort(
                        name=_require(element, "name"),
                        direction=_parse_direction(element),
                        physical_type=PhysicalType(
                            _require(element, "perception"),
                            _require(element, "media"),
                        ),
                    )
                )
            else:
                raise UsdlError(f"unexpected element <{element.tag}> under <ports>")

    entities = []
    entities_el = root.find("entities")
    if entities_el is not None:
        for element in entities_el.findall("entity"):
            entities.append(_require(element, "name"))

    return UsdlDocument(
        name=_require(root, "name"),
        platform=_require(root, "platform"),
        device_type=_require(root, "device-type"),
        role=_require(profile_el, "role"),
        description=profile_el.get("description", ""),
        attributes=attributes,
        ports=ports,
        entities=entities,
    )
