"""QoS control on message paths.

The paper's Section 5.3 observes that when one side of a bridge uses a
narrower network (Java RMI in their test, or Bluetooth), data "accumulates
in the uMiddle's translation buffer", and concludes that "the universal
interoperability layer should provide some QoS control mechanism" --
explicitly deferred as future work (Section 7).

We implement that mechanism as an extension: each message path may carry a
:class:`QosPolicy` combining

- a token-bucket rate limit (bytes/second with a burst allowance), and
- a bounded translation buffer with a drop policy for overflow.

The ablation benchmark shows the effect: without QoS a fast producer
overflows the buffer of a path into a slow (Bluetooth-rate) consumer;
with a rate limit the drop rate goes to zero at the cost of throughput.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.errors import TransportError

__all__ = ["DropPolicy", "TokenBucket", "QosPolicy"]


class DropPolicy(enum.Enum):
    """What a full translation buffer does with the next message."""

    #: Drop the arriving message (tail drop).
    DROP_NEWEST = "drop-newest"
    #: Evict the oldest buffered message to admit the arriving one.
    DROP_OLDEST = "drop-oldest"


class TokenBucket:
    """A classic token bucket: ``rate_bps`` sustained, ``burst_bytes`` burst.

    Time is supplied by the caller (simulated seconds), keeping the bucket
    independent of any particular kernel.
    """

    def __init__(self, rate_bps: float, burst_bytes: int):
        if rate_bps <= 0:
            raise TransportError("token bucket rate must be positive")
        if burst_bytes <= 0:
            raise TransportError("token bucket burst must be positive")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self._tokens = min(
                self.burst_bytes,
                self._tokens + (now - self._last_refill) * self.rate_bps / 8.0,
            )
            self._last_refill = now

    def delay_for(self, size_bytes: int, now: float) -> float:
        """Seconds to wait before ``size_bytes`` may pass; consumes tokens.

        A message larger than the burst still passes (after accumulating
        enough tokens), so oversized messages slow the path rather than
        wedging it.
        """
        self._refill(now)
        self._tokens -= size_bytes
        if self._tokens >= 0:
            return 0.0
        # Deficit must be repaid at the sustained rate.
        return -self._tokens * 8.0 / self.rate_bps

    @property
    def available(self) -> float:
        return self._tokens


@dataclass
class QosPolicy:
    """Per-path quality-of-service settings."""

    #: Optional rate limit applied before each delivery.
    rate: Optional[TokenBucket] = None
    #: Buffer capacity in messages; ``None`` uses the calibrated default.
    buffer_capacity: Optional[int] = None
    #: Overflow behaviour.
    drop_policy: DropPolicy = DropPolicy.DROP_NEWEST

    @classmethod
    def rate_limited(
        cls,
        rate_bps: float,
        burst_bytes: int = 64 * 1024,
        buffer_capacity: Optional[int] = None,
        drop_policy: DropPolicy = DropPolicy.DROP_NEWEST,
    ) -> "QosPolicy":
        return cls(
            rate=TokenBucket(rate_bps, burst_bytes),
            buffer_capacity=buffer_capacity,
            drop_policy=drop_policy,
        )

    # -- wire form (journaled with path-open records) -----------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for the write-ahead journal.

        The token bucket's *configuration* is durable; its fill level is
        volatile state that a recovered path restarts full, like any
        freshly created limiter.
        """
        data: Dict[str, Any] = {"drop_policy": self.drop_policy.value}
        if self.buffer_capacity is not None:
            data["buffer_capacity"] = self.buffer_capacity
        if self.rate is not None:
            data["rate_bps"] = self.rate.rate_bps
            data["burst_bytes"] = self.rate.burst_bytes
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QosPolicy":
        rate = None
        if "rate_bps" in data:
            rate = TokenBucket(data["rate_bps"], data["burst_bytes"])
        return cls(
            rate=rate,
            buffer_capacity=data.get("buffer_capacity"),
            drop_policy=DropPolicy(data.get("drop_policy", "drop-newest")),
        )
