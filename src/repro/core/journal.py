"""Write-ahead journal: crash-consistent durability for uMiddle runtimes.

uMiddle intermediaries live "in the infrastructure" (design choice 4-b), so
a crashed intermediary must come back without losing the slice of the
semantic space it was hosting.  Before this module, ``crash()``/``restart()``
only worked because the Python objects happened to survive in memory.  This
module gives each runtime *simulated stable storage*: an append-only,
checksummed, monotonically-sequenced record log (an ARIES-style redo log)
that survives ``crash(lose_state=True)``, plus the replay machinery that
reconstructs directory state, standing queries, concrete paths, the unacked
per-peer spool, and breaker snapshots purely from the log.

Record format
-------------

One record per line::

    <crc32 hex, 8 chars> <canonical JSON: {"data": ..., "kind": ..., "lsn": n}>\\n

- ``lsn`` is a per-journal monotonic sequence number; a gap or regression
  during replay stops the scan (a torn or reordered tail is never applied).
- The CRC-32 covers the JSON body; a mismatch (bit flip) also stops the
  scan.  Replay therefore always recovers the *last checksum-consistent
  prefix* -- anything after the first bad record is discarded and must be
  re-learned through the normal gossip pull.

Group commit
------------

Appends go to an in-memory *pending* buffer; ``fsync_interval`` seconds
later (simulated time) the buffer is flushed to the durable blob in one
write.  ``fsync_interval=0`` (the default) flushes synchronously on every
append.  A crash drops whatever is still pending -- exactly the durability
window the interval buys in exchange for fewer (simulated and wall-clock)
flushes, which the durability benchmark measures.

Checkpoints
-----------

The journal keeps a live *mirror* of what replay would produce (every
appended record is folded into it immediately).  Every
``CHECKPOINT_EVERY_RECORDS`` appends -- and at the end of every cold
recovery -- the blob is rewritten as a single ``checkpoint`` record
serialized from the mirror and the LSN chain restarts at 1, so neither
the blob nor replay time grows with uptime.  The mirror is also the
repair source when :meth:`Journal.sync` finds the durable tail corrupted
underneath a live runtime: instead of appending after the damage (which
would strand every later record past the first bad frame), it rewrites
the blob from the mirror, so nothing that was ever appended is lost.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.codec import (
    CodecError,
    decode_journal_body,
    encode_journal_body,
    is_binary_journal_body,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import UMiddleRuntime
    from repro.simnet.net import Network

__all__ = [
    "DurableMedia",
    "Journal",
    "RecoveredState",
    "durable_media",
    "encode_record",
    "replay_blob",
]


class DurableMedia:
    """Simulated stable storage: one append-only blob per ``runtime_id``.

    The media object lives on the :class:`~repro.simnet.net.Network` (one
    "disk array" per simulation), so it survives any runtime's
    ``crash(lose_state=True)`` while still being isolated between
    simulations -- a fresh testbed starts with empty disks.
    """

    def __init__(self):
        self._blobs: Dict[str, bytearray] = {}

    def blob(self, runtime_id: str) -> bytearray:
        return self._blobs.setdefault(runtime_id, bytearray())

    def size(self, runtime_id: str) -> int:
        return len(self._blobs.get(runtime_id, b""))

    def erase(self, runtime_id: str) -> None:
        self._blobs.pop(runtime_id, None)

    # -- corruption hooks (chaos's JournalCorruption fault) -----------------

    def truncate_tail(self, runtime_id: str, nbytes: int) -> int:
        """Chop ``nbytes`` off the end of the blob (a torn tail write).

        Returns the number of bytes actually removed.
        """
        blob = self.blob(runtime_id)
        removed = min(max(nbytes, 0), len(blob))
        if removed:
            del blob[len(blob) - removed :]
        return removed

    def flip_tail_byte(self, runtime_id: str, offset_from_end: int = 4) -> bool:
        """XOR one byte near the end of the blob (tail-record bit rot).

        Returns False when the blob is too short to corrupt.
        """
        blob = self.blob(runtime_id)
        if not blob:
            return False
        index = len(blob) - 1 - min(max(offset_from_end, 0), len(blob) - 1)
        blob[index] ^= 0x5A
        return True


def durable_media(network: "Network") -> DurableMedia:
    """The network's stable-storage array, created on first use."""
    media = getattr(network, "_durable_media", None)
    if media is None:
        media = DurableMedia()
        network._durable_media = media
    return media


def encode_record(
    lsn: int, kind: str, data: dict, binary: bool = False, compress: bool = False
) -> bytes:
    """One checksummed, line-framed journal record.

    With ``binary=True`` the body is the escaped binary codec encoding
    (magic byte ``0xB2``, see :mod:`repro.core.codec`) instead of
    canonical JSON; the line framing and CRC are identical either way,
    and mixed blobs replay fine -- each body declares its own format in
    its first byte.  ``compress=True`` (binary only) additionally
    zlib-deflates the body (magic ``0xB3``) when that shrinks it -- used
    for checkpoint records, which serialize the whole mirror.
    """
    record = {"data": data, "kind": kind, "lsn": lsn}
    if binary:
        body = encode_journal_body(record, compress=compress)
    else:
        body = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    return b"%08x " % (zlib.crc32(body) & 0xFFFFFFFF) + body + b"\n"


def _decode_line(line: bytes) -> Optional[dict]:
    """Parse one framed record; None on any structural or checksum fault."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    body = line[9:]
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    if is_binary_journal_body(body):
        try:
            record = decode_journal_body(body)
        except CodecError:
            return None
    else:
        try:
            record = json.loads(body)
        except ValueError:
            return None
    if not isinstance(record, dict) or "lsn" not in record or "kind" not in record:
        return None
    return record


def replay_blob(blob: bytes) -> Tuple[List[dict], int, int]:
    """Scan a journal blob to its last checksum-consistent prefix.

    Returns ``(records, clean_bytes, discarded_bytes)``.  The scan stops at
    the first record that is torn (no trailing newline), fails its CRC,
    does not parse, or breaks LSN monotonicity; everything after that point
    counts as discarded.
    """
    records: List[dict] = []
    offset = 0
    last_lsn = 0
    view = bytes(blob)
    while offset < len(view):
        end = view.find(b"\n", offset)
        if end < 0:
            break  # torn tail: partial record without its newline
        record = _decode_line(view[offset:end])
        if record is None:
            break
        lsn = record["lsn"]
        if not isinstance(lsn, int) or lsn != last_lsn + 1:
            break
        last_lsn = lsn
        records.append(record)
        offset = end + 1
    return records, offset, len(view) - offset


@dataclass
class RecoveredState:
    """Everything :meth:`Journal.replay` reconstructs from the log."""

    #: translator_id -> profile wire dict, in registration order, with the
    #: latest journaled health applied.
    registered: Dict[str, dict] = field(default_factory=dict)
    #: binding_id -> {"port", "query", "failover"} for open standing queries.
    bindings: Dict[str, dict] = field(default_factory=dict)
    #: path_id -> {"src", "dst", "qos"} for open application paths.
    paths: Dict[str, dict] = field(default_factory=dict)
    #: peer runtime_id -> ordered unacked (envelope, size) spool entries.
    spool: Dict[str, List[Tuple[dict, int]]] = field(default_factory=dict)
    #: sender-side stream key -> highest sequence number ever assigned or
    #: reserved (``seq-reserve`` records keep this ahead of anything that
    #: could have reached a receiver, even when the spool records for the
    #: group-commit window died with the crash).
    stream_seqs: Dict[str, int] = field(default_factory=dict)
    #: peer runtime_id -> last breaker snapshot ({"state", "times_opened"}).
    breakers: Dict[str, dict] = field(default_factory=dict)
    #: translator_id -> {"profile": wire dict, "shards": [shard ids]} for
    #: profiles stored on this node's owned shards (sharded directory).
    shard_entries: Dict[str, dict] = field(default_factory=dict)
    #: shard ids this node owned at its last ownership transition.
    shard_owned: List[int] = field(default_factory=list)
    #: this node's monotonic ownership epoch (quorum-gated bumps,
    #: replication only).
    shard_epoch: int = 0
    #: str(shard) -> {"epoch", "entries": {translator_id: profile dict}}
    #: for the passive replica slices this node holds for its peers.
    replica_slices: Dict[str, dict] = field(default_factory=dict)
    #: saga_id -> folded saga progress (see ``_apply``'s saga-* kinds):
    #: the coordinator-side state machine for every saga that has begun
    #: but not yet journaled its ``saga-end``.
    sagas: Dict[str, dict] = field(default_factory=dict)
    #: participant-side reply cache: "origin|saga|step|leg" -> {"seq"} for
    #: every saga invocation this runtime durably applied, so a re-driven
    #: step after recovery re-replies instead of re-applying.
    saga_applied: Dict[str, dict] = field(default_factory=dict)
    #: peers whose binary-codec negotiation completed (``codec-ready``),
    #: so a cold-restarted runtime resumes binary frames immediately.
    codec_peers: List[str] = field(default_factory=list)
    #: peers whose ``z`` (compression) capability negotiation completed
    #: (``codec-z-ready``), so a cold-restarted runtime resumes delta and
    #: compressed frames immediately.
    codec_z_peers: List[str] = field(default_factory=list)
    #: last journaled load-weight placement state (``shard-weights``):
    #: {"epoch": int, "tiers": {str(shard): tier}} -- restoring it before
    #: placement keeps weighted shard assignment deterministic across
    #: recovery.
    shard_weights: Dict[str, object] = field(default_factory=dict)
    applied_records: int = 0
    discarded_bytes: int = 0

    @property
    def truncated(self) -> bool:
        return self.discarded_bytes > 0


class Journal:
    """One runtime's write-ahead log on the simulated durable media.

    Redo-only: the runtime appends a record *before* applying each durable
    state change (registration, standing query, application path, spool
    envelope, ack, breaker trip/close, health change, sequence
    reservation), and :meth:`replay` folds the record stream back into a
    :class:`RecoveredState`.  ``muted`` suppresses appends while the
    runtime is crashed or replaying -- recovery must never re-log what it
    reads.
    """

    #: Rewrite the blob as one checkpoint record after this many appends,
    #: so blob size and replay time stay bounded regardless of uptime.
    CHECKPOINT_EVERY_RECORDS = 2048

    def __init__(
        self,
        runtime: "UMiddleRuntime",
        media: DurableMedia,
        enabled: bool = True,
        fsync_interval: float = 0.0,
        binary: bool = False,
        compress: bool = False,
    ):
        self.runtime = runtime
        self.media = media
        self.enabled = enabled
        self.fsync_interval = fsync_interval
        #: Encode new record bodies with the binary codec.  Purely a
        #: write-side choice: replay reads both formats, so flipping the
        #: flag across restarts (or recovering a JSON-era blob with the
        #: codec on) needs no migration.
        self.binary = binary
        #: zlib-deflate checkpoint record bodies (binary codec only).
        #: Also write-side only: replay discriminates by the body's magic
        #: byte, so compressed and plain checkpoints coexist in one blob.
        self.compress = compress and binary
        #: True while the runtime is crashed or replaying: appends dropped.
        self.muted = False
        self._pending = bytearray()
        self._flush_scheduled = False
        # Continue the LSN chain of whatever already survives on disk, and
        # seed the mirror from it.
        records, clean, _junk = replay_blob(self.blob)
        self._lsn = records[-1]["lsn"] if records else 0
        #: Byte copy of the last durably-flushed frame, compared against
        #: the blob tail before every flush (see :meth:`sync`).
        self._tail_frame = self._last_frame(self.blob, clean)
        #: The most recent record appended to the pending buffer; becomes
        #: the new tail frame when the buffer flushes.
        self._pending_tail = b""
        self._mirror = RecoveredState(applied_records=len(records))
        for record in records:
            self._apply(self._mirror, record["kind"], record["data"])
        self._records_since_checkpoint = 0
        #: Foldable pending tail: metadata of the last appended record when
        #: it is a still-in-the-group-commit-buffer ``spool-batch``, so the
        #: next :meth:`append_spool` for the same peer can grow it in place
        #: instead of appending a new record.  Invalidated by any other
        #: append, by a flush, and by checkpoints.
        self._fold: Optional[dict] = None
        self.records_appended = 0
        self.fsyncs = 0
        self.bytes_written = 0
        self.records_lost = 0
        self.checkpoints = 0
        self.tail_repairs = 0
        self.spool_folds = 0

    @property
    def blob(self) -> bytearray:
        return self.media.blob(self.runtime.runtime_id)

    @property
    def size_bytes(self) -> int:
        return len(self.blob)

    @property
    def pending_bytes(self) -> int:
        return len(self._pending)

    # -- writing ------------------------------------------------------------

    def append(self, kind: str, data: dict) -> None:
        if not self.enabled or self.muted:
            return
        # Any interleaved record ends the foldable run: growing an earlier
        # spool-batch past e.g. a spool-flush would reorder replay.
        self._fold = None
        # Encode before committing the LSN: a non-serializable payload must
        # raise without leaving a gap in the sequence chain.
        record = encode_record(self._lsn + 1, kind, data, self.binary)
        self._lsn += 1
        self._pending += record
        self._pending_tail = record
        self.records_appended += 1
        self._apply(self._mirror, kind, data)
        self._records_since_checkpoint += 1
        if self._records_since_checkpoint >= self.CHECKPOINT_EVERY_RECORDS:
            self.checkpoint()
        elif self.fsync_interval <= 0:
            self.sync()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            self.runtime.kernel.call_later(self.fsync_interval, self._flush_timer)

    def append_spool(self, peer: str, envelope: dict, size: int) -> None:
        """Write-ahead-log one spooled envelope, amortized.

        Consecutive spool appends for the same peer that are still sitting
        in the group-commit buffer fold into a single growing
        ``spool-batch`` record (shared framing, one line on disk), so WAL
        bytes and record counts per message drop at high rates.  Durability
        is unchanged: the entry rides the same pending buffer the
        equivalent ``spool`` record would, and with ``fsync_interval=0``
        every batch record is flushed holding exactly one entry.  Raises
        :class:`TypeError` (before mutating any state) when the envelope is
        not JSON-representable, like :meth:`append`.
        """
        if not self.enabled or self.muted:
            return
        fold = self._fold
        if fold is not None and fold["peer"] == peer:
            entries = fold["data"]["entries"]
            entries.append([envelope, size])
            try:
                record = encode_record(
                    fold["lsn"], "spool-batch", fold["data"], self.binary
                )
            except TypeError:
                entries.pop()
                raise
            del self._pending[fold["start"]:]
            self._pending += record
            self._pending_tail = record
            self.spool_folds += 1
            self._apply_spool_entry(self._mirror, peer, envelope, size)
            return
        data = {"peer": peer, "entries": [[envelope, size]]}
        start = len(self._pending)
        self.append("spool-batch", data)
        if len(self._pending) > start:
            # The record is still pending (group commit): the next spool
            # append for this peer may grow it in place.
            self._fold = {"peer": peer, "data": data, "lsn": self._lsn, "start": start}

    def sync(self) -> None:
        """Flush the pending buffer to stable storage (one group commit).

        The tail frame is verified before extending: corruption that lands
        while the runtime is alive (the ``JournalCorruption`` fault has no
        crashed precondition) would otherwise strand every later record
        behind the first bad frame.  Damage is repaired by rewriting the
        blob from the in-memory mirror, so nothing appended is lost."""
        if not self._pending:
            return
        blob = self.blob
        if not self._tail_consistent(blob):
            self.tail_repairs += 1
            self.runtime.trace(
                "journal.tail-repair",
                "durable tail corrupted under a live runtime; "
                "rewrote stable storage from the in-memory mirror",
            )
            self.checkpoint()
            return
        self._tail_frame = self._pending_tail
        blob.extend(self._pending)
        self.fsyncs += 1
        self.bytes_written += len(self._pending)
        self._pending.clear()
        self._fold = None  # flushed records are immutable

    @staticmethod
    def _last_frame(view, end: int) -> bytes:
        """The bytes of the last whole frame in ``view[:end]``."""
        if end <= 0:
            return b""
        start = view.rfind(b"\n", 0, end - 1) + 1
        return bytes(view[start:end])

    def _tail_consistent(self, blob: bytearray) -> bool:
        """Cheap memcmp check that the durable tail still ends with the
        frame we last flushed -- no per-flush CRC or JSON work."""
        tail = self._tail_frame
        if not tail:
            return len(blob) == 0
        return blob.endswith(tail)

    def checkpoint(self) -> None:
        """Compact: replace the whole blob with one ``checkpoint`` record
        serialized from the mirror (which already folds any pending
        records), restarting the LSN chain at 1.  Checkpoints are durable
        immediately -- they never sit in the group-commit buffer."""
        if not self.enabled or self.muted:
            return
        record = encode_record(
            1, "checkpoint", self._checkpoint_data(), self.binary,
            compress=self.compress,
        )
        blob = self.blob
        del blob[:]
        blob.extend(record)
        self._pending.clear()  # effects already folded into the snapshot
        self._fold = None
        self._lsn = 1
        self._tail_frame = record
        self._records_since_checkpoint = 0
        self.checkpoints += 1
        self.fsyncs += 1
        self.bytes_written += len(record)

    def _checkpoint_data(self) -> dict:
        mirror = self._mirror
        data = {
            "registered": mirror.registered,
            "bindings": mirror.bindings,
            "paths": mirror.paths,
            "spool": {
                peer: [[envelope, size] for envelope, size in entries]
                for peer, entries in mirror.spool.items()
            },
            "stream_seqs": mirror.stream_seqs,
            "breakers": mirror.breakers,
        }
        # Shard fields ride the checkpoint only when sharding ever wrote
        # them, so non-sharded checkpoints stay byte-identical.
        if mirror.shard_entries:
            data["shard_entries"] = mirror.shard_entries
        if mirror.shard_owned:
            data["shard_owned"] = mirror.shard_owned
        if mirror.shard_epoch:
            data["shard_epoch"] = mirror.shard_epoch
        if mirror.replica_slices:
            data["replica_slices"] = mirror.replica_slices
        # Same discipline for saga and codec-negotiation state: the fields
        # appear only once something wrote them, so saga-off (and
        # codec-off) checkpoints stay byte-identical to PR 7.
        if mirror.sagas:
            data["sagas"] = mirror.sagas
        if mirror.saga_applied:
            data["saga_applied"] = mirror.saga_applied
        if mirror.codec_peers:
            data["codec_peers"] = mirror.codec_peers
        if mirror.codec_z_peers:
            data["codec_z_peers"] = mirror.codec_z_peers
        if mirror.shard_weights:
            data["shard_weights"] = mirror.shard_weights
        return data

    def _flush_timer(self) -> None:
        self._flush_scheduled = False
        self.sync()

    def lose_pending(self) -> None:
        """Crash semantics: un-fsynced group-commit records die with the
        process.  The LSN counter rolls back with them so the on-disk chain
        stays gapless, and the mirror is rebuilt from what is actually
        durable."""
        if self._pending:
            lost = self._pending.count(b"\n")
            self.records_lost += lost
            self._lsn -= lost
            self._pending.clear()
            self._pending_tail = b""
            self._fold = None
            records, _clean, _junk = replay_blob(self.blob)
            self._mirror = RecoveredState(applied_records=len(records))
            for record in records:
                self._apply(self._mirror, record["kind"], record["data"])

    # -- replay -------------------------------------------------------------

    def replay(self) -> RecoveredState:
        """Fold the durable record stream into a :class:`RecoveredState`.

        Stops at the last checksum-consistent prefix (see
        :func:`replay_blob`); a corrupted tail is physically truncated so
        post-recovery appends extend the consistent prefix, not the junk.
        """
        records, clean_bytes, discarded = replay_blob(self.blob)
        if discarded:
            self.media.truncate_tail(self.runtime.runtime_id, discarded)
            self._lsn = records[-1]["lsn"] if records else 0
        self._tail_frame = self._last_frame(self.blob, clean_bytes)
        state = RecoveredState(
            applied_records=len(records), discarded_bytes=discarded
        )
        for record in records:
            self._apply(state, record["kind"], record["data"])
        # The replayed state becomes the new mirror; the caller (cold
        # recovery) may prune it -- e.g. drop opaque spool markers it will
        # not respool -- before sealing it with a checkpoint.
        self._mirror = state
        return state

    @staticmethod
    def _apply(state: RecoveredState, kind: str, data: dict) -> None:
        if kind == "register":
            profile = data["profile"]
            state.registered[profile["translator_id"]] = dict(profile)
        elif kind == "unregister":
            state.registered.pop(data["translator_id"], None)
        elif kind == "health":
            entry = state.registered.get(data["translator_id"])
            if entry is not None:
                entry["health"] = data["health"]
        elif kind == "binding-open":
            state.bindings[data["binding_id"]] = data
        elif kind == "binding-close":
            state.bindings.pop(data["binding_id"], None)
        elif kind == "path-open":
            state.paths[data["path_id"]] = data
        elif kind == "path-close":
            state.paths.pop(data["path_id"], None)
        elif kind == "spool":
            Journal._apply_spool_entry(
                state, data["peer"], data["envelope"], data["size"]
            )
        elif kind == "spool-batch":
            # One record covering a run of consecutive spool appends (the
            # amortized form written by append_spool); entries stay FIFO.
            for envelope, size in data["entries"]:
                Journal._apply_spool_entry(state, data["peer"], envelope, size)
        elif kind == "spool-ack":
            entries = state.spool.get(data["peer"])
            if entries:
                # Per-peer delivery is FIFO: the ack pops from the head.  A
                # batched sender acks a whole batch with one record
                # carrying ``count``; legacy records pop exactly one.
                count = int(data.get("count", 1))
                del entries[: max(count, 0)]
        elif kind == "spool-drop":
            entries = state.spool.get(data["peer"])
            if entries:
                entries.pop(0)  # capacity eviction also removes the oldest
        elif kind == "spool-flush":
            state.spool.pop(data["peer"], None)
        elif kind == "seq-reserve":
            # Durable before any envelope in its range can reach a peer,
            # so a recovered sender never re-stamps a sequence number the
            # receiver may already have seen (lost group-commit window or
            # truncated tail notwithstanding).
            stream = data["stream"]
            state.stream_seqs[stream] = max(
                state.stream_seqs.get(stream, 0), int(data["upto"])
            )
        elif kind == "shard-store":
            profile = data["profile"]
            state.shard_entries[profile["translator_id"]] = {
                "profile": dict(profile),
                "shards": list(data["shards"]),
            }
        elif kind == "shard-remove":
            state.shard_entries.pop(data["translator_id"], None)
        elif kind == "shard-drop":
            dropped = set(data["shards"])
            for translator_id in list(state.shard_entries):
                entry = state.shard_entries[translator_id]
                remaining = [s for s in entry["shards"] if s not in dropped]
                if remaining:
                    entry["shards"] = remaining
                else:
                    del state.shard_entries[translator_id]
        elif kind == "shard-own":
            state.shard_owned = list(data["owned"])
        elif kind == "shard-epoch":
            state.shard_epoch = int(data["epoch"])
        elif kind == "shard-replica":
            slice_ = state.replica_slices.setdefault(
                str(data["shard"]), {"epoch": 0, "entries": {}}
            )
            if data.get("full"):
                slice_["entries"] = {}
            for profile in data.get("profiles", ()):
                slice_["entries"][profile["translator_id"]] = dict(profile)
            for translator_id in data.get("removed", ()):
                slice_["entries"].pop(translator_id, None)
            slice_["epoch"] = max(
                int(slice_["epoch"]), int(data.get("epoch", 0))
            )
        elif kind == "shard-promote":
            # Warm-ingest promotion: the promoted profiles are already in
            # the journal as shard-replica slice content, so the record
            # only points at them (shard -> translator ids) instead of
            # re-serializing every profile.
            for shard_key, translator_ids in data["slices"].items():
                slice_ = state.replica_slices.get(str(shard_key))
                if not slice_:
                    continue
                for translator_id in translator_ids:
                    profile = slice_["entries"].get(translator_id)
                    if profile is None:
                        continue
                    entry = state.shard_entries.get(translator_id)
                    if entry is None:
                        state.shard_entries[translator_id] = {
                            "profile": dict(profile),
                            "shards": [int(shard_key)],
                        }
                    elif int(shard_key) not in entry["shards"]:
                        entry["shards"] = sorted(
                            set(entry["shards"]) | {int(shard_key)}
                        )
        elif kind == "shard-replica-drop":
            for shard in data["shards"]:
                state.replica_slices.pop(str(shard), None)
        elif kind == "shard-replica-origin":
            origin = data["origin"]
            for slice_ in state.replica_slices.values():
                slice_["entries"] = {
                    translator_id: profile
                    for translator_id, profile in slice_["entries"].items()
                    if profile.get("runtime_id") != origin
                }
        elif kind == "saga-begin":
            state.sagas[data["saga_id"]] = {
                "steps": [dict(step) for step in data["steps"]],
                "status": "running",
                "step": 0,
                "attempt": 0,
                "inflight": False,
                "targets": {},
                "applied": [],
                "compensated": [],
                "cancels": [],
            }
        elif kind == "saga-step-start":
            saga = state.sagas.get(data["saga_id"])
            if saga is not None:
                saga["step"] = data["step"]
                saga["attempt"] = data["attempt"]
                saga["inflight"] = True
                saga["targets"][str(data["step"])] = data["target"]
                rebound_from = data.get("rebound_from")
                if rebound_from:
                    # The previous target may have applied the step before
                    # going dark; a cancel undoes it if it did.
                    saga["cancels"].append(
                        {"step": data["step"], "target": rebound_from}
                    )
        elif kind == "saga-step-done":
            saga = state.sagas.get(data["saga_id"])
            if saga is not None:
                saga["inflight"] = False
                saga["attempt"] = 0
                if data["status"] == "applied":
                    saga["applied"].append(data["step"])
                    saga["step"] = data["step"] + 1
                else:  # compensated
                    saga["compensated"].append(data["step"])
        elif kind == "saga-compensate":
            saga = state.sagas.get(data["saga_id"])
            if saga is not None:
                saga["status"] = "compensating"
                if data.get("phase") == "begin":
                    saga["inflight"] = False
                    saga["attempt"] = 0
                    saga["cancels"].extend(
                        dict(entry) for entry in data.get("cancels", ())
                    )
                else:  # one compensation attempt for one step
                    saga["step"] = data["step"]
                    saga["attempt"] = data["attempt"]
                    saga["inflight"] = True
        elif kind == "saga-cancel-done":
            saga = state.sagas.get(data["saga_id"])
            if saga is not None:
                for index, entry in enumerate(saga["cancels"]):
                    if (
                        entry["step"] == data["step"]
                        and entry["target"] == data["target"]
                    ):
                        del saga["cancels"][index]
                        break
        elif kind == "saga-end":
            state.sagas.pop(data["saga_id"], None)
        elif kind == "saga-applied":
            state.saga_applied[data["key"]] = {"seq": data["seq"]}
        elif kind == "codec-ready":
            if data["peer"] not in state.codec_peers:
                state.codec_peers.append(data["peer"])
        elif kind == "codec-z-ready":
            if data["peer"] not in state.codec_z_peers:
                state.codec_z_peers.append(data["peer"])
        elif kind == "shard-weights":
            state.shard_weights = {
                "epoch": int(data.get("epoch", 0)),
                "tiers": dict(data.get("tiers", {})),
            }
        elif kind == "checkpoint":
            state.registered = {
                key: dict(value) for key, value in data["registered"].items()
            }
            state.bindings = dict(data["bindings"])
            state.paths = dict(data["paths"])
            state.spool = {
                peer: [(envelope, size) for envelope, size in entries]
                for peer, entries in data["spool"].items()
            }
            state.stream_seqs = {
                key: int(value) for key, value in data["stream_seqs"].items()
            }
            state.breakers = dict(data["breakers"])
            state.shard_entries = {
                key: {
                    "profile": dict(value["profile"]),
                    "shards": list(value["shards"]),
                }
                for key, value in data.get("shard_entries", {}).items()
            }
            state.shard_owned = list(data.get("shard_owned", ()))
            state.shard_epoch = int(data.get("shard_epoch", 0))
            state.replica_slices = {
                key: {
                    "epoch": int(value.get("epoch", 0)),
                    "entries": {
                        translator_id: dict(profile)
                        for translator_id, profile in value["entries"].items()
                    },
                }
                for key, value in data.get("replica_slices", {}).items()
            }
            state.sagas = {}
            for key, value in data.get("sagas", {}).items():
                saga = dict(value)
                saga["steps"] = [dict(step) for step in value["steps"]]
                saga["targets"] = dict(value["targets"])
                saga["applied"] = list(value["applied"])
                saga["compensated"] = list(value["compensated"])
                saga["cancels"] = [dict(entry) for entry in value["cancels"]]
                state.sagas[key] = saga
            state.saga_applied = {
                key: dict(value)
                for key, value in data.get("saga_applied", {}).items()
            }
            state.codec_peers = list(data.get("codec_peers", ()))
            state.codec_z_peers = list(data.get("codec_z_peers", ()))
            state.shard_weights = dict(data.get("shard_weights", {}))
        elif kind == "breaker":
            if data.get("state") == "closed":
                state.breakers.pop(data["peer"], None)
            else:
                state.breakers[data["peer"]] = data
        # Unknown kinds are ignored: forward-compatible replay.

    @staticmethod
    def _apply_spool_entry(
        state: RecoveredState, peer: str, envelope: dict, size: int
    ) -> None:
        state.spool.setdefault(peer, []).append((envelope, size))
        stream = envelope.get("stream")
        seq = envelope.get("seq")
        if stream is not None and isinstance(seq, int):
            state.stream_seqs[stream] = max(state.stream_seqs.get(stream, 0), seq)
