"""Deterministic fault injection and self-healing verification.

The paper's dynamic device binding (Section 3.5) claims that a standing
``connect(Port, Query)`` template *re-binds adaptively as translators
appear and disappear* -- a claim that can only be tested by actually making
things disappear.  This package provides that adversary:

- :mod:`repro.chaos.faults` -- typed faults: link degradation and outage,
  network partitions, uMiddle runtime crash/restart, native device and
  host churn, mapper stalls.
- :mod:`repro.chaos.controller` -- :class:`FaultPlan` schedules (hand-built
  or seeded via :func:`random_plan`) executed by a :class:`ChaosController`
  on the simulation kernel, with every injection and recovery emitted to
  the trace.
- :mod:`repro.chaos.metrics` -- time-to-rebind and message-loss extraction
  from the combined trace, for the chaos recovery benchmark.

Everything is driven by the deterministic sim kernel: the same plan (or
the same ``random_plan`` seed) against the same topology replays an
identical trace, so chaos results are exactly reproducible.
"""

from repro.chaos.controller import ChaosController, FaultPlan, random_plan
from repro.chaos.faults import (
    ChaosError,
    DeviceChurn,
    Fault,
    JournalCorruption,
    LinkAsymmetry,
    LinkDegrade,
    LinkOutage,
    MapperStall,
    NetworkPartition,
    NodeChurn,
    RuntimeCrash,
    SagaBoundaryCrash,
)
from repro.chaos.metrics import RecoveryReport, first_record_after, time_to_rebind

__all__ = [
    "ChaosError",
    "Fault",
    "LinkDegrade",
    "LinkOutage",
    "LinkAsymmetry",
    "NetworkPartition",
    "RuntimeCrash",
    "JournalCorruption",
    "NodeChurn",
    "DeviceChurn",
    "MapperStall",
    "SagaBoundaryCrash",
    "FaultPlan",
    "ChaosController",
    "random_plan",
    "RecoveryReport",
    "first_record_after",
    "time_to_rebind",
]
