"""Fault scheduling: plans and the controller that executes them.

A :class:`FaultPlan` is an ordered collection of
:class:`~repro.chaos.faults.Fault` objects with builder conveniences; a
:class:`ChaosController` arms a plan against a running simulation,
scheduling each injection and recovery on the kernel and emitting
``chaos.inject`` / ``chaos.heal`` records to the network's
:class:`~repro.simnet.trace.TraceRecorder` so recovery behaviour is fully
observable (and comparable across runs -- the determinism tests diff these
records between replays).

:func:`random_plan` derives a reproducible plan from an integer seed, for
soak-style chaos runs over any testbed topology.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, TYPE_CHECKING

from repro.chaos.faults import (
    ChaosError,
    DeviceChurn,
    Fault,
    JournalCorruption,
    LinkAsymmetry,
    LinkDegrade,
    LinkOutage,
    MapperStall,
    NetworkPartition,
    NodeChurn,
    RuntimeCrash,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.kernel import Kernel
    from repro.simnet.trace import TraceRecorder

__all__ = ["FaultPlan", "ChaosController", "random_plan"]


class FaultPlan:
    """An ordered schedule of faults.

    Faults can be appended directly with :meth:`add`, or through the typed
    builder methods, which return the created fault::

        plan = FaultPlan()
        plan.link_outage(lan, at=5.0, duration=2.0)
        plan.runtime_crash(runtime, at=10.0, restart_after=8.0)
    """

    def __init__(self, faults: Iterable[Fault] = ()):
        self.faults: List[Fault] = list(faults)

    def add(self, fault: Fault) -> Fault:
        self.faults.append(fault)
        return fault

    # -- builders -------------------------------------------------------------

    def link_degrade(self, medium, at: float, duration: float, **properties) -> LinkDegrade:
        return self.add(LinkDegrade(medium, at, duration, **properties))

    def link_outage(self, medium, at: float, duration: Optional[float] = None) -> LinkOutage:
        return self.add(LinkOutage(medium, at, duration))

    def link_asymmetry(
        self, medium, src: str, dst: str, at: float, duration: Optional[float] = None
    ) -> LinkAsymmetry:
        return self.add(LinkAsymmetry(medium, src, dst, at, duration))

    def network_partition(
        self, medium, groups, at: float, duration: Optional[float] = None
    ) -> NetworkPartition:
        return self.add(NetworkPartition(medium, groups, at, duration))

    def runtime_crash(
        self,
        runtime,
        at: float,
        restart_after: Optional[float] = None,
        lose_state: bool = False,
    ) -> RuntimeCrash:
        return self.add(
            RuntimeCrash(runtime, at, restart_after, lose_state=lose_state)
        )

    def journal_corruption(
        self,
        runtime,
        at: float,
        mode: str = "truncate",
        nbytes: int = 7,
        offset_from_end: int = 4,
    ) -> JournalCorruption:
        return self.add(
            JournalCorruption(
                runtime, at, mode=mode, nbytes=nbytes, offset_from_end=offset_from_end
            )
        )

    def node_churn(self, node, at: float, duration: Optional[float] = None) -> NodeChurn:
        return self.add(NodeChurn(node, at, duration))

    def device_churn(
        self, at: float, down, up=None, duration: Optional[float] = None, name: str = "device"
    ) -> DeviceChurn:
        return self.add(DeviceChurn(at, down, up=up, duration=duration, name=name))

    def mapper_stall(self, mapper, at: float, duration: Optional[float] = None) -> MapperStall:
        return self.add(MapperStall(mapper, at, duration))

    # -- inspection ------------------------------------------------------------

    @property
    def horizon(self) -> float:
        """Latest scheduled activity (inject or heal) in the plan."""
        horizon = 0.0
        for fault in self.faults:
            end = fault.at + (fault.duration or 0.0)
            horizon = max(horizon, end)
        return horizon

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)


class ChaosController:
    """Executes a :class:`FaultPlan` against a running simulation.

    ``arm()`` schedules every fault relative to the current simulated time;
    the simulation is then driven normally (``testbed.settle`` or
    ``kernel.run``) and faults fire on schedule.  Every injection and
    recovery is stamped on the fault object and emitted to the trace.
    """

    def __init__(self, kernel: "Kernel", trace: "TraceRecorder", plan: FaultPlan):
        self.kernel = kernel
        self.trace = trace
        self.plan = plan
        self.armed = False
        self.injected: List[Fault] = []
        self.healed: List[Fault] = []

    def arm(self) -> "ChaosController":
        """Schedule the plan's faults; idempotent."""
        if self.armed:
            return self
        self.armed = True
        # Deterministic ordering: schedule in (time, plan-order) order.
        for fault in sorted(self.plan, key=lambda f: f.at):
            self.kernel.call_later(fault.at, lambda f=fault: self._inject(f))
        return self

    def _inject(self, fault: Fault) -> None:
        fault.injected_at = self.kernel.now
        self.injected.append(fault)
        self.trace.emit(
            "chaos.inject",
            fault.describe(),
            fault=fault.label,
            duration=fault.duration,
        )
        fault.inject()
        if fault.duration is not None:
            self.kernel.call_later(fault.duration, lambda: self._heal(fault))

    def _heal(self, fault: Fault) -> None:
        fault.healed_at = self.kernel.now
        self.healed.append(fault)
        self.trace.emit("chaos.heal", fault.describe(), fault=fault.label)
        fault.heal()

    # -- inspection ------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Faults injected but not (yet) healed."""
        return len(self.injected) - len(self.healed)


def random_plan(
    seed: int,
    horizon: float,
    media: Iterable = (),
    runtimes: Iterable = (),
    nodes: Iterable = (),
    mappers: Iterable = (),
    fault_count: int = 8,
    min_duration: float = 1.0,
    max_duration: float = 10.0,
    lose_state: bool = False,
    asymmetry: bool = False,
) -> FaultPlan:
    """Derive a reproducible fault schedule from an integer seed.

    Targets are drawn uniformly from whichever of ``media``, ``runtimes``,
    ``nodes`` and ``mappers`` are non-empty; times are uniform over
    ``[0, horizon)`` and durations over ``[min_duration, max_duration)``.
    The same seed and target lists always produce the identical plan, so a
    seeded chaos run is exactly replayable.  ``lose_state=True`` makes
    every drawn runtime crash a cold one (healed via journal recovery)
    without disturbing the draw sequence, so the *schedule* is identical
    to the warm plan for the same seed.  ``asymmetry=True`` adds one-way
    link blocks to the draw pool; it is opt-in because adding a kind
    changes which faults a given seed produces.
    """
    if horizon <= 0:
        raise ChaosError("random_plan horizon must be positive")
    if fault_count < 1:
        raise ChaosError("random_plan needs fault_count >= 1")
    media = list(media)
    runtimes = list(runtimes)
    nodes = list(nodes)
    mappers = list(mappers)
    kinds = []
    if media:
        kinds += ["outage", "degrade", "partition"]
        if asymmetry:
            kinds += ["asymmetry"]
    if runtimes:
        kinds += ["crash"]
    if nodes:
        kinds += ["node"]
    if mappers:
        kinds += ["stall"]
    if not kinds:
        raise ChaosError("random_plan needs at least one target population")

    rng = random.Random(seed)
    plan = FaultPlan()
    for _ in range(fault_count):
        kind = rng.choice(kinds)
        at = rng.uniform(0.0, horizon)
        duration = rng.uniform(min_duration, max_duration)
        if kind == "outage":
            plan.link_outage(rng.choice(media), at=at, duration=duration)
        elif kind == "degrade":
            plan.link_degrade(
                rng.choice(media),
                at=at,
                duration=duration,
                loss_rate=round(rng.uniform(0.05, 0.4), 3),
            )
        elif kind == "partition":
            medium = rng.choice(media)
            names = sorted(interface.node.name for interface in medium.interfaces)
            if len(names) < 2:
                plan.link_outage(medium, at=at, duration=duration)
                continue
            cut = rng.randrange(1, len(names))
            plan.network_partition(
                medium, [names[:cut], names[cut:]], at=at, duration=duration
            )
        elif kind == "asymmetry":
            medium = rng.choice(media)
            names = sorted(interface.node.name for interface in medium.interfaces)
            if len(names) < 2:
                plan.link_outage(medium, at=at, duration=duration)
                continue
            src, dst = rng.sample(names, 2)
            plan.link_asymmetry(medium, src, dst, at=at, duration=duration)
        elif kind == "crash":
            plan.runtime_crash(
                rng.choice(runtimes),
                at=at,
                restart_after=duration,
                lose_state=lose_state,
            )
        elif kind == "node":
            plan.node_churn(rng.choice(nodes), at=at, duration=duration)
        elif kind == "stall":
            plan.mapper_stall(rng.choice(mappers), at=at, duration=duration)
    return plan
