"""Fault definitions for the chaos subsystem.

Each fault is a small object with an injection time (``at``, seconds after
the controlling :class:`~repro.chaos.controller.ChaosController` is armed),
an optional ``duration`` after which it heals, and ``inject()``/``heal()``
methods that flip the corresponding switch in the simulation:

- :class:`LinkDegrade` -- temporarily worsen a medium's loss/latency/
  bandwidth (and restore the originals on heal).
- :class:`LinkOutage` -- take a medium down entirely.
- :class:`LinkAsymmetry` -- block one direction between two nodes on a
  segment (A hears B but not vice versa).
- :class:`NetworkPartition` -- split one segment into isolated groups.
- :class:`RuntimeCrash` -- crash a uMiddle runtime abruptly; ``duration``
  is the restart delay (``None`` = it stays dead); ``lose_state=True``
  makes it a cold crash healed via journal recovery.
- :class:`JournalCorruption` -- tear or bit-flip the tail of a runtime's
  write-ahead journal on stable storage.
- :class:`NodeChurn` -- power-cycle a simulated host (native device churn
  at the hardware level).
- :class:`DeviceChurn` -- power-cycle a platform device through arbitrary
  ``down``/``up`` callables (platform stacks expose different power APIs).
- :class:`MapperStall` -- suspend a mapper's discovery loop.
- :class:`SagaBoundaryCrash` -- crash a runtime exactly when a saga
  crosses a named journal boundary (``step-start``, ``step-done``,
  ``compensate``, ``applied``...), before or after the record is durable;
  the precision tool behind the crash-at-every-boundary recovery proof.

Faults never use wall-clock randomness themselves; combined with the
deterministic sim kernel and seeded media loss, an identical
:class:`~repro.chaos.controller.FaultPlan` replays an identical trace.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.mapper import Mapper
    from repro.core.runtime import UMiddleRuntime
    from repro.simnet.net import Medium, Node

__all__ = [
    "ChaosError",
    "Fault",
    "LinkDegrade",
    "LinkOutage",
    "LinkAsymmetry",
    "NetworkPartition",
    "RuntimeCrash",
    "JournalCorruption",
    "NodeChurn",
    "DeviceChurn",
    "MapperStall",
    "SagaBoundaryCrash",
]


class ChaosError(Exception):
    """Raised for malformed fault plans (negative times, bad targets...)."""


class Fault:
    """Base class: one scheduled fault with an optional recovery.

    ``at`` is relative to the moment the controller is armed; ``duration``
    (when given) schedules :meth:`heal` that many seconds after injection.
    """

    def __init__(self, at: float, duration: Optional[float] = None):
        if at < 0:
            raise ChaosError(f"fault time must be non-negative, got {at}")
        if duration is not None and duration < 0:
            raise ChaosError(f"fault duration must be non-negative, got {duration}")
        self.at = at
        self.duration = duration
        #: Simulated times stamped by the controller.
        self.injected_at: Optional[float] = None
        self.healed_at: Optional[float] = None

    @property
    def label(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        """One-line human description (used in trace records)."""
        return self.label

    def inject(self) -> None:
        raise NotImplementedError

    def heal(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.describe()} at={self.at} duration={self.duration}>"


class LinkDegrade(Fault):
    """Degrade a medium's properties for a while, then restore them."""

    def __init__(
        self,
        medium: "Medium",
        at: float,
        duration: float,
        loss_rate: Optional[float] = None,
        latency_s: Optional[float] = None,
        bandwidth_bps: Optional[float] = None,
    ):
        if loss_rate is None and latency_s is None and bandwidth_bps is None:
            raise ChaosError("LinkDegrade needs at least one property to degrade")
        if loss_rate is not None and not 0.0 <= loss_rate <= 1.0:
            raise ChaosError(f"loss_rate must be in [0, 1], got {loss_rate}")
        if latency_s is not None and latency_s < 0:
            raise ChaosError(f"latency_s must be non-negative, got {latency_s}")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ChaosError(f"bandwidth_bps must be positive, got {bandwidth_bps}")
        super().__init__(at, duration)
        self.medium = medium
        self.loss_rate = loss_rate
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self._saved: dict = {}

    def describe(self) -> str:
        parts = []
        if self.loss_rate is not None:
            parts.append(f"loss={self.loss_rate}")
        if self.latency_s is not None:
            parts.append(f"latency={self.latency_s}")
        if self.bandwidth_bps is not None:
            parts.append(f"bw={self.bandwidth_bps}")
        return f"degrade {self.medium.name} ({', '.join(parts)})"

    def inject(self) -> None:
        self._saved = {
            "loss_rate": self.medium.loss_rate,
            "latency_s": self.medium.latency_s,
            "bandwidth_bps": self.medium.bandwidth_bps,
        }
        if self.loss_rate is not None:
            self.medium.set_loss_rate(self.loss_rate)
        if self.latency_s is not None:
            self.medium.set_latency(self.latency_s)
        if self.bandwidth_bps is not None:
            self.medium.set_bandwidth(self.bandwidth_bps)

    def heal(self) -> None:
        if self.loss_rate is not None:
            self.medium.set_loss_rate(self._saved["loss_rate"])
        if self.latency_s is not None:
            self.medium.set_latency(self._saved["latency_s"])
        if self.bandwidth_bps is not None:
            self.medium.set_bandwidth(self._saved["bandwidth_bps"])


class LinkOutage(Fault):
    """Total outage of one medium: every frame offered to it is dropped."""

    def __init__(self, medium: "Medium", at: float, duration: Optional[float] = None):
        super().__init__(at, duration)
        self.medium = medium

    def describe(self) -> str:
        return f"outage {self.medium.name}"

    def inject(self) -> None:
        self.medium.set_up(False)

    def heal(self) -> None:
        self.medium.set_up(True)


class NetworkPartition(Fault):
    """Split a segment into isolated groups of node names, then heal."""

    def __init__(
        self,
        medium: "Medium",
        groups: List,
        at: float,
        duration: Optional[float] = None,
    ):
        if not groups:
            raise ChaosError("NetworkPartition needs at least one group")
        super().__init__(at, duration)
        self.medium = medium
        self.groups = [list(group) for group in groups]

    def describe(self) -> str:
        return f"partition {self.medium.name} into {len(self.groups)} group(s)"

    def inject(self) -> None:
        self.medium.partition(self.groups)

    def heal(self) -> None:
        self.medium.heal()


class LinkAsymmetry(Fault):
    """Block one *direction* of a segment between two nodes: ``dst`` stops
    hearing ``src`` while ``src`` still hears ``dst`` -- the one-way radio
    fade partitions and outages cannot model, and the classic trigger for
    split-brain suspicion (A declares B dead while B still sees A's
    traffic)."""

    def __init__(
        self,
        medium: "Medium",
        src: str,
        dst: str,
        at: float,
        duration: Optional[float] = None,
    ):
        if src == dst:
            raise ChaosError("LinkAsymmetry needs two distinct nodes")
        super().__init__(at, duration)
        self.medium = medium
        self.src = src
        self.dst = dst

    def describe(self) -> str:
        return f"asymmetry {self.medium.name}: {self.src} -/-> {self.dst}"

    def inject(self) -> None:
        self.medium.block_direction(self.src, self.dst)

    def heal(self) -> None:
        self.medium.unblock_direction(self.src, self.dst)


class RuntimeCrash(Fault):
    """Crash a uMiddle runtime; ``duration`` is the restart delay.

    ``lose_state=True`` makes it a *cold* crash: all in-memory state dies
    with the process and healing goes through
    :meth:`~repro.core.runtime.UMiddleRuntime.recover` (rebuild from the
    write-ahead journal) instead of the warm
    :meth:`~repro.core.runtime.UMiddleRuntime.restart`.
    """

    def __init__(
        self,
        runtime: "UMiddleRuntime",
        at: float,
        restart_after: Optional[float] = None,
        lose_state: bool = False,
    ):
        super().__init__(at, restart_after)
        self.runtime = runtime
        self.lose_state = lose_state

    def describe(self) -> str:
        cold = " (cold)" if self.lose_state else ""
        return f"crash {self.runtime.runtime_id}{cold}"

    def inject(self) -> None:
        self.runtime.crash(lose_state=self.lose_state)

    def heal(self) -> None:
        if self.lose_state:
            self.runtime.recover()
        else:
            self.runtime.restart()


class JournalCorruption(Fault):
    """Corrupt the tail of a runtime's write-ahead journal on stable
    storage.

    ``mode="truncate"`` chops ``nbytes`` off the end (a torn tail write at
    crash time); ``mode="flip"`` XORs one byte ``offset_from_end`` bytes
    before the end (tail-record bit rot).  Either way, the next
    :meth:`~repro.core.runtime.UMiddleRuntime.recover` must replay to the
    last checksum-consistent prefix -- never raise -- and re-learn the rest
    through normal gossip.  Corruption has no heal: recovery itself
    truncates the damage away.
    """

    def __init__(
        self,
        runtime: "UMiddleRuntime",
        at: float,
        mode: str = "truncate",
        nbytes: int = 7,
        offset_from_end: int = 4,
    ):
        if mode not in ("truncate", "flip"):
            raise ChaosError(
                f"JournalCorruption mode must be 'truncate' or 'flip', got {mode!r}"
            )
        if nbytes < 1:
            raise ChaosError(f"JournalCorruption nbytes must be >= 1, got {nbytes}")
        super().__init__(at, None)
        self.runtime = runtime
        self.mode = mode
        self.nbytes = nbytes
        self.offset_from_end = offset_from_end

    def describe(self) -> str:
        detail = f"-{self.nbytes}B" if self.mode == "truncate" else "bit flip"
        return f"corrupt journal of {self.runtime.runtime_id} ({detail})"

    def inject(self) -> None:
        from repro.core.journal import durable_media

        media = durable_media(self.runtime.network)
        if self.mode == "truncate":
            media.truncate_tail(self.runtime.runtime_id, self.nbytes)
        else:
            media.flip_tail_byte(self.runtime.runtime_id, self.offset_from_end)

    def heal(self) -> None:  # pragma: no cover - corruption never heals
        pass


class NodeChurn(Fault):
    """Power-cycle a simulated host (it drops all traffic while down)."""

    def __init__(self, node: "Node", at: float, duration: Optional[float] = None):
        super().__init__(at, duration)
        self.node = node

    def describe(self) -> str:
        return f"power-cycle node {self.node.name}"

    def inject(self) -> None:
        self.node.set_up(False)

    def heal(self) -> None:
        self.node.set_up(True)


class DeviceChurn(Fault):
    """Power-cycle a native platform device through explicit callables.

    Platform stacks expose different power APIs (``power_off``, ``vanish``,
    ``stop``...), so this fault takes the down/up actions directly::

        DeviceChurn(at=5.0, duration=10.0, name="camera",
                    down=camera.power_off, up=camera.power_on)
    """

    def __init__(
        self,
        at: float,
        down: Callable[[], None],
        up: Optional[Callable[[], None]] = None,
        duration: Optional[float] = None,
        name: str = "device",
    ):
        if duration is not None and up is None:
            raise ChaosError("DeviceChurn with a duration needs an `up` callable")
        super().__init__(at, duration)
        self.down = down
        self.up = up
        self.name = name

    def describe(self) -> str:
        return f"churn device {self.name}"

    def inject(self) -> None:
        self.down()

    def heal(self) -> None:
        if self.up is not None:
            self.up()


class MapperStall(Fault):
    """Suspend a mapper's discovery loop; resume on heal."""

    def __init__(self, mapper: "Mapper", at: float, duration: Optional[float] = None):
        super().__init__(at, duration)
        self.mapper = mapper

    def describe(self) -> str:
        return f"stall {self.mapper.platform} mapper"

    def inject(self) -> None:
        self.mapper.suspend()

    def heal(self) -> None:
        self.mapper.resume()


class SagaBoundaryCrash(Fault):
    """Crash a runtime at an exact saga journal boundary.

    Arming (``inject``, at time ``at``) registers a boundary hook on a
    saga manager; when a matching boundary fires the target runtime
    crashes *inside that kernel event* -- phase ``"pre"`` lands before the
    boundary's record is appended (the transition never became durable),
    ``"post"`` lands after the append + force-sync (durable, but nothing
    after it ran).  ``observe`` picks whose manager emits the boundary
    when it is not the crash target (e.g. watch a participant's
    ``applied`` boundary while crashing that same participant, or crash a
    coordinator when some other runtime's saga moves).

    ``boundary`` is one of ``begin``, ``step-start``, ``step-done``,
    ``compensate``, ``cancel``, ``end`` (coordinator side) or ``applied``
    (participant side); ``step``/``saga_id`` narrow the match and
    ``occurrence`` picks the Nth match.  ``recover_after`` schedules the
    heal that many seconds after the crash fires (``None`` = stays dead);
    ``duration`` stays unset because the controller cannot know the crash
    time in advance -- the fault self-heals.
    """

    def __init__(
        self,
        runtime: "UMiddleRuntime",
        boundary: str,
        at: float = 0.0,
        phase: str = "post",
        step: Optional[int] = None,
        saga_id: Optional[str] = None,
        occurrence: int = 1,
        lose_state: bool = False,
        recover_after: Optional[float] = None,
        observe: Optional["UMiddleRuntime"] = None,
    ):
        if phase not in ("pre", "post"):
            raise ChaosError(f"phase must be 'pre' or 'post', got {phase!r}")
        if occurrence < 1:
            raise ChaosError(f"occurrence must be >= 1, got {occurrence}")
        if recover_after is not None and recover_after < 0:
            raise ChaosError(
                f"recover_after must be non-negative, got {recover_after}"
            )
        super().__init__(at, None)
        self.runtime = runtime
        self.boundary = boundary
        self.phase = phase
        self.step = step
        self.saga_id = saga_id
        self.occurrence = occurrence
        self.lose_state = lose_state
        self.recover_after = recover_after
        self.observe = observe or runtime
        self.fired_at: Optional[float] = None
        self._remaining = occurrence

    def describe(self) -> str:
        cold = " cold" if self.lose_state else ""
        where = f" step {self.step}" if self.step is not None else ""
        return (
            f"crash {self.runtime.runtime_id}{cold} at saga boundary "
            f"{self.boundary}/{self.phase}{where}"
        )

    def inject(self) -> None:
        self.observe.sagas.add_boundary_hook(self._on_boundary)

    def _on_boundary(
        self, saga_id: str, boundary: str, step: Optional[int], phase: str
    ) -> None:
        if boundary != self.boundary or phase != self.phase:
            return
        if self.step is not None and step != self.step:
            return
        if self.saga_id is not None and saga_id != self.saga_id:
            return
        if self.runtime.crashed:
            return
        self._remaining -= 1
        if self._remaining > 0:
            return
        self.observe.sagas.remove_boundary_hook(self._on_boundary)
        kernel = self.runtime.kernel
        self.fired_at = kernel.now
        self.runtime.crash(lose_state=self.lose_state)
        if self.recover_after is not None:
            kernel.call_later(self.recover_after, self.heal)

    def heal(self) -> None:
        self.observe.sagas.remove_boundary_hook(self._on_boundary)
        if not self.runtime.crashed:
            return
        if self.lose_state:
            self.runtime.recover()
        else:
            self.runtime.restart()
