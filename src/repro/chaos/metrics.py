"""Recovery metrics extracted from simulation traces.

The chaos controller stamps ``chaos.inject`` / ``chaos.heal`` records; the
directory, binding and transport layers emit their own recovery records
(``binding.bound``, ``directory.runtime-expired``, ``transport.retry``...).
These helpers turn the combined trace into the numbers the chaos benchmark
tracks alongside the paper's Figure 10/11 results: *time-to-rebind* after a
fault heals, and *message loss* across a fault window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.trace import TraceRecord, TraceRecorder

__all__ = ["first_record_after", "time_to_rebind", "RecoveryReport"]


def first_record_after(
    trace: "TraceRecorder",
    category: str,
    after: float,
    message_contains: Optional[str] = None,
) -> Optional["TraceRecord"]:
    """The earliest record of ``category`` at or after time ``after``."""
    for record in trace.records(category):
        if record.time < after:
            continue
        if message_contains is not None and message_contains not in record.message:
            continue
        return record
    return None


def time_to_rebind(
    trace: "TraceRecorder",
    after: float,
    message_contains: Optional[str] = None,
) -> Optional[float]:
    """Seconds from ``after`` until the next ``binding.bound`` record.

    ``None`` when the standing query never re-bound -- the failure case the
    chaos suite asserts against.
    """
    record = first_record_after(trace, "binding.bound", after, message_contains)
    return None if record is None else record.time - after


@dataclass
class RecoveryReport:
    """One scenario's recovery outcome, for benchmark tables."""

    scenario: str
    fault: str
    healed_at: float
    rebound_at: Optional[float]
    messages_sent: int
    messages_received: int
    #: First post-heal instant at which the sharded directory's keyed
    #: lookups agree with the flat oracle again (None = never probed or
    #: never reconverged within the observation window).
    reconverged_at: Optional[float] = None

    @property
    def time_to_rebind(self) -> Optional[float]:
        if self.rebound_at is None:
            return None
        return self.rebound_at - self.healed_at

    @property
    def time_to_reconverge(self) -> Optional[float]:
        """Heal-to-oracle-agreement latency for sharded lookups."""
        if self.reconverged_at is None:
            return None
        return self.reconverged_at - self.healed_at

    @property
    def messages_lost(self) -> int:
        return self.messages_sent - self.messages_received

    @property
    def loss_ratio(self) -> float:
        if self.messages_sent == 0:
            return 0.0
        return self.messages_lost / self.messages_sent

    def row(self) -> List:
        """A benchmark-table row: scenario, fault, rebind, sent/recv/loss."""
        ttr = self.time_to_rebind
        return [
            self.scenario,
            self.fault,
            "never" if ttr is None else f"{ttr * 1000:.1f} ms",
            self.messages_sent,
            self.messages_received,
            f"{self.loss_ratio * 100:.1f}%",
        ]
