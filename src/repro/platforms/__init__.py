"""Simulated native middleware platforms.

Each subpackage is a from-scratch simulation of one platform the paper
bridges, faithful to that platform's message flows and calibrated costs:

- :mod:`repro.platforms.upnp` -- SSDP discovery, XML device descriptions,
  SOAP control, GENA eventing, and the device models used in Section 5
  (clock, binary light, air conditioner, MediaRenderer).
- :mod:`repro.platforms.bluetooth` -- piconets, SDP, L2CAP, OBEX and the
  BIP (imaging) and HIDP (mouse) profiles.
- :mod:`repro.platforms.rmi` -- a Java-RMI-like registry and remote calls
  with Java-serialization-shaped marshal costs.
- :mod:`repro.platforms.mediabroker` -- the MediaBroker streaming
  infrastructure (typed streams, broker relay, type ladder).
- :mod:`repro.platforms.motes` -- Berkeley motes: TinyOS-style active
  messages over a low-rate radio, plus a base station.
- :mod:`repro.platforms.webservices` -- simple XML-over-HTTP services.
"""
