"""A Java-RMI-like remote invocation platform.

Models what the paper's Section 5.3 "RMI test" exercises: a registry
(``rmiregistry`` on node 3 of the testbed), exported remote objects, and
method calls whose dominant cost is Java-serialization-shaped marshaling
(fixed + per-byte), which is why RMI is the slow platform in Figure 11.
"""

from repro.platforms.rmi.marshal import marshal_time
from repro.platforms.rmi.registry import RegistryClient, RegistryError, RmiRegistry
from repro.platforms.rmi.remote import RemoteError, RemoteRef, RmiExporter, rmi_call

__all__ = [
    "marshal_time",
    "RmiRegistry",
    "RegistryClient",
    "RegistryError",
    "RemoteRef",
    "RmiExporter",
    "RemoteError",
    "rmi_call",
]
