"""Remote objects and calls for the RMI platform.

An :class:`RmiExporter` hosts remote objects on one node; each exported
object is a dict of methods ``name -> handler(args, args_size) ->
(result, result_size)`` (handlers may also be generators to model work
taking simulated time).  Calls are made with :func:`rmi_call`, which
charges marshal costs on the caller side; the exporter charges them on the
server side.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional

from repro.calibration import Calibration
from repro.platforms.rmi.marshal import WIRE_OVERHEAD, marshal_time
from repro.simnet.addresses import Address
from repro.simnet.net import Node
from repro.simnet.sockets import ConnectionClosed, StreamListener, StreamSocket

__all__ = ["RemoteError", "RemoteRef", "RmiExporter", "rmi_call", "RmiConnection"]

_object_counter = itertools.count(1)
_export_port_counter = itertools.count(2000)


class RemoteError(Exception):
    """Remote invocation failures."""


@dataclass(frozen=True)
class RemoteRef:
    """A stub pointing at one exported remote object."""

    address: Address
    port: int
    object_id: str
    interface: str = "java.rmi.Remote"

    def to_dict(self) -> dict:
        return {
            "address": str(self.address),
            "port": self.port,
            "object_id": self.object_id,
            "interface": self.interface,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RemoteRef":
        return cls(
            address=Address(data["address"]),
            port=data["port"],
            object_id=data["object_id"],
            interface=data.get("interface", "java.rmi.Remote"),
        )


class RmiExporter:
    """Hosts exported remote objects on one node."""

    def __init__(self, node: Node, calibration: Calibration, port: Optional[int] = None):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.port = port if port is not None else next(_export_port_counter)
        self._objects: Dict[str, Dict[str, Callable]] = {}
        self._listener = StreamListener(node, calibration.network, self.port)
        self.calls_served = 0
        self.kernel.process(self._accept_loop(), name=f"rmi-export:{node.name}")

    def export(self, methods: Dict[str, Callable], interface: str = "java.rmi.Remote") -> RemoteRef:
        """Export an object; returns the reference to bind in a registry."""
        object_id = f"obj-{next(_object_counter)}"
        self._objects[object_id] = dict(methods)
        return RemoteRef(
            address=self.node.address,
            port=self.port,
            object_id=object_id,
            interface=interface,
        )

    def unexport(self, ref: RemoteRef) -> None:
        self._objects.pop(ref.object_id, None)

    def close(self) -> None:
        self._listener.close()

    def _accept_loop(self) -> Generator:
        while True:
            try:
                stream = yield self._listener.accept()
            except ConnectionClosed:
                return
            self.kernel.process(self._serve(stream), name="rmi-conn")

    def _serve(self, stream: StreamSocket) -> Generator:
        rmi = self.calibration.rmi
        while True:
            try:
                request, _size = yield stream.recv()
            except ConnectionClosed:
                return
            args_size = request.get("args_size", 0)
            # Server-side unmarshal of the call arguments + dispatch.
            yield self.kernel.timeout(marshal_time(rmi, args_size) + rmi.dispatch_s)
            methods = self._objects.get(request.get("object_id"))
            handler = methods.get(request.get("method")) if methods else None
            if handler is None:
                stream.send(
                    {"status": "error", "error": "NoSuchObjectException"},
                    WIRE_OVERHEAD,
                )
                continue
            outcome = handler(request.get("args"), args_size)
            if hasattr(outcome, "send") and hasattr(outcome, "throw"):
                outcome = yield from outcome
            result, result_size = outcome if outcome is not None else (None, 0)
            self.calls_served += 1
            if request.get("oneway"):
                continue  # pipelined call: no result marshaling, no reply
            # Server-side marshal of the result.
            yield self.kernel.timeout(marshal_time(rmi, result_size))
            stream.send(
                {"status": "ok", "result": result, "result_size": result_size},
                WIRE_OVERHEAD + result_size,
            )


class RmiConnection:
    """A client connection to one exporter, reusable across calls."""

    def __init__(self, node: Node, calibration: Calibration, ref: RemoteRef):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.ref = ref
        self._stream: Optional[StreamSocket] = None

    def call(self, method: str, args: Any, args_size: int) -> Generator:
        """Invoke ``method``; returns (result, result_size)."""
        rmi = self.calibration.rmi
        # Client-side marshal + stub dispatch.
        yield self.kernel.timeout(marshal_time(rmi, args_size) + rmi.dispatch_s)
        if self._stream is None or self._stream.closed:
            self._stream = yield StreamSocket.connect(
                self.node, self.calibration.network, self.ref.address, self.ref.port
            )
        self._stream.send(
            {
                "object_id": self.ref.object_id,
                "method": method,
                "args": args,
                "args_size": args_size,
            },
            WIRE_OVERHEAD + args_size,
        )
        response, _size = yield self._stream.recv()
        if response.get("status") != "ok":
            raise RemoteError(response.get("error", "remote failure"))
        result_size = response.get("result_size", 0)
        # Client-side unmarshal of the result.
        yield self.kernel.timeout(marshal_time(rmi, result_size))
        return response.get("result"), result_size

    def call_oneway(self, method: str, args: Any, args_size: int) -> Generator:
        """Invoke ``method`` without waiting for the result.

        Java RMI is synchronous; streaming senders get throughput by
        pipelining calls across a sender thread (what MediaBroker-style
        relays and the paper's RMI throughput test rely on).  This models
        that thread: the caller pays marshal plus TCP send costs inline but
        does not block for the round trip.  Failures surface only as
        server-side traces.
        """
        rmi = self.calibration.rmi
        yield self.kernel.timeout(marshal_time(rmi, args_size) + rmi.dispatch_s)
        if self._stream is None or self._stream.closed:
            self._stream = yield StreamSocket.connect(
                self.node, self.calibration.network, self.ref.address, self.ref.port
            )
        yield from self._stream.send_inline(
            {
                "object_id": self.ref.object_id,
                "method": method,
                "args": args,
                "args_size": args_size,
                "oneway": True,
            },
            WIRE_OVERHEAD + args_size,
        )

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()


def rmi_call(
    node: Node,
    calibration: Calibration,
    ref: RemoteRef,
    method: str,
    args: Any,
    args_size: int,
) -> Generator:
    """One-shot convenience around :class:`RmiConnection`."""
    connection = RmiConnection(node, calibration, ref)
    try:
        result = yield from connection.call(method, args, args_size)
        return result
    finally:
        connection.close()
