"""The RMI registry: a name service for remote references.

Equivalent to ``rmiregistry``: servers ``bind`` remote references under
string names; clients ``lookup`` names (or ``list`` everything) to obtain
:class:`~repro.platforms.rmi.remote.RemoteRef` stubs.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.calibration import Calibration
from repro.platforms.rmi.remote import RemoteRef
from repro.simnet.addresses import Address
from repro.simnet.net import Node
from repro.simnet.sockets import ConnectionClosed, StreamListener, StreamSocket

__all__ = ["RegistryError", "RmiRegistry", "RegistryClient"]

REGISTRY_PORT = 1099
REQUEST_SIZE = 96


class RegistryError(Exception):
    """Name-service failures (unknown name, duplicate bind)."""


class RmiRegistry:
    """The server side of the registry."""

    def __init__(self, node: Node, calibration: Calibration, port: int = REGISTRY_PORT):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.port = port
        self.bindings: Dict[str, RemoteRef] = {}
        self._listener = StreamListener(node, calibration.network, port)
        self.kernel.process(self._accept_loop(), name=f"rmi-registry:{node.name}")

    @property
    def address(self) -> Address:
        return self.node.address

    def close(self) -> None:
        self._listener.close()

    def _accept_loop(self) -> Generator:
        while True:
            try:
                stream = yield self._listener.accept()
            except ConnectionClosed:
                return
            self.kernel.process(self._serve(stream), name="rmi-registry-conn")

    def _serve(self, stream: StreamSocket) -> Generator:
        while True:
            try:
                request, _size = yield stream.recv()
            except ConnectionClosed:
                return
            yield self.kernel.timeout(self.calibration.rmi.registry_lookup_s)
            op = request.get("op")
            if op == "bind":
                name = request["name"]
                if name in self.bindings and not request.get("rebind"):
                    stream.send(
                        {"status": "error", "error": f"already bound: {name}"},
                        REQUEST_SIZE,
                    )
                    continue
                self.bindings[name] = RemoteRef.from_dict(request["ref"])
                stream.send({"status": "ok"}, REQUEST_SIZE)
            elif op == "unbind":
                if self.bindings.pop(request["name"], None) is None:
                    stream.send(
                        {"status": "error", "error": "not bound"}, REQUEST_SIZE
                    )
                else:
                    stream.send({"status": "ok"}, REQUEST_SIZE)
            elif op == "lookup":
                ref = self.bindings.get(request["name"])
                if ref is None:
                    stream.send(
                        {"status": "error", "error": f"not bound: {request['name']}"},
                        REQUEST_SIZE,
                    )
                else:
                    stream.send({"status": "ok", "ref": ref.to_dict()}, REQUEST_SIZE)
            elif op == "list":
                stream.send(
                    {
                        "status": "ok",
                        "names": sorted(self.bindings),
                        "refs": {
                            name: ref.to_dict() for name, ref in self.bindings.items()
                        },
                    },
                    REQUEST_SIZE + 64 * len(self.bindings),
                )
            else:
                stream.send({"status": "error", "error": f"bad op {op!r}"}, REQUEST_SIZE)


class RegistryClient:
    """Client-side stub for a registry at a known address."""

    def __init__(
        self,
        node: Node,
        calibration: Calibration,
        registry_address: Address,
        port: int = REGISTRY_PORT,
    ):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.registry_address = registry_address
        self.port = port
        self._stream: Optional[StreamSocket] = None

    def _request(self, request: dict) -> Generator:
        if self._stream is None or self._stream.closed:
            self._stream = yield StreamSocket.connect(
                self.node, self.calibration.network, self.registry_address, self.port
            )
        self._stream.send(request, REQUEST_SIZE)
        response, _size = yield self._stream.recv()
        if response.get("status") != "ok":
            raise RegistryError(response.get("error", "registry failure"))
        return response

    def bind(self, name: str, ref: "RemoteRef", rebind: bool = False) -> Generator:
        yield from self._request(
            {"op": "bind", "name": name, "ref": ref.to_dict(), "rebind": rebind}
        )

    def unbind(self, name: str) -> Generator:
        yield from self._request({"op": "unbind", "name": name})

    def lookup(self, name: str) -> Generator:
        response = yield from self._request({"op": "lookup", "name": name})
        return RemoteRef.from_dict(response["ref"])

    def list(self) -> Generator:
        response = yield from self._request({"op": "list"})
        return {
            name: RemoteRef.from_dict(data)
            for name, data in response["refs"].items()
        }

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
