"""Serialization cost model for the RMI platform.

Java object serialization has a high fixed cost (stream headers, class
descriptors, reflection) plus a per-byte cost.  Both ends of every call pay
it -- the asymmetry against MediaBroker's lean framing is exactly what
Figure 11 measures.
"""

from __future__ import annotations

from repro.calibration import RmiCosts

__all__ = ["marshal_time", "WIRE_OVERHEAD"]

#: Bytes added on the wire per serialized payload (stream magic, class
#: descriptors, type codes).
WIRE_OVERHEAD = 45


def marshal_time(costs: RmiCosts, size_bytes: int) -> float:
    """Seconds to serialize (or deserialize) ``size_bytes`` of object data."""
    return costs.marshal_fixed_s + costs.marshal_per_byte_s * size_bytes
