"""The MediaBroker broker node.

Producers register named streams with a published type; consumers subscribe
by stream name, optionally requesting a different type from the ladder.
The broker relays each message, charging its calibrated relay cost plus any
transformation cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.calibration import Calibration
from repro.platforms.mediabroker.types import MediaType, TypeLadder
from repro.simnet.net import Node
from repro.simnet.sockets import ConnectionClosed, StreamListener, StreamSocket

__all__ = ["BrokerError", "Broker"]

BROKER_PORT = 6000
FRAME_OVERHEAD = 24


class BrokerError(Exception):
    """Stream registration/subscription failures."""


@dataclass
class _StreamInfo:
    name: str
    media_type: MediaType
    producer: Optional[StreamSocket] = None
    #: (socket, requested_type)
    consumers: List[Tuple[StreamSocket, MediaType]] = field(default_factory=list)


class Broker:
    """One broker node relaying typed media streams."""

    def __init__(
        self,
        node: Node,
        calibration: Calibration,
        ladder: Optional[TypeLadder] = None,
        port: int = BROKER_PORT,
    ):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.port = port
        self.ladder = ladder or TypeLadder()
        self.streams: Dict[str, _StreamInfo] = {}
        self.messages_relayed = 0
        self.bytes_relayed = 0
        self._listener = StreamListener(node, calibration.network, port)
        self.kernel.process(self._accept_loop(), name=f"mb-broker:{node.name}")

    @property
    def address(self):
        return self.node.address

    def close(self) -> None:
        self._listener.close()

    def _accept_loop(self) -> Generator:
        while True:
            try:
                stream = yield self._listener.accept()
            except ConnectionClosed:
                return
            self.kernel.process(self._serve(stream), name="mb-conn")

    def _serve(self, stream: StreamSocket) -> Generator:
        mb = self.calibration.mediabroker
        while True:
            try:
                request, _size = yield stream.recv()
            except ConnectionClosed:
                self._drop_endpoint(stream)
                return
            op = request.get("op")
            if op == "register":
                yield self.kernel.timeout(mb.register_s)
                info = self.streams.setdefault(
                    request["stream"],
                    _StreamInfo(
                        name=request["stream"],
                        media_type=MediaType(request["type"]),
                    ),
                )
                info.media_type = MediaType(request["type"])
                info.producer = stream
                stream.send({"status": "ok"}, FRAME_OVERHEAD)
            elif op == "subscribe":
                yield self.kernel.timeout(mb.register_s)
                info = self.streams.get(request["stream"])
                if info is None:
                    info = _StreamInfo(
                        name=request["stream"],
                        media_type=MediaType(request.get("type", "unknown/unknown")),
                    )
                    self.streams[request["stream"]] = info
                wanted = MediaType(request.get("type", str(info.media_type)))
                if self.ladder.path(info.media_type, wanted) is None:
                    stream.send(
                        {
                            "status": "error",
                            "error": f"no transform {info.media_type} -> {wanted}",
                        },
                        FRAME_OVERHEAD,
                    )
                    continue
                info.consumers.append((stream, wanted))
                stream.send({"status": "ok"}, FRAME_OVERHEAD)
            elif op == "publish":
                info = self.streams.get(request["stream"])
                if info is None:
                    continue  # publish to unknown stream: dropped
                yield from self._relay(info, request)
            elif op == "list":
                listing = {
                    name: str(info.media_type)
                    for name, info in self.streams.items()
                    if info.producer is not None
                }
                stream.send(
                    {"status": "ok", "streams": listing},
                    FRAME_OVERHEAD + 32 * len(listing),
                )
            else:
                stream.send({"status": "error", "error": f"bad op {op!r}"}, FRAME_OVERHEAD)

    def _relay(self, info: _StreamInfo, request: dict) -> Generator:
        mb = self.calibration.mediabroker
        size = request.get("size", 0)
        payload = request.get("payload")
        yield self.kernel.timeout(mb.relay_s)
        for consumer, wanted in list(info.consumers):
            if consumer.closed:
                info.consumers.remove((consumer, wanted))
                continue
            out_size, out_payload = size, payload
            chain = self.ladder.path(info.media_type, wanted)
            if chain:
                out_size, cpu = self.ladder.apply_metrics(chain, size)
                yield self.kernel.timeout(cpu)
                out_payload = {"transformed_from": str(info.media_type), "data": payload}
            consumer.send(
                {
                    "op": "data",
                    "stream": info.name,
                    "type": str(wanted),
                    "payload": out_payload,
                    "size": out_size,
                },
                FRAME_OVERHEAD + out_size,
            )
            self.messages_relayed += 1
            self.bytes_relayed += out_size

    def _drop_endpoint(self, stream: StreamSocket) -> None:
        for info in self.streams.values():
            if info.producer is stream:
                info.producer = None
            info.consumers = [
                (consumer, wanted)
                for consumer, wanted in info.consumers
                if consumer is not stream
            ]
