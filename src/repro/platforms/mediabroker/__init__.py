"""MediaBroker: a distributed media transformation infrastructure.

Reproduces the Georgia Tech system the paper cites ([13], PerCom 2004) at
the fidelity Section 5.3's "MB test" needs: producers register typed media
streams with a broker, consumers subscribe, and the broker relays data --
applying *type ladder* transformations when a consumer asks for a different
type than the producer publishes.  MB's per-message framing is much leaner
than RMI serialization, which is why it is the fast platform in Figure 11.
"""

from repro.platforms.mediabroker.types import MediaType, TypeLadder, TransformStep
from repro.platforms.mediabroker.broker import Broker, BrokerError
from repro.platforms.mediabroker.service import MBConsumer, MBProducer

__all__ = [
    "MediaType",
    "TypeLadder",
    "TransformStep",
    "Broker",
    "BrokerError",
    "MBProducer",
    "MBConsumer",
]
