"""MediaBroker client endpoints: producers and consumers.

Both charge MB's lean per-message marshal cost on their own side; the
broker charges relay and transform costs centrally.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.calibration import Calibration
from repro.platforms.mediabroker.broker import BROKER_PORT, FRAME_OVERHEAD, BrokerError
from repro.simnet.addresses import Address
from repro.simnet.net import Node
from repro.simnet.sockets import ConnectionClosed, StreamSocket

__all__ = ["MBProducer", "MBConsumer"]


def _marshal_delay(calibration: Calibration, size: int) -> float:
    mb = calibration.mediabroker
    return mb.marshal_fixed_s + mb.marshal_per_byte_s * size


class MBProducer:
    """Publishes one named media stream through a broker."""

    def __init__(
        self,
        node: Node,
        calibration: Calibration,
        broker_address: Address,
        stream_name: str,
        media_type: str,
        broker_port: int = BROKER_PORT,
    ):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.broker_address = broker_address
        self.broker_port = broker_port
        self.stream_name = stream_name
        self.media_type = media_type
        self._stream: Optional[StreamSocket] = None
        self.messages_published = 0

    def register(self) -> Generator:
        self._stream = yield StreamSocket.connect(
            self.node, self.calibration.network, self.broker_address, self.broker_port
        )
        self._stream.send(
            {"op": "register", "stream": self.stream_name, "type": self.media_type},
            FRAME_OVERHEAD,
        )
        response, _size = yield self._stream.recv()
        if response.get("status") != "ok":
            raise BrokerError(response.get("error", "register failed"))

    def publish(self, payload: Any, size: int) -> Generator:
        """Marshal and send one message (generator: charges send-side cost).

        Uses the inline stream send, so the caller pays both the marshal
        and the TCP per-segment processing -- MB's sender path is a single
        thread, and Figure 11's MB throughput depends on that serialization.
        """
        if self._stream is None or self._stream.closed:
            raise BrokerError("producer is not registered")
        yield self.kernel.timeout(_marshal_delay(self.calibration, size))
        yield from self._stream.send_inline(
            {
                "op": "publish",
                "stream": self.stream_name,
                "payload": payload,
                "size": size,
            },
            FRAME_OVERHEAD + size,
        )
        self.messages_published += 1

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()


class MBConsumer:
    """Subscribes to one named media stream through a broker."""

    def __init__(
        self,
        node: Node,
        calibration: Calibration,
        broker_address: Address,
        stream_name: str,
        media_type: Optional[str] = None,
        broker_port: int = BROKER_PORT,
    ):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.broker_address = broker_address
        self.broker_port = broker_port
        self.stream_name = stream_name
        self.media_type = media_type
        self._stream: Optional[StreamSocket] = None
        self._callback: Optional[Callable[[Any, int, str], None]] = None
        self.messages_received = 0

    def subscribe(self, callback: Callable[[Any, int, str], None]) -> Generator:
        """Subscribe; ``callback(payload, size, type)`` per message."""
        self._callback = callback
        self._stream = yield StreamSocket.connect(
            self.node, self.calibration.network, self.broker_address, self.broker_port
        )
        request = {"op": "subscribe", "stream": self.stream_name}
        if self.media_type is not None:
            request["type"] = self.media_type
        self._stream.send(request, FRAME_OVERHEAD)
        response, _size = yield self._stream.recv()
        if response.get("status") != "ok":
            raise BrokerError(response.get("error", "subscribe failed"))
        self.kernel.process(self._receive_loop(), name=f"mb-consume:{self.stream_name}")

    def _receive_loop(self) -> Generator:
        while True:
            try:
                message, _size = yield self._stream.recv()
            except ConnectionClosed:
                return
            if message.get("op") != "data":
                continue
            # Consumer-side unmarshal.
            yield self.kernel.timeout(
                _marshal_delay(self.calibration, message["size"])
            )
            self.messages_received += 1
            if self._callback is not None:
                self._callback(message["payload"], message["size"], message["type"])

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
