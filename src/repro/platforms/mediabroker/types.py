"""MediaBroker's type ladder.

MediaBroker models media types in *ladders*: an ordered family of types for
one medium (e.g. raw video → high-rate MPEG → low-rate MPEG → thumbnails)
where data can be transformed downward.  Consumers name the type they want;
the broker finds a transformation path from the producer's type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["MediaType", "TransformStep", "TypeLadder"]


@dataclass(frozen=True, order=True)
class MediaType:
    """A named media type, e.g. ``video/raw`` or ``image/thumbnail``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TransformStep:
    """One registered transformation between adjacent ladder types."""

    source: MediaType
    target: MediaType
    #: Output size as a fraction of input size.
    size_factor: float
    #: CPU seconds per input byte to run the transform.
    cost_per_byte_s: float


class TypeLadder:
    """The registry of known transformations."""

    def __init__(self):
        self._steps: Dict[Tuple[MediaType, MediaType], TransformStep] = {}

    def register(self, step: TransformStep) -> None:
        self._steps[(step.source, step.target)] = step

    def step(self, source: MediaType, target: MediaType) -> Optional[TransformStep]:
        return self._steps.get((source, target))

    def path(self, source: MediaType, target: MediaType) -> Optional[List[TransformStep]]:
        """Shortest transformation chain from ``source`` to ``target``.

        Returns ``[]`` when the types are equal, ``None`` when unreachable.
        """
        if source == target:
            return []
        # BFS over the registered steps.
        frontier: List[Tuple[MediaType, List[TransformStep]]] = [(source, [])]
        seen = {source}
        while frontier:
            current, chain = frontier.pop(0)
            for (step_source, step_target), step in self._steps.items():
                if step_source != current or step_target in seen:
                    continue
                extended = chain + [step]
                if step_target == target:
                    return extended
                seen.add(step_target)
                frontier.append((step_target, extended))
        return None

    def apply_metrics(
        self, chain: List[TransformStep], size: int
    ) -> Tuple[int, float]:
        """(output_size, cpu_seconds) for running ``chain`` on ``size`` bytes."""
        cost = 0.0
        current = size
        for step in chain:
            cost += step.cost_per_byte_s * current
            current = max(1, int(current * step.size_factor))
        return current, cost


def default_ladder() -> TypeLadder:
    """The stock ladder used by examples and tests."""
    ladder = TypeLadder()
    raw = MediaType("video/raw")
    mpeg = MediaType("video/mpeg")
    thumb = MediaType("image/thumbnail")
    jpeg_hi = MediaType("image/jpeg-high")
    jpeg_lo = MediaType("image/jpeg-low")
    ladder.register(TransformStep(raw, mpeg, size_factor=0.10, cost_per_byte_s=2e-8))
    ladder.register(TransformStep(mpeg, thumb, size_factor=0.02, cost_per_byte_s=1e-8))
    ladder.register(TransformStep(jpeg_hi, jpeg_lo, size_factor=0.25, cost_per_byte_s=1e-8))
    ladder.register(TransformStep(jpeg_lo, thumb, size_factor=0.20, cost_per_byte_s=1e-8))
    return ladder
