"""OBEX: the object-exchange protocol (IrOBEX over L2CAP).

The Basic Imaging Profile moves images with OBEX PUT (push) and GET (pull).
We model sessions over an L2CAP stream: CONNECT negotiates the session,
PUT streams an object in MTU-sized chunks (the stream layer charges honest
radio time -- this is what makes Bluetooth the slow side of a bridge), GET
retrieves a named object, DISCONNECT ends the session.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from repro.calibration import Calibration
from repro.simnet.sockets import ConnectionClosed, StreamListener, StreamSocket

__all__ = ["ObexError", "ObexClient", "ObexServer"]

OBEX_HEADER = 24


class ObexError(Exception):
    """OBEX protocol failures."""


class ObexClient:
    """Client half of an OBEX session over an established L2CAP stream."""

    def __init__(self, stream: StreamSocket, calibration: Calibration):
        self.stream = stream
        self.calibration = calibration
        self.kernel = stream.kernel
        self.connected = False

    def connect(self) -> Generator:
        yield self.kernel.timeout(self.calibration.bluetooth.obex_connect_s)
        self.stream.send({"op": "connect"}, OBEX_HEADER)
        response, _size = yield self.stream.recv()
        if response.get("status") != "ok":
            raise ObexError(f"OBEX connect refused: {response}")
        self.connected = True

    def put(self, name: str, body: Any, size: int, content_type: str = "") -> Generator:
        """Push one object; returns when the server acknowledges it."""
        self._require_session()
        self.stream.send(
            {
                "op": "put",
                "name": name,
                "body": body,
                "content_type": content_type,
                "size": size,
            },
            OBEX_HEADER + size,
        )
        response, _size = yield self.stream.recv()
        if response.get("status") != "ok":
            raise ObexError(f"OBEX put failed: {response}")

    def get(self, name: str) -> Generator:
        """Pull one object; returns (body, size, content_type)."""
        self._require_session()
        self.stream.send({"op": "get", "name": name}, OBEX_HEADER + len(name))
        response, _size = yield self.stream.recv()
        if response.get("status") != "ok":
            raise ObexError(f"OBEX get failed: {response}")
        return response["body"], response["size"], response.get("content_type", "")

    def disconnect(self) -> Generator:
        if self.connected:
            self.stream.send({"op": "disconnect"}, OBEX_HEADER)
            self.connected = False
            yield self.kernel.timeout(0)
        self.stream.close()

    def _require_session(self) -> None:
        if not self.connected:
            raise ObexError("OBEX session is not connected")


class ObexServer:
    """Server half: accepts sessions on a PSM and serves PUT/GET.

    ``on_put(name, body, size, content_type)`` is called for each received
    object; ``objects`` maps names to ``(body, size, content_type)`` tuples
    served to GET.
    """

    def __init__(
        self,
        listener: StreamListener,
        calibration: Calibration,
        on_put: Optional[Callable[[str, Any, int, str], None]] = None,
    ):
        self.listener = listener
        self.calibration = calibration
        self.kernel = listener.kernel
        self.on_put = on_put
        self.objects: Dict[str, tuple] = {}
        self.puts_received = 0
        self.gets_served = 0
        self._custom_ops: Dict[str, Callable[[dict, StreamSocket], None]] = {}
        self.kernel.process(self._accept_loop(), name="obex-server")

    def on_custom(self, op: str, handler: Callable[[dict, StreamSocket], None]) -> None:
        """Handle a vendor-specific operation (e.g. BIP push-target
        registration); the handler must send its own response."""
        self._custom_ops[op] = handler

    def publish(self, name: str, body: Any, size: int, content_type: str = "") -> None:
        self.objects[name] = (body, size, content_type)

    def close(self) -> None:
        self.listener.close()

    def _accept_loop(self) -> Generator:
        while True:
            try:
                stream = yield self.listener.accept()
            except ConnectionClosed:
                return
            self.kernel.process(self._serve(stream), name="obex-session")

    def _serve(self, stream: StreamSocket) -> Generator:
        while True:
            try:
                request, _size = yield stream.recv()
            except ConnectionClosed:
                return
            op = request.get("op")
            if op == "connect":
                yield self.kernel.timeout(
                    self.calibration.bluetooth.obex_connect_s
                )
                stream.send({"status": "ok"}, OBEX_HEADER)
            elif op == "put":
                self.puts_received += 1
                self.objects[request["name"]] = (
                    request["body"],
                    request["size"],
                    request.get("content_type", ""),
                )
                if self.on_put is not None:
                    self.on_put(
                        request["name"],
                        request["body"],
                        request["size"],
                        request.get("content_type", ""),
                    )
                stream.send({"status": "ok"}, OBEX_HEADER)
            elif op == "get":
                stored = self.objects.get(request["name"])
                if stored is None:
                    stream.send({"status": "not-found"}, OBEX_HEADER)
                else:
                    body, size, content_type = stored
                    self.gets_served += 1
                    stream.send(
                        {
                            "status": "ok",
                            "body": body,
                            "size": size,
                            "content_type": content_type,
                        },
                        OBEX_HEADER + size,
                    )
            elif op == "disconnect":
                stream.close()
                return
            elif op in self._custom_ops:
                self._custom_ops[op](request, stream)
