"""L2CAP channel parameters.

We reuse the generic reliable-stream machinery of
:mod:`repro.simnet.sockets` for L2CAP channels: the piconet medium supplies
the radio's bandwidth and latency, and this module supplies the L2CAP-shaped
cost parameters (small headers, 672-byte default MTU, channel-establishment
cost) in the :class:`~repro.calibration.NetworkCosts` format the socket
layer consumes.
"""

from __future__ import annotations

from repro.calibration import BluetoothCosts, NetworkCosts

__all__ = ["l2cap_costs", "PSM_SDP", "PSM_HID_CONTROL", "PSM_HID_INTERRUPT", "PSM_OBEX"]

#: Protocol/Service Multiplexer values (L2CAP's "port numbers").
PSM_SDP = 0x0001
PSM_HID_CONTROL = 0x0011
PSM_HID_INTERRUPT = 0x0013
PSM_OBEX = 0x1001


def l2cap_costs(bluetooth: BluetoothCosts) -> NetworkCosts:
    """L2CAP channel parameters in the socket layer's cost format."""
    return NetworkCosts(
        ethernet_bandwidth_bps=bluetooth.acl_bandwidth_bps,
        ethernet_latency_s=bluetooth.baseband_latency_s,
        ethernet_frame_overhead_bytes=9,   # baseband packet overhead
        tcp_header_bytes=4,                # L2CAP basic header
        udp_header_bytes=4,
        mtu_bytes=672,                     # default L2CAP MTU
        tcp_segment_processing_s=0.000_4,
        udp_datagram_processing_s=0.000_2,
        tcp_handshake_processing_s=bluetooth.l2cap_connect_s,
    )
