"""Concrete Bluetooth devices: the BIP camera and the HIDP mouse.

These are the native devices of the paper's running example (Figure 5's
Bluetooth digital camera) and of its benchmarks (the HIDP mouse of
Sections 5.1-5.2).
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, List, Optional, Tuple

from repro.calibration import Calibration
from repro.platforms.bluetooth.baseband import BluetoothDevice, Piconet
from repro.platforms.bluetooth.l2cap import (
    PSM_HID_CONTROL,
    PSM_HID_INTERRUPT,
    PSM_OBEX,
)
from repro.platforms.bluetooth.obex import ObexClient, ObexServer
from repro.platforms.bluetooth.sdp import ServiceRecord
from repro.simnet.addresses import Address
from repro.simnet.sockets import (
    ConnectionClosed,
    StreamListener,
    StreamSocket,
)

__all__ = ["BipCamera", "BipPrinter", "HidMouse", "HID_REPORT_SIZE"]

HID_REPORT_SIZE = 12
_photo_counter = itertools.count(1)


class BipCamera(BluetoothDevice):
    """A digital camera speaking the Basic Imaging Profile.

    Two BIP functions are modelled:

    - **ImagePull**: the camera serves its stored images over OBEX GET
      (peers browse ``camera.image_names()`` via the listing object).
    - **ImagePush**: after :meth:`connect_push_target`, every new photo is
      pushed to the target's OBEX server -- this is how images reach the
      uMiddle bridge.
    """

    device_class = "imaging"

    def __init__(self, piconet: Piconet, calibration: Calibration, name: str = "bip-camera"):
        super().__init__(
            piconet,
            calibration,
            name,
            records=[
                ServiceRecord(
                    service_class="BIP",
                    name=f"{name} imaging",
                    psm=PSM_OBEX,
                    attributes={"functions": "ImagePush,ImagePull"},
                )
            ],
        )
        self._obex_server = ObexServer(
            StreamListener(self.node, self.costs, PSM_OBEX), calibration
        )
        # BIP push-target registration: a peer (the uMiddle bridge) tells
        # the camera where to push new photos.
        self._obex_server.on_custom("register-push", self._handle_register_push)
        self._push_queue: List[Tuple[str, Any, int]] = []
        self._push_wakeup = None
        self._push_client: Optional[ObexClient] = None
        self.photos_taken = 0
        self.kernel.process(self._push_pump(), name=f"bip-push:{name}")

    # -- ImagePull side -------------------------------------------------------

    def image_names(self) -> List[str]:
        return sorted(self._obex_server.objects)

    def store_image(self, name: str, body: Any, size: int) -> None:
        self._obex_server.publish(name, body, size, "image/jpeg")

    # -- ImagePush side ----------------------------------------------------------

    def connect_push_target(self, bd_addr: Address, psm: int) -> Generator:
        """Open the OBEX session through which new photos are pushed."""
        stream = yield StreamSocket.connect(self.node, self.costs, bd_addr, psm)
        client = ObexClient(stream, self.calibration)
        yield from client.connect()
        self._push_client = client

    def _handle_register_push(self, request: dict, stream: StreamSocket) -> None:
        from repro.platforms.bluetooth.obex import OBEX_HEADER

        stream.send({"status": "ok"}, OBEX_HEADER)
        self.kernel.process(
            self.connect_push_target(Address(request["address"]), request["psm"]),
            name=f"bip-register-push:{self.name}",
        )

    def disconnect_push_target(self) -> None:
        if self._push_client is not None:
            client, self._push_client = self._push_client, None
            client.stream.close()

    def take_photo(self, size: int = 64_000, body: Any = None) -> str:
        """Capture a photo; it is stored and (if connected) pushed."""
        self.photos_taken += 1
        name = f"img-{next(_photo_counter)}.jpg"
        body = body if body is not None else f"<jpeg {name}>"
        self.store_image(name, body, size)
        self._push_queue.append((name, body, size))
        if self._push_wakeup is not None and not self._push_wakeup.triggered:
            self._push_wakeup.succeed()
        return name

    def _push_pump(self) -> Generator:
        while self.online:
            if not self._push_queue:
                self._push_wakeup = self.kernel.event(name=f"bip-wait:{self.name}")
                yield self._push_wakeup
                self._push_wakeup = None
                continue
            name, body, size = self._push_queue.pop(0)
            client = self._push_client
            if client is None or client.stream.closed:
                continue  # nobody to push to; the image stays pull-able
            try:
                yield from client.put(name, body, size, content_type="image/jpeg")
            except Exception:
                self._push_client = None

    def power_off(self) -> None:
        super().power_off()
        self._obex_server.close()
        self.disconnect_push_target()
        if self._push_wakeup is not None and not self._push_wakeup.triggered:
            self._push_wakeup.succeed()


class BipPrinter(BluetoothDevice):
    """A BIP photo printer: accepts images over OBEX PUT and 'prints' them.

    Printed pages accumulate in :attr:`printed` for observation -- the
    physical ``visible/paper`` effect of the paper's Service Shaping
    example.
    """

    device_class = "printing"

    #: Seconds to put one page on paper, after the transfer completes.
    PRINT_TIME = 2.0

    def __init__(self, piconet: Piconet, calibration: Calibration, name: str = "bip-printer"):
        super().__init__(
            piconet,
            calibration,
            name,
            records=[
                ServiceRecord(
                    service_class="BIP",
                    name=f"{name} printing",
                    psm=PSM_OBEX,
                    attributes={"functions": "ImagePush"},
                )
            ],
        )
        self.printed: List[dict] = []
        self._printing = 0
        self._obex_server = ObexServer(
            StreamListener(self.node, self.costs, PSM_OBEX),
            calibration,
            on_put=self._on_image,
        )

    def _on_image(self, name: str, body: Any, size: int, content_type: str) -> None:
        self._printing += 1
        self.kernel.process(
            self._print(name, body, size, content_type), name=f"print:{self.name}"
        )

    def _print(self, name, body, size, content_type) -> Generator:
        yield self.kernel.timeout(self.PRINT_TIME)
        self._printing -= 1
        if self.online:
            self.printed.append(
                {"name": name, "body": body, "size": size, "content_type": content_type}
            )

    @property
    def pages_in_progress(self) -> int:
        return self._printing

    def power_off(self) -> None:
        super().power_off()
        self._obex_server.close()


class HidMouse(BluetoothDevice):
    """A HIDP mouse: sends input reports on its interrupt channel.

    The host (bridge) connects an L2CAP channel to the mouse's interrupt
    PSM; :meth:`click` and :meth:`move` send reports down every connected
    channel.
    """

    device_class = "peripheral"

    def __init__(self, piconet: Piconet, calibration: Calibration, name: str = "hid-mouse"):
        super().__init__(
            piconet,
            calibration,
            name,
            records=[
                ServiceRecord(
                    service_class="HID",
                    name=f"{name} pointer",
                    psm=PSM_HID_INTERRUPT,
                    attributes={"subclass": "mouse"},
                )
            ],
        )
        self._interrupt_listener = StreamListener(
            self.node, self.costs, PSM_HID_INTERRUPT
        )
        self._control_listener = StreamListener(
            self.node, self.costs, PSM_HID_CONTROL
        )
        self._interrupt_channels: List[StreamSocket] = []
        self.reports_sent = 0
        self.kernel.process(self._accept_interrupt(), name=f"hid-accept:{name}")

    def _accept_interrupt(self) -> Generator:
        while True:
            try:
                stream = yield self._interrupt_listener.accept()
            except ConnectionClosed:
                return
            self._interrupt_channels.append(stream)

    # -- input events --------------------------------------------------------------

    def click(self, button: int = 1) -> None:
        self._send_report({"type": "click", "button": button})

    def move(self, dx: int, dy: int) -> None:
        self._send_report({"type": "move", "dx": dx, "dy": dy})

    def _send_report(self, report: dict) -> None:
        if not self.online:
            return
        self.reports_sent += 1
        for stream in list(self._interrupt_channels):
            if stream.closed:
                self._interrupt_channels.remove(stream)
                continue
            stream.send(report, HID_REPORT_SIZE)

    def power_off(self) -> None:
        super().power_off()
        self._interrupt_listener.close()
        self._control_listener.close()
        for stream in self._interrupt_channels:
            stream.close()
