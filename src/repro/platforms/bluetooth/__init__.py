"""A simulated Bluetooth 1.2 stack.

Models the pieces the paper's testbed used through BlueZ: a piconet radio
medium (≤8 active devices, ~723 kbps), inquiry-based discovery, SDP service
records, L2CAP channels, OBEX object transfer, and the two profiles the
paper bridges -- BIP (Basic Imaging Profile, the digital camera) and HIDP
(the mouse of Sections 5.1-5.2).
"""

from repro.platforms.bluetooth.baseband import (
    BluetoothAdapter,
    BluetoothDevice,
    Piconet,
    PiconetError,
    RemoteDevice,
)
from repro.platforms.bluetooth.sdp import ServiceRecord
from repro.platforms.bluetooth.l2cap import l2cap_costs
from repro.platforms.bluetooth.obex import ObexClient, ObexServer, ObexError
from repro.platforms.bluetooth.devices import BipCamera, BipPrinter, HidMouse

__all__ = [
    "Piconet",
    "PiconetError",
    "BluetoothAdapter",
    "BluetoothDevice",
    "RemoteDevice",
    "ServiceRecord",
    "l2cap_costs",
    "ObexClient",
    "ObexServer",
    "ObexError",
    "BipCamera",
    "BipPrinter",
    "HidMouse",
]
