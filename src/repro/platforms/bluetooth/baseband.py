"""Bluetooth baseband: piconets, inquiry and paging.

A :class:`Piconet` is a shared radio segment (the paper notes "at most
eight devices in one piconet covering a few tens of meters"): one master --
typically the uMiddle host's adapter -- and up to seven active slaves.  The
radio is modelled as a shared medium at ACL data rates.

Discovery is *inquiry*: the adapter multicasts an inquiry probe and devices
in discoverable mode answer with their address, class-of-device and name.
Before any L2CAP traffic the adapter must *page* (connect) the device,
which charges the calibrated page cost and claims one of the piconet's
active-member slots.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Set

from repro.calibration import Calibration
from repro.platforms.bluetooth.l2cap import l2cap_costs
from repro.platforms.bluetooth.sdp import SdpServer, ServiceRecord
from repro.simnet.addresses import Address
from repro.simnet.kernel import Kernel
from repro.simnet.net import Hub, Network, Node
from repro.simnet.sockets import (
    ConnectionClosed,
    DatagramSocket,
    StreamListener,
    StreamSocket,
)

__all__ = [
    "PiconetError",
    "Piconet",
    "RemoteDevice",
    "BluetoothDevice",
    "BluetoothAdapter",
]

INQUIRY_GROUP = "bt-inquiry"
INQUIRY_PORT = 99
_piconet_counter = itertools.count(1)


class PiconetError(Exception):
    """Piconet capacity and connection errors."""


@dataclass(frozen=True)
class RemoteDevice:
    """An inquiry result: what the adapter knows before paging."""

    bd_addr: Address
    device_class: str
    name: str


class Piconet:
    """One Bluetooth radio cell: a shared medium plus membership accounting."""

    def __init__(self, network: Network, calibration: Calibration, name: str = ""):
        self.network = network
        self.calibration = calibration
        self.name = name or f"piconet-{next(_piconet_counter)}"
        bt = calibration.bluetooth
        self.medium: Hub = network.add_hub(
            self.name,
            bandwidth_bps=bt.acl_bandwidth_bps,
            latency_s=bt.baseband_latency_s,
            frame_overhead_bytes=9,
        )
        self.capacity = bt.piconet_capacity
        self._active_slaves: Set[Address] = set()

    def claim_slot(self, bd_addr: Address) -> None:
        if bd_addr in self._active_slaves:
            return
        if len(self._active_slaves) >= self.capacity:
            raise PiconetError(
                f"{self.name}: piconet full ({self.capacity} active slaves)"
            )
        self._active_slaves.add(bd_addr)

    def release_slot(self, bd_addr: Address) -> None:
        self._active_slaves.discard(bd_addr)

    @property
    def active_slaves(self) -> int:
        return len(self._active_slaves)


class BluetoothDevice:
    """Base class for slave devices (cameras, mice, printers...).

    Handles inquiry responses and SDP serving; subclasses add their
    profile-specific channels.
    """

    device_class = "misc"

    def __init__(
        self,
        piconet: Piconet,
        calibration: Calibration,
        name: str,
        records: Optional[List[ServiceRecord]] = None,
    ):
        self.piconet = piconet
        self.calibration = calibration
        self.name = name
        self.network = piconet.network
        self.kernel: Kernel = self.network.kernel
        self.node: Node = self.network.add_node(f"bt-{name}")
        self.node.attach(piconet.medium)
        self.costs = l2cap_costs(calibration.bluetooth)
        self.discoverable = True
        self.online = True
        self._inquiry_socket = DatagramSocket(self.node, self.costs)
        self._inquiry_socket.join(INQUIRY_GROUP, INQUIRY_PORT)
        self.sdp = SdpServer(self.node, self.costs, records or [])
        self.kernel.process(
            self._inquiry_responder(), name=f"bt-inq-resp:{name}"
        )

    @property
    def bd_addr(self) -> Address:
        return self.node.address

    def _inquiry_responder(self) -> Generator:
        bt = self.calibration.bluetooth
        while self.online:
            try:
                probe = yield self._inquiry_socket.recv()
            except ConnectionClosed:
                return
            if not self.discoverable or not self.online:
                continue
            # Inquiry-scan response latency.
            yield self.kernel.timeout(bt.baseband_latency_s * 2)
            self._inquiry_socket.sendto(
                {
                    "kind": "inquiry-response",
                    "bd_addr": str(self.bd_addr),
                    "device_class": self.device_class,
                    "name": self.name,
                },
                32,
                probe.src,
                probe.sport,
            )

    def power_off(self) -> None:
        """Abrupt disappearance (battery died, walked out of range)."""
        self.online = False
        self.discoverable = False
        self._inquiry_socket.close()
        self.sdp.close()


class BluetoothAdapter:
    """Host-side adapter (the BlueZ role): inquiry, paging, L2CAP, SDP."""

    def __init__(self, node: Node, piconet: Piconet, calibration: Calibration):
        self.node = node
        self.piconet = piconet
        self.calibration = calibration
        self.kernel: Kernel = node.network.kernel
        self.costs = l2cap_costs(calibration.bluetooth)
        if node.interface_on(piconet.medium) is None:
            node.attach(piconet.medium)
        self._inquiry_socket = DatagramSocket(node, self.costs)
        self._paged: Set[Address] = set()

    @property
    def bd_addr(self) -> Address:
        return self.node.interface_on(self.piconet.medium).address

    # -- inquiry -------------------------------------------------------------

    def inquiry(self, duration: float = 0.5) -> Generator:
        """Discover devices in range; returns list of :class:`RemoteDevice`.

        Real inquiry scans take up to 10.24 s; our default covers the
        simulated devices' deterministic response latency.
        """
        self._inquiry_socket.send_multicast(
            {"kind": "inquiry"},
            16,
            INQUIRY_GROUP,
            INQUIRY_PORT,
            medium=self.piconet.medium,
        )
        deadline = self.kernel.now + duration
        found: Dict[Address, RemoteDevice] = {}
        while self.kernel.now < deadline:
            recv = self._inquiry_socket.recv()
            timeout = self.kernel.timeout(deadline - self.kernel.now)
            outcome = yield self.kernel.any_of([recv, timeout])
            if recv in outcome:
                response = outcome[recv].payload
                if response.get("kind") == "inquiry-response":
                    bd_addr = Address(response["bd_addr"])
                    found[bd_addr] = RemoteDevice(
                        bd_addr=bd_addr,
                        device_class=response["device_class"],
                        name=response["name"],
                    )
            else:
                # Scan over: withdraw the pending recv so it cannot swallow
                # a later scan's responses.
                self._inquiry_socket.cancel_recv(recv)
                break
        return list(found.values())

    # -- paging (ACL connection) ------------------------------------------------

    def page(self, bd_addr: Address) -> Generator:
        """Establish the ACL connection, claiming a piconet slot."""
        if bd_addr in self._paged:
            return
        self.piconet.claim_slot(bd_addr)
        yield self.kernel.timeout(self.calibration.bluetooth.page_connect_s)
        self._paged.add(bd_addr)

    def detach(self, bd_addr: Address) -> None:
        self._paged.discard(bd_addr)
        self.piconet.release_slot(bd_addr)

    @property
    def connections(self) -> Set[Address]:
        return set(self._paged)

    # -- SDP ------------------------------------------------------------------------

    def sdp_query(
        self, bd_addr: Address, service_class: Optional[str] = None
    ) -> Generator:
        """Service search on a paged device; returns matching records."""
        if bd_addr not in self._paged:
            raise PiconetError(f"SDP query to unpaged device {bd_addr}")
        yield self.kernel.timeout(self.calibration.bluetooth.sdp_query_s)
        records = yield from SdpServer.query(
            self.node, self.costs, bd_addr, service_class
        )
        return records

    # -- L2CAP channels ----------------------------------------------------------------

    def connect_l2cap(self, bd_addr: Address, psm: int) -> Generator:
        """Open an L2CAP channel (a reliable stream) to a paged device."""
        if bd_addr not in self._paged:
            raise PiconetError(f"L2CAP connect to unpaged device {bd_addr}")
        stream = yield StreamSocket.connect(self.node, self.costs, bd_addr, psm)
        return stream

    def listen_l2cap(self, psm: int) -> StreamListener:
        """Accept inbound L2CAP channels on ``psm`` (e.g. HID interrupt)."""
        return StreamListener(self.node, self.costs, psm)

    def close(self) -> None:
        for bd_addr in list(self._paged):
            self.detach(bd_addr)
        self._inquiry_socket.close()
