"""SDP: the Bluetooth Service Discovery Protocol.

Devices publish :class:`ServiceRecord` entries; peers issue service
searches over the SDP PSM.  We carry SDP over datagrams on the piconet
(real SDP runs over a connection-oriented L2CAP channel; the request/
response shape and costs are what matter for the reproduction, and the
adapter charges the calibrated round-trip cost).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.calibration import NetworkCosts
from repro.platforms.bluetooth.l2cap import PSM_SDP
from repro.simnet.addresses import Address
from repro.simnet.net import Node
from repro.simnet.sockets import ConnectionClosed, DatagramSocket

__all__ = ["ServiceRecord", "SdpServer"]

_handle_counter = itertools.count(0x10000)


@dataclass(frozen=True)
class ServiceRecord:
    """One SDP service record."""

    service_class: str                  # e.g. "BIP", "HID"
    name: str
    psm: int                            # where the service listens
    profile_version: str = "1.0"
    attributes: Dict[str, str] = field(default_factory=dict)
    handle: int = field(default_factory=lambda: next(_handle_counter))

    def to_dict(self) -> dict:
        return {
            "service_class": self.service_class,
            "name": self.name,
            "psm": self.psm,
            "profile_version": self.profile_version,
            "attributes": dict(self.attributes),
            "handle": self.handle,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceRecord":
        return cls(**data)

    def estimated_size(self) -> int:
        return 48 + len(self.name) + len(self.service_class)


class SdpServer:
    """Device-side SDP responder."""

    def __init__(self, node: Node, costs: NetworkCosts, records: List[ServiceRecord]):
        self.node = node
        self.costs = costs
        self.kernel = node.network.kernel
        self.records = list(records)
        self._socket = DatagramSocket(node, costs, port=PSM_SDP)
        self.queries_served = 0
        self.kernel.process(self._serve(), name=f"sdp:{node.name}")

    def add_record(self, record: ServiceRecord) -> None:
        self.records.append(record)

    def close(self) -> None:
        self._socket.close()

    def _serve(self) -> Generator:
        while True:
            try:
                request = yield self._socket.recv()
            except ConnectionClosed:
                return
            payload = request.payload
            if not isinstance(payload, dict) or payload.get("kind") != "sdp-search":
                continue
            wanted = payload.get("service_class")
            matches = [
                record.to_dict()
                for record in self.records
                if wanted is None or record.service_class == wanted
            ]
            self.queries_served += 1
            response = {"kind": "sdp-response", "records": matches}
            size = 24 + sum(
                ServiceRecord.from_dict(m).estimated_size() for m in matches
            )
            self._socket.sendto(response, size, request.src, request.sport)

    # -- client side -----------------------------------------------------------

    @staticmethod
    def query(
        node: Node,
        costs: NetworkCosts,
        bd_addr: Address,
        service_class: Optional[str] = None,
    ) -> Generator:
        """One service search transaction; returns list of records."""
        socket = DatagramSocket(node, costs)
        try:
            socket.sendto(
                {"kind": "sdp-search", "service_class": service_class},
                32,
                bd_addr,
                PSM_SDP,
            )
            response = yield socket.recv()
            return [
                ServiceRecord.from_dict(data)
                for data in response.payload.get("records", [])
            ]
        finally:
            socket.close()
