"""The Jini lookup service: leased service registrations.

The lookup service announces its presence on a well-known multicast group
(real Jini uses UDP port 4160) and serves a small TCP protocol:

- ``register`` -- store a :class:`ServiceItem` under a lease (seconds);
  returns the service id and granted lease.
- ``renew`` -- extend a lease before it expires.
- ``cancel`` -- drop a registration immediately.
- ``lookup`` -- query by interface name and/or attribute equality.

Leases are the signature Jini mechanism: a service that crashes simply
stops renewing and its registration evaporates -- exactly the soft-state
behaviour the uMiddle Jini mapper relies on to unmap dead services.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator

from repro.calibration import Calibration
from repro.platforms.rmi.remote import RemoteRef
from repro.simnet.net import Node
from repro.simnet.sockets import (
    ConnectionClosed,
    DatagramSocket,
    StreamListener,
    StreamSocket,
)

__all__ = ["LookupError", "ServiceItem", "JiniLookupService"]

JINI_ANNOUNCE_GROUP = "jini-announce"
JINI_ANNOUNCE_PORT = 4160
LOOKUP_PORT = 4161
ANNOUNCE_INTERVAL = 5.0
#: Default lease granted to registrations.
DEFAULT_LEASE_S = 30.0
REQUEST_SIZE = 128

_service_id_counter = itertools.count(1)


class LookupError(Exception):
    """Registration/lookup failures."""


@dataclass
class ServiceItem:
    """One registered service: a remote reference plus its metadata."""

    service_id: str
    interface: str
    ref: RemoteRef
    attributes: Dict[str, str] = field(default_factory=dict)
    expires_at: float = 0.0

    def to_dict(self) -> dict:
        return {
            "service_id": self.service_id,
            "interface": self.interface,
            "ref": self.ref.to_dict(),
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceItem":
        return cls(
            service_id=data["service_id"],
            interface=data["interface"],
            ref=RemoteRef.from_dict(data["ref"]),
            attributes=dict(data.get("attributes", {})),
        )


class JiniLookupService:
    """One lookup service on a network node."""

    def __init__(
        self,
        node: Node,
        calibration: Calibration,
        port: int = LOOKUP_PORT,
        default_lease_s: float = DEFAULT_LEASE_S,
    ):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.port = port
        self.default_lease_s = default_lease_s
        self.registrations: Dict[str, ServiceItem] = {}
        self.online = True
        self._listener = StreamListener(node, calibration.network, port)
        self._announce_socket = DatagramSocket(node, calibration.network)
        self.kernel.process(self._accept_loop(), name=f"jini-lookup:{node.name}")
        self.kernel.process(self._announce_loop(), name=f"jini-announce:{node.name}")
        self.kernel.process(self._sweep_loop(), name=f"jini-sweep:{node.name}")

    @property
    def address(self):
        return self.node.address

    def close(self) -> None:
        self.online = False
        self._listener.close()
        self._announce_socket.close()

    # -- multicast presence ---------------------------------------------------

    def _announce_loop(self) -> Generator:
        while self.online:
            self._announce_socket.send_multicast(
                {
                    "kind": "jini-announce",
                    "address": str(self.node.address),
                    "port": self.port,
                },
                64,
                JINI_ANNOUNCE_GROUP,
                JINI_ANNOUNCE_PORT,
            )
            yield self.kernel.timeout(ANNOUNCE_INTERVAL)

    # -- lease expiry ----------------------------------------------------------

    def _sweep_loop(self) -> Generator:
        while self.online:
            yield self.kernel.timeout(1.0)
            now = self.kernel.now
            for service_id, item in list(self.registrations.items()):
                if item.expires_at < now:
                    del self.registrations[service_id]

    # -- the request protocol ------------------------------------------------------

    def _accept_loop(self) -> Generator:
        while True:
            try:
                stream = yield self._listener.accept()
            except ConnectionClosed:
                return
            self.kernel.process(self._serve(stream), name="jini-conn")

    def _serve(self, stream: StreamSocket) -> Generator:
        while True:
            try:
                request, _size = yield stream.recv()
            except ConnectionClosed:
                return
            yield self.kernel.timeout(self.calibration.rmi.registry_lookup_s)
            operation = request.get("op")
            if operation == "register":
                item = ServiceItem.from_dict(request["item"])
                if not item.service_id:
                    item.service_id = f"jini-{next(_service_id_counter)}"
                lease = min(
                    float(request.get("lease", self.default_lease_s)),
                    self.default_lease_s,
                )
                item.expires_at = self.kernel.now + lease
                self.registrations[item.service_id] = item
                stream.send(
                    {"status": "ok", "service_id": item.service_id, "lease": lease},
                    REQUEST_SIZE,
                )
            elif operation == "renew":
                item = self.registrations.get(request.get("service_id"))
                if item is None:
                    stream.send(
                        {"status": "error", "error": "unknown lease"}, REQUEST_SIZE
                    )
                    continue
                lease = min(
                    float(request.get("lease", self.default_lease_s)),
                    self.default_lease_s,
                )
                item.expires_at = self.kernel.now + lease
                stream.send({"status": "ok", "lease": lease}, REQUEST_SIZE)
            elif operation == "cancel":
                removed = self.registrations.pop(request.get("service_id"), None)
                stream.send(
                    {"status": "ok" if removed else "error"}, REQUEST_SIZE
                )
            elif operation == "lookup":
                interface = request.get("interface")
                attributes = request.get("attributes") or {}
                now = self.kernel.now
                matches = [
                    item.to_dict()
                    for item in self.registrations.values()
                    if item.expires_at >= now
                    and (interface is None or item.interface == interface)
                    and all(
                        item.attributes.get(key) == value
                        for key, value in attributes.items()
                    )
                ]
                stream.send(
                    {"status": "ok", "items": matches},
                    REQUEST_SIZE + 96 * len(matches),
                )
            else:
                stream.send(
                    {"status": "error", "error": f"bad op {operation!r}"},
                    REQUEST_SIZE,
                )
