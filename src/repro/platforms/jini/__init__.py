"""A simulated Jini platform.

Jini is the third middleware platform the paper's introduction names
(alongside UPnP and Bluetooth).  Architecturally it is Java RMI plus a
discovery story: *lookup services* announce themselves over multicast;
services register remote references with them under **leases** that must
be renewed or the registration evaporates; clients discover lookup
services and query them by interface name and attributes.

We build it on the RMI substrate (:mod:`repro.platforms.rmi` provides the
remote-reference and call machinery) and add the Jini-specific pieces:

- :mod:`repro.platforms.jini.lookup` -- the lookup service (Reggie's role):
  multicast announcement, leased registrations, attribute queries.
- :mod:`repro.platforms.jini.service` -- the service-side join protocol
  (register + auto-renew) and the client-side discovery helper.
"""

from repro.platforms.jini.lookup import (
    JiniLookupService,
    LookupError,
    ServiceItem,
)
from repro.platforms.jini.service import JiniClient, JoinManager, discover_lookup

__all__ = [
    "JiniLookupService",
    "ServiceItem",
    "LookupError",
    "JoinManager",
    "JiniClient",
    "discover_lookup",
]
