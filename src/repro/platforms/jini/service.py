"""Jini join protocol (service side) and discovery/lookup (client side)."""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.calibration import Calibration
from repro.platforms.jini.lookup import (
    JINI_ANNOUNCE_GROUP,
    JINI_ANNOUNCE_PORT,
    LookupError,
    ServiceItem,
)
from repro.platforms.rmi.remote import RemoteRef
from repro.simnet.addresses import Address
from repro.simnet.net import Node
from repro.simnet.sockets import ConnectionClosed, DatagramSocket, StreamSocket

__all__ = ["discover_lookup", "JoinManager", "JiniClient"]

REQUEST_SIZE = 128


def discover_lookup(
    node: Node, calibration: Calibration, wait: float = 6.0
) -> Generator:
    """Listen for lookup-service announcements; returns (address, port).

    Raises :class:`LookupError` if nothing announces within ``wait``
    seconds (announcements arrive every ~5 s).
    """
    socket = DatagramSocket(node, calibration.network)
    socket.join(JINI_ANNOUNCE_GROUP, JINI_ANNOUNCE_PORT)
    kernel = node.network.kernel
    deadline = kernel.now + wait
    try:
        while kernel.now < deadline:
            recv = socket.recv()
            timeout = kernel.timeout(deadline - kernel.now)
            outcome = yield kernel.any_of([recv, timeout])
            if recv not in outcome:
                socket.cancel_recv(recv)
                break
            payload = outcome[recv].payload
            if isinstance(payload, dict) and payload.get("kind") == "jini-announce":
                return Address(payload["address"]), payload["port"]
        raise LookupError("no Jini lookup service announced itself")
    finally:
        socket.close()


class _LookupConnection:
    """A reusable stream to one lookup service."""

    def __init__(self, node: Node, calibration: Calibration, address: Address, port: int):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.address = address
        self.port = port
        self._stream: Optional[StreamSocket] = None

    def request(self, payload: dict) -> Generator:
        if self._stream is None or self._stream.closed:
            self._stream = yield StreamSocket.connect(
                self.node, self.calibration.network, self.address, self.port
            )
        self._stream.send(payload, REQUEST_SIZE)
        response, _size = yield self._stream.recv()
        if response.get("status") != "ok":
            raise LookupError(response.get("error", "lookup failure"))
        return response

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()


class JoinManager:
    """Service-side join protocol: register, then keep the lease alive.

    Mirrors Jini's ``JoinManager``: construction registers the service;
    a background process renews at half-lease cadence until :meth:`leave`
    (or the hosting process dies, after which the lease lapses and the
    lookup entry evaporates -- crash semantics for free).
    """

    def __init__(
        self,
        node: Node,
        calibration: Calibration,
        lookup_address: Address,
        lookup_port: int,
        interface: str,
        ref: RemoteRef,
        attributes: Optional[Dict[str, str]] = None,
    ):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.connection = _LookupConnection(
            node, calibration, lookup_address, lookup_port
        )
        self.interface = interface
        self.ref = ref
        self.attributes = dict(attributes or {})
        self.service_id: Optional[str] = None
        self.lease: float = 0.0
        self.active = False
        self.renewals = 0

    def join(self) -> Generator:
        """Register and start the renewal process; returns the service id."""
        item = ServiceItem(
            service_id="",
            interface=self.interface,
            ref=self.ref,
            attributes=self.attributes,
        )
        response = yield from self.connection.request(
            {"op": "register", "item": item.to_dict()}
        )
        self.service_id = response["service_id"]
        self.lease = response["lease"]
        self.active = True
        self.kernel.process(self._renew_loop(), name=f"jini-renew:{self.service_id}")
        return self.service_id

    def _renew_loop(self) -> Generator:
        while self.active:
            yield self.kernel.timeout(self.lease / 2)
            if not self.active:
                return
            try:
                response = yield from self.connection.request(
                    {"op": "renew", "service_id": self.service_id}
                )
                self.lease = response["lease"]
                self.renewals += 1
            except (LookupError, ConnectionClosed):
                self.active = False
                return

    def leave(self) -> Generator:
        """Cancel the registration explicitly (graceful departure)."""
        self.active = False
        if self.service_id is not None:
            try:
                yield from self.connection.request(
                    {"op": "cancel", "service_id": self.service_id}
                )
            except (LookupError, ConnectionClosed):
                pass
        self.connection.close()

    def crash(self) -> None:
        """Simulate a crash: stop renewing without telling anyone."""
        self.active = False
        self.connection.close()


class JiniClient:
    """Client-side lookup: query a known lookup service."""

    def __init__(
        self,
        node: Node,
        calibration: Calibration,
        lookup_address: Address,
        lookup_port: int,
    ):
        self.connection = _LookupConnection(
            node, calibration, lookup_address, lookup_port
        )

    def lookup(
        self,
        interface: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
    ) -> Generator:
        """Matching :class:`ServiceItem` entries."""
        response = yield from self.connection.request(
            {"op": "lookup", "interface": interface, "attributes": attributes or {}}
        )
        return [ServiceItem.from_dict(data) for data in response["items"]]

    def close(self) -> None:
        self.connection.close()
