"""TinyOS-style active messages."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["AM_PAYLOAD_LIMIT", "AM_HEADER_BYTES", "ActiveMessage", "AmError"]

#: The classic TOS_Msg payload limit.
AM_PAYLOAD_LIMIT = 29
AM_HEADER_BYTES = 7


class AmError(Exception):
    """Active-message framing errors."""


@dataclass(frozen=True)
class ActiveMessage:
    """One active message: type id, source mote, small payload."""

    am_type: int
    source: int
    payload: Dict[str, Any]
    payload_size: int

    def __post_init__(self):
        if not 0 <= self.am_type <= 255:
            raise AmError(f"AM type out of range: {self.am_type}")
        if self.payload_size > AM_PAYLOAD_LIMIT:
            raise AmError(
                f"payload {self.payload_size}B exceeds the {AM_PAYLOAD_LIMIT}B limit"
            )

    @property
    def wire_size(self) -> int:
        return AM_HEADER_BYTES + self.payload_size
