"""Deterministic synthetic sensor signals.

The paper's motes were physical sensor boards; these generators provide
reproducible readings as functions of simulated time, so tests and
benchmarks see identical traces on every run.
"""

from __future__ import annotations

import math
from typing import Callable

__all__ = ["sine_sensor", "ramp_sensor", "constant_sensor", "step_sensor"]

Sensor = Callable[[float], float]


def sine_sensor(mean: float, amplitude: float, period_s: float) -> Sensor:
    """A diurnal-style oscillation, e.g. room temperature."""

    def read(now: float) -> float:
        return mean + amplitude * math.sin(2 * math.pi * now / period_s)

    return read


def ramp_sensor(start: float, slope_per_s: float) -> Sensor:
    """A steadily drifting value, e.g. battery voltage decay."""

    def read(now: float) -> float:
        return start + slope_per_s * now

    return read


def constant_sensor(value: float) -> Sensor:
    def read(_now: float) -> float:
        return value

    return read


def step_sensor(low: float, high: float, step_at_s: float) -> Sensor:
    """A threshold event, e.g. a light turning on."""

    def read(now: float) -> float:
        return high if now >= step_at_s else low

    return read
