"""A simulated Berkeley mote."""

from __future__ import annotations

import itertools
from typing import Dict, Generator, Optional

from repro.calibration import Calibration
from repro.platforms.motes.am import ActiveMessage
from repro.platforms.motes.sensors import Sensor
from repro.simnet.net import Hub, Network, Node
from repro.simnet.sockets import DatagramSocket

__all__ = ["Mote", "make_radio", "RADIO_PORT", "AM_SENSOR_READING"]

RADIO_PORT = 7
#: AM type carrying one sensor reading.
AM_SENSOR_READING = 17
#: AM type carrying a command to a mote (set-interval, sample-now).
AM_COMMAND = 18

_mote_counter = itertools.count(1)


def make_radio(network: Network, calibration: Calibration, name: str = "mote-radio") -> Hub:
    """The shared low-rate radio channel motes and the base station share."""
    motes = calibration.motes
    return network.add_hub(
        name,
        bandwidth_bps=motes.radio_bandwidth_bps,
        latency_s=motes.radio_latency_s,
        frame_overhead_bytes=5,
    )


class Mote:
    """One sensor mote: samples its sensors periodically, radios readings.

    ``sensors`` maps sensor names to deterministic signal functions from
    :mod:`repro.platforms.motes.sensors`.
    """

    def __init__(
        self,
        radio: Hub,
        calibration: Calibration,
        sensors: Dict[str, Sensor],
        sample_interval_s: float = 5.0,
        mote_id: Optional[int] = None,
    ):
        self.network = radio.network
        self.kernel = self.network.kernel
        self.calibration = calibration
        self.mote_id = mote_id if mote_id is not None else next(_mote_counter)
        self.sensors = dict(sensors)
        self.sample_interval_s = sample_interval_s
        self.node: Node = self.network.add_node(f"mote-{self.mote_id}")
        self.node.attach(radio.medium if hasattr(radio, "medium") else radio)
        # Motes use a lightweight cost profile: tiny headers, no TCP.
        from repro.calibration import NetworkCosts

        self._costs = NetworkCosts(
            ethernet_bandwidth_bps=calibration.motes.radio_bandwidth_bps,
            ethernet_latency_s=calibration.motes.radio_latency_s,
            ethernet_frame_overhead_bytes=5,
            udp_header_bytes=0,
            udp_datagram_processing_s=0.000_5,
        )
        self._socket = DatagramSocket(self.node, self._costs, port=RADIO_PORT)
        self._base_station_address = None
        self.readings_sent = 0
        self.commands_received = 0
        self.online = True
        self._sample_wakeup = None
        self._process = self.kernel.process(
            self._sample_loop(), name=f"mote:{self.mote_id}"
        )
        self.kernel.process(self._command_loop(), name=f"mote-cmd:{self.mote_id}")

    def attach_to(self, base_station_address) -> None:
        self._base_station_address = base_station_address

    def _sample_loop(self) -> Generator:
        while self.online:
            self._sample_wakeup = self.kernel.event(
                name=f"mote-sleep:{self.mote_id}"
            )
            self.kernel.call_later(
                self.sample_interval_s,
                lambda e=self._sample_wakeup: None if e.triggered else e.succeed(),
            )
            yield self._sample_wakeup
            if not self.online:
                return
            yield from self._sample_all()

    def _sample_all(self) -> Generator:
        if self._base_station_address is None:
            return
        motes = self.calibration.motes
        for sensor_name, sensor in self.sensors.items():
            yield self.kernel.timeout(motes.sample_s)
            if not self.online:
                return
            value = sensor(self.kernel.now)
            message = ActiveMessage(
                am_type=AM_SENSOR_READING,
                source=self.mote_id,
                payload={
                    "sensor": sensor_name,
                    "value": round(value, 3),
                },
                payload_size=12,
            )
            self._socket.sendto(
                message, message.wire_size, self._base_station_address, RADIO_PORT
            )
            self.readings_sent += 1

    def _command_loop(self) -> Generator:
        """TinyOS-style command dispatch: the base station can retask us."""
        from repro.simnet.sockets import ConnectionClosed

        while self.online:
            try:
                datagram = yield self._socket.recv()
            except ConnectionClosed:
                return
            message = datagram.payload
            if not isinstance(message, ActiveMessage):
                continue
            if message.am_type != AM_COMMAND or not self.online:
                continue
            self.commands_received += 1
            command = message.payload.get("command")
            if command == "set-interval":
                self.sample_interval_s = max(
                    0.1, float(message.payload.get("interval", self.sample_interval_s))
                )
                # Wake the sampler so the new cadence applies immediately.
                if self._sample_wakeup is not None and not self._sample_wakeup.triggered:
                    self._sample_wakeup.succeed()
            elif command == "sample-now":
                self.kernel.process(
                    self._sample_all(), name=f"mote-sample-now:{self.mote_id}"
                )

    def power_off(self) -> None:
        self.online = False
        self._socket.close()
        if self._sample_wakeup is not None and not self._sample_wakeup.triggered:
            self._sample_wakeup.succeed()
