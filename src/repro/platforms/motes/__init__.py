"""Berkeley Motes: a TinyOS-style sensor network.

MICA-era motes on a 19.2 kbps radio send 29-byte active messages to a base
station attached to a host.  uMiddle's motes mapper (Section 3.2 lists the
"Berkeley Motes platform" among the bridged platforms) surfaces each mote
as a translator with sensor output ports.
"""

from repro.platforms.motes.am import AM_PAYLOAD_LIMIT, ActiveMessage
from repro.platforms.motes.basestation import BaseStation
from repro.platforms.motes.mote import Mote
from repro.platforms.motes.sensors import (
    constant_sensor,
    ramp_sensor,
    sine_sensor,
)

__all__ = [
    "ActiveMessage",
    "AM_PAYLOAD_LIMIT",
    "Mote",
    "BaseStation",
    "sine_sensor",
    "ramp_sensor",
    "constant_sensor",
]
