"""The mote base station: bridges the radio to a host node."""

from __future__ import annotations

from typing import Callable, Dict, Generator, List

from repro.calibration import Calibration, NetworkCosts
from repro.platforms.motes.am import ActiveMessage
from repro.platforms.motes.mote import RADIO_PORT
from repro.simnet.net import Hub, Node
from repro.simnet.sockets import ConnectionClosed, DatagramSocket

__all__ = ["BaseStation"]


class BaseStation:
    """Receives active messages from the radio and hands them to the host.

    The base station is attached to (or co-located with) a uMiddle host
    node: the motes mapper registers callbacks with :meth:`on_message`.
    It also tracks which motes have been heard recently, providing the
    mapper's notion of presence (motes that fall silent disappear).
    """

    def __init__(self, host_node: Node, radio: Hub, calibration: Calibration):
        self.node = host_node
        self.calibration = calibration
        self.kernel = host_node.network.kernel
        if host_node.interface_on(radio) is None:
            host_node.attach(radio)
        self._costs = NetworkCosts(
            ethernet_bandwidth_bps=calibration.motes.radio_bandwidth_bps,
            ethernet_latency_s=calibration.motes.radio_latency_s,
            ethernet_frame_overhead_bytes=5,
            udp_header_bytes=0,
            udp_datagram_processing_s=0.000_5,
        )
        self._socket = DatagramSocket(host_node, self._costs, port=RADIO_PORT)
        self._callbacks: List[Callable[[ActiveMessage], None]] = []
        #: mote id -> last heard simulated time
        self.last_heard: Dict[int, float] = {}
        #: mote id -> radio address, learned from received messages
        self.addresses: Dict[int, object] = {}
        self.messages_received = 0
        self.commands_sent = 0
        self.kernel.process(self._receive_loop(), name=f"basestation:{host_node.name}")

    @property
    def radio_address(self):
        return self.node.interfaces[-1].address if self.node.interfaces else None

    def on_message(self, callback: Callable[[ActiveMessage], None]) -> None:
        self._callbacks.append(callback)

    def heard_since(self, deadline: float) -> List[int]:
        """Mote ids heard at or after ``deadline``."""
        return sorted(
            mote_id for mote_id, at in self.last_heard.items() if at >= deadline
        )

    def close(self) -> None:
        self._socket.close()

    def _receive_loop(self) -> Generator:
        while True:
            try:
                datagram = yield self._socket.recv()
            except ConnectionClosed:
                return
            message = datagram.payload
            if not isinstance(message, ActiveMessage):
                continue
            self.messages_received += 1
            self.last_heard[message.source] = self.kernel.now
            self.addresses[message.source] = datagram.src
            for callback in list(self._callbacks):
                callback(message)

    def send_command(self, mote_id: int, payload: Dict) -> None:
        """Radio a command AM to a mote we have heard from."""
        from repro.platforms.motes.am import AmError
        from repro.platforms.motes.mote import AM_COMMAND, RADIO_PORT

        address = self.addresses.get(mote_id)
        if address is None:
            raise AmError(f"never heard from mote {mote_id}")
        message = ActiveMessage(
            am_type=AM_COMMAND, source=0, payload=dict(payload), payload_size=14
        )
        self._socket.sendto(message, message.wire_size, address, RADIO_PORT)
        self.commands_sent += 1
