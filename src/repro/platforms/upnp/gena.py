"""GENA: UPnP's General Event Notification Architecture.

Control points SUBSCRIBE to a service's evented state variables; the device
then pushes NOTIFY messages carrying variable changes.  In real UPnP the
NOTIFY is an HTTP callback to a URL the subscriber serves; here the
subscriber runs an event listener (a small stream server) and the device
connects back to it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Generator

from repro.calibration import Calibration
from repro.simnet.addresses import Address
from repro.simnet.net import Node
from repro.simnet.sockets import ConnectionClosed, StreamListener, StreamSocket

__all__ = ["EventListener", "Subscription", "NOTIFY_SIZE_OVERHEAD"]

_sid_counter = itertools.count(1)
_listener_port_counter = itertools.count(6100)

NOTIFY_SIZE_OVERHEAD = 180  # HTTP NOTIFY headers + property-set XML wrapper


#: Default GENA lease duration (real devices commonly use 1800 s; we use a
#: shorter lease so tests exercise expiry and renewal quickly).
DEFAULT_LEASE_S = 300.0


@dataclass
class Subscription:
    """Device-side record of one subscriber."""

    sid: str
    callback_address: Address
    callback_port: int
    service_id: str
    sequence: int = 0
    expires_at: float = float("inf")


class EventListener:
    """Subscriber-side NOTIFY sink: dispatches variable changes by SID."""

    def __init__(self, node: Node, calibration: Calibration):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.port = next(_listener_port_counter)
        self._listener = StreamListener(node, calibration.network, self.port)
        self._callbacks: Dict[str, Callable[[str, str], None]] = {}
        self.notifications_received = 0
        self.kernel.process(self._accept_loop(), name=f"gena-listen:{node.name}")

    def expect(self, sid: str, callback: Callable[[str, str], None]) -> None:
        """Route NOTIFYs carrying ``sid`` to ``callback(variable, value)``."""
        self._callbacks[sid] = callback

    def forget(self, sid: str) -> None:
        self._callbacks.pop(sid, None)

    def close(self) -> None:
        self._listener.close()

    def _accept_loop(self) -> Generator:
        while True:
            try:
                stream = yield self._listener.accept()
            except ConnectionClosed:
                return
            self.kernel.process(
                self._serve(stream), name=f"gena-serve:{self.node.name}"
            )

    def _serve(self, stream: StreamSocket) -> Generator:
        while True:
            try:
                notify, _size = yield stream.recv()
            except ConnectionClosed:
                return
            if not isinstance(notify, dict) or notify.get("kind") != "gena-notify":
                continue
            self.notifications_received += 1
            callback = self._callbacks.get(notify["sid"])
            if callback is not None:
                callback(notify["variable"], notify["value"])


def new_sid() -> str:
    return f"uuid:gena-{next(_sid_counter)}"
