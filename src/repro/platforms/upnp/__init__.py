"""A simulated UPnP stack (Universal Plug'n'Play).

Protocol surface faithful to UPnP 1.0 as the paper used it (via the
CyberLink Java library): SSDP multicast discovery, HTTP-served XML device
descriptions, SOAP control and GENA eventing.  Payload bytes are simulated
(documents are real XML strings so parse costs are honest), and every
protocol step charges its calibrated cost.
"""

from repro.platforms.upnp.ssdp import SSDP_GROUP, SSDP_PORT, SsdpAgent, SsdpMessage
from repro.platforms.upnp.description import (
    ActionDescription,
    DeviceDescription,
    ServiceDescription,
    StateVariable,
    parse_device_description,
)
from repro.platforms.upnp.soap import (
    SoapFault,
    build_request,
    build_response,
    parse_request,
    parse_response,
)
from repro.platforms.upnp.device import UPnPDevice
from repro.platforms.upnp.control_point import ControlPoint, DiscoveredDevice
from repro.platforms.upnp.devices import (
    make_air_conditioner,
    make_binary_light,
    make_clock,
    make_media_renderer,
)

__all__ = [
    "SSDP_GROUP",
    "SSDP_PORT",
    "SsdpAgent",
    "SsdpMessage",
    "ActionDescription",
    "DeviceDescription",
    "ServiceDescription",
    "StateVariable",
    "parse_device_description",
    "SoapFault",
    "build_request",
    "build_response",
    "parse_request",
    "parse_response",
    "UPnPDevice",
    "ControlPoint",
    "DiscoveredDevice",
    "make_air_conditioner",
    "make_binary_light",
    "make_clock",
    "make_media_renderer",
]
