"""A UPnP control point: discovery, description fetch, control, eventing.

This is the CyberLink-library role in the paper's testbed: the uMiddle UPnP
mapper drives a control point to find devices and talk to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from repro.calibration import Calibration
from repro.platforms.upnp import soap
from repro.platforms.upnp.description import parse_device_description
from repro.platforms.upnp.device import HTTP_HEADER_OVERHEAD
from repro.platforms.upnp.gena import EventListener
from repro.platforms.upnp.ssdp import (
    NOTIFY_ALIVE,
    SEARCH_ALL,
    SsdpAgent,
    SsdpMessage,
)
from repro.simnet.addresses import Address
from repro.simnet.net import Node
from repro.simnet.sockets import ConnectionClosed, StreamSocket

__all__ = ["DiscoveredDevice", "ControlPoint"]


@dataclass(frozen=True)
class DiscoveredDevice:
    """What SSDP tells us before fetching the description."""

    usn: str
    device_type: str
    location: str

    @property
    def address(self) -> Address:
        host, _port = self.location.rsplit(":", 1)
        return Address(host)

    @property
    def port(self) -> int:
        return int(self.location.rsplit(":", 1)[1])


class ControlPoint:
    """Discovers and drives UPnP devices from one network node."""

    def __init__(self, node: Node, calibration: Calibration):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.ssdp = SsdpAgent(node, calibration)
        self._streams: Dict[str, StreamSocket] = {}
        self._event_listener: Optional[EventListener] = None
        self._presence_callbacks: List[Callable[[str, DiscoveredDevice], None]] = []
        self._active_sids: set = set()
        self.ssdp.on_notify(self._on_notify)

    # -- discovery ---------------------------------------------------------------

    def search(self, target: str = SEARCH_ALL, wait: float = 0.3) -> Generator:
        """Active M-SEARCH; returns a list of :class:`DiscoveredDevice`."""
        responses = yield from self.ssdp.search(target, wait)
        found: Dict[str, DiscoveredDevice] = {}
        for response in responses:
            found[response.usn] = DiscoveredDevice(
                usn=response.usn,
                device_type=response.notification_type,
                location=response.location,
            )
        return list(found.values())

    def on_presence(
        self, callback: Callable[[str, DiscoveredDevice], None]
    ) -> None:
        """Passive discovery: ``callback(kind, device)`` for alive/byebye."""
        self._presence_callbacks.append(callback)

    def _on_notify(self, message: SsdpMessage, _source: Address) -> None:
        device = DiscoveredDevice(
            usn=message.usn,
            device_type=message.notification_type,
            location=message.location,
        )
        kind = "alive" if message.kind == NOTIFY_ALIVE else "byebye"
        for callback in list(self._presence_callbacks):
            callback(kind, device)

    # -- description --------------------------------------------------------------

    def fetch_description(self, device: DiscoveredDevice) -> Generator:
        """GET and parse the device description document."""
        stream = yield from self._stream_to(device)
        stream.send({"method": "GET", "path": "/description.xml"}, HTTP_HEADER_OVERHEAD)
        response, _size = yield stream.recv()
        document = response["body"]
        description = parse_device_description(document)
        # Parsing cost proportional to the document's element count.
        yield self.kernel.timeout(
            self.calibration.upnp.xml_parse_per_element_s
            * description.element_count()
        )
        return description

    # -- control ------------------------------------------------------------------------

    def invoke(
        self,
        device: DiscoveredDevice,
        service_type: str,
        service_id: str,
        action: str,
        arguments: Dict[str, str],
    ) -> Generator:
        """Invoke one action; returns the out-arguments or raises SoapFault."""
        yield self.kernel.timeout(self.calibration.upnp.soap_marshal_s)
        body = soap.build_request(service_type, action, arguments)
        stream = yield from self._stream_to(device)
        stream.send(
            {"method": "POST", "path": f"/control/{service_id}", "body": body},
            HTTP_HEADER_OVERHEAD + len(body),
        )
        response, _size = yield stream.recv()
        yield self.kernel.timeout(self.calibration.upnp.soap_unmarshal_s)
        return soap.parse_response(response["body"])

    # -- eventing -----------------------------------------------------------------------------

    def subscribe(
        self,
        device: DiscoveredDevice,
        service_id: str,
        callback: Callable[[str, str], None],
        auto_renew: bool = True,
    ) -> Generator:
        """GENA-subscribe to a service; returns the subscription SID.

        Subscriptions are leased soft state; with ``auto_renew`` (the
        default) a background process renews before expiry, as real control
        points do.
        """
        if self._event_listener is None:
            self._event_listener = EventListener(self.node, self.calibration)
        stream = yield from self._stream_to(device)
        stream.send(
            {
                "method": "SUBSCRIBE",
                "path": f"/events/{service_id}",
                "callback_address": str(self.node.address),
                "callback_port": self._event_listener.port,
            },
            HTTP_HEADER_OVERHEAD,
        )
        response, _size = yield stream.recv()
        sid = response["sid"]
        lease = response.get("lease", 300.0)
        self._event_listener.expect(sid, callback)
        if auto_renew:
            self._active_sids.add(sid)
            self.kernel.process(
                self._renew_loop(device, service_id, sid, lease),
                name=f"gena-renew:{sid}",
            )
        return sid

    def _renew_loop(
        self, device: DiscoveredDevice, service_id: str, sid: str, lease: float
    ) -> Generator:
        while sid in self._active_sids:
            yield self.kernel.timeout(lease / 2)
            if sid not in self._active_sids:
                return
            try:
                stream = yield from self._stream_to(device)
                stream.send(
                    {
                        "method": "SUBSCRIBE",
                        "path": f"/events/{service_id}",
                        "sid": sid,
                    },
                    HTTP_HEADER_OVERHEAD,
                )
                response, _size = yield stream.recv()
                if response.get("status") != 200:
                    self._active_sids.discard(sid)
                    return
                lease = response.get("lease", lease)
            except (ConnectionClosed, Exception):
                self._active_sids.discard(sid)
                return

    def unsubscribe(self, sid: str) -> None:
        """Stop receiving (and renewing); the device-side lease just lapses.

        Use :meth:`unsubscribe_at` to also tell the device immediately.
        """
        self._active_sids.discard(sid)
        if self._event_listener is not None:
            self._event_listener.forget(sid)

    def unsubscribe_at(self, device: DiscoveredDevice, sid: str) -> Generator:
        """Explicit GENA UNSUBSCRIBE at the device."""
        self.unsubscribe(sid)
        stream = yield from self._stream_to(device)
        stream.send(
            {"method": "UNSUBSCRIBE", "path": "/events/", "sid": sid},
            HTTP_HEADER_OVERHEAD,
        )
        yield stream.recv()

    # -- plumbing --------------------------------------------------------------------------------

    def _stream_to(self, device: DiscoveredDevice) -> Generator:
        stream = self._streams.get(device.location)
        if stream is not None and not stream.closed:
            return stream
        stream = yield StreamSocket.connect(
            self.node, self.calibration.network, device.address, device.port
        )
        self._streams[device.location] = stream
        return stream

    def close(self) -> None:
        self.ssdp.close()
        for stream in self._streams.values():
            stream.close()
        self._streams.clear()
        if self._event_listener is not None:
            self._event_listener.close()
