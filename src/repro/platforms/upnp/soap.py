"""SOAP envelopes for UPnP control.

UPnP actions travel as SOAP 1.1 envelopes over HTTP POST.  We build and
parse real XML strings so payload sizes and parse work are honest; the
calibrated marshal/unmarshal costs are charged by the device and control
point, not here (this module is pure data transformation).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "SoapError",
    "SoapFault",
    "build_request",
    "parse_request",
    "build_response",
    "build_fault",
    "parse_response",
]

ENVELOPE_NS = "http://schemas.xmlsoap.org/soap/envelope/"


class SoapError(Exception):
    """Malformed SOAP documents."""


@dataclass(frozen=True)
class SoapFault(Exception):
    """A UPnP error response (SOAP fault)."""

    code: int
    description: str

    def __str__(self) -> str:
        return f"UPnPError {self.code}: {self.description}"


def build_request(service_type: str, action: str, arguments: Dict[str, str]) -> str:
    """Serialize an action invocation to its SOAP envelope."""
    envelope = ET.Element(f"{{{ENVELOPE_NS}}}Envelope")
    body = ET.SubElement(envelope, f"{{{ENVELOPE_NS}}}Body")
    action_el = ET.SubElement(body, f"{{{service_type}}}{action}")
    for name in sorted(arguments):
        ET.SubElement(action_el, name).text = str(arguments[name])
    return ET.tostring(envelope, encoding="unicode")


def parse_request(text: str) -> Tuple[str, str, Dict[str, str]]:
    """Parse a request envelope; returns (service_type, action, arguments)."""
    action_el = _body_element(text)
    service_type, action = _split_qualified(action_el.tag)
    arguments = {_local(child.tag): (child.text or "") for child in action_el}
    return service_type, action, arguments


def build_response(service_type: str, action: str, results: Dict[str, str]) -> str:
    """Serialize an action response envelope."""
    envelope = ET.Element(f"{{{ENVELOPE_NS}}}Envelope")
    body = ET.SubElement(envelope, f"{{{ENVELOPE_NS}}}Body")
    response_el = ET.SubElement(body, f"{{{service_type}}}{action}Response")
    for name in sorted(results):
        ET.SubElement(response_el, name).text = str(results[name])
    return ET.tostring(envelope, encoding="unicode")


def build_fault(code: int, description: str) -> str:
    envelope = ET.Element(f"{{{ENVELOPE_NS}}}Envelope")
    body = ET.SubElement(envelope, f"{{{ENVELOPE_NS}}}Body")
    fault = ET.SubElement(body, f"{{{ENVELOPE_NS}}}Fault")
    ET.SubElement(fault, "faultcode").text = str(code)
    ET.SubElement(fault, "faultstring").text = description
    return ET.tostring(envelope, encoding="unicode")


def parse_response(text: str) -> Dict[str, str]:
    """Parse a response envelope into its result dict; raises SoapFault."""
    element = _body_element(text)
    if _local(element.tag) == "Fault":
        code_el = element.find("faultcode")
        string_el = element.find("faultstring")
        raise SoapFault(
            code=int(code_el.text) if code_el is not None and code_el.text else 0,
            description=string_el.text if string_el is not None else "",
        )
    return {_local(child.tag): (child.text or "") for child in element}


def _body_element(text: str) -> ET.Element:
    try:
        envelope = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SoapError(f"malformed SOAP XML: {exc}") from exc
    body = envelope.find(f"{{{ENVELOPE_NS}}}Body")
    if body is None or len(body) == 0:
        raise SoapError("missing SOAP body")
    return body[0]


def _split_qualified(tag: str) -> Tuple[str, str]:
    if not tag.startswith("{"):
        raise SoapError(f"unqualified body element {tag!r}")
    namespace, local = tag[1:].split("}", 1)
    return namespace, local


def _local(tag: str) -> str:
    return tag.split("}", 1)[1] if tag.startswith("{") else tag
