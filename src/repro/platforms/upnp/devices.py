"""Concrete UPnP device models used throughout the reproduction.

These are the devices Section 5 benchmarks: a binary light (the CyberLink
emulated light switch of Section 5.2), a clock (whose 14-port translator
dominates Figure 10), an air conditioner, and a MediaRenderer TV (the
running example of Figure 5).  Each factory returns a fully wired
:class:`UPnPDevice` with handlers that maintain honest device state.
"""

from __future__ import annotations

import itertools
from typing import Dict

from repro.calibration import Calibration
from repro.platforms.upnp.description import (
    ActionDescription,
    ArgumentDescription,
    DeviceDescription,
    ServiceDescription,
    StateVariable,
)
from repro.platforms.upnp.device import UPnPDevice
from repro.simnet.net import Node

__all__ = [
    "BINARY_LIGHT_TYPE",
    "CLOCK_TYPE",
    "AIR_CONDITIONER_TYPE",
    "MEDIA_RENDERER_TYPE",
    "make_binary_light",
    "make_clock",
    "make_air_conditioner",
    "make_media_renderer",
]

BINARY_LIGHT_TYPE = "urn:schemas-upnp-org:device:BinaryLight:1"
CLOCK_TYPE = "urn:schemas-upnp-org:device:Clock:1"
AIR_CONDITIONER_TYPE = "urn:schemas-upnp-org:device:AirConditioner:1"
MEDIA_RENDERER_TYPE = "urn:schemas-upnp-org:device:MediaRenderer:1"

_udn_counter = itertools.count(1)


def _udn(kind: str) -> str:
    return f"uuid:{kind}-{next(_udn_counter)}"


def _in(name: str, variable: str) -> ArgumentDescription:
    return ArgumentDescription(name, "in", variable)


def _out(name: str, variable: str) -> ArgumentDescription:
    return ArgumentDescription(name, "out", variable)


# ---------------------------------------------------------------------------
# Binary light
# ---------------------------------------------------------------------------

def make_binary_light(
    node: Node, calibration: Calibration, friendly_name: str = "Binary Light"
) -> UPnPDevice:
    """The emulated light switch of Section 5.2.

    One SwitchPower service: ``SetPower(Power)`` and ``GetStatus``, with an
    evented ``Status`` variable.  The physical light level is observable as
    ``device.state['SwitchPower']['Status']``.
    """
    description = DeviceDescription(
        device_type=BINARY_LIGHT_TYPE,
        friendly_name=friendly_name,
        udn=_udn("light"),
        services=[
            ServiceDescription(
                service_type="urn:schemas-upnp-org:service:SwitchPower:1",
                service_id="SwitchPower",
                actions=[
                    ActionDescription("SetPower", [_in("Power", "Status")]),
                    ActionDescription("GetStatus", [_out("ResultStatus", "Status")]),
                ],
                state_variables=[
                    StateVariable("Status", "boolean", evented=True, default="0")
                ],
            )
        ],
    )
    device = UPnPDevice(node, calibration, description)

    def set_power(arguments: Dict[str, str], dev: UPnPDevice) -> Dict[str, str]:
        dev.set_state("SwitchPower", "Status", arguments["Power"])
        return {}

    def get_status(_arguments: Dict[str, str], dev: UPnPDevice) -> Dict[str, str]:
        return {"ResultStatus": dev.get_state("SwitchPower", "Status")}

    device.on_action("SwitchPower", "SetPower", set_power)
    device.on_action("SwitchPower", "GetStatus", get_status)
    return device


# ---------------------------------------------------------------------------
# Clock
# ---------------------------------------------------------------------------

def make_clock(
    node: Node, calibration: Calibration, friendly_name: str = "Clock"
) -> UPnPDevice:
    """The clock whose translator carries 14 ports (Figure 10).

    A TimeService with six actions over time/date/alarm state, four of the
    variables evented.  The matching USDL document (see
    :mod:`repro.bridges.usdl_library`) exposes 12 digital and 2 physical
    ports plus the two service/device hierarchy entities.
    """
    description = DeviceDescription(
        device_type=CLOCK_TYPE,
        friendly_name=friendly_name,
        udn=_udn("clock"),
        services=[
            ServiceDescription(
                service_type="urn:schemas-upnp-org:service:TimeService:1",
                service_id="TimeService",
                actions=[
                    ActionDescription("SetTime", [_in("NewTime", "Time")]),
                    ActionDescription("GetTime", [_out("CurrentTime", "Time")]),
                    ActionDescription("SetDate", [_in("NewDate", "Date")]),
                    ActionDescription("GetDate", [_out("CurrentDate", "Date")]),
                    ActionDescription("SetAlarm", [_in("AlarmTime", "Alarm")]),
                    ActionDescription("CancelAlarm", []),
                    ActionDescription("SetChime", [_in("NewChime", "Chime")]),
                ],
                state_variables=[
                    StateVariable("Time", "string", evented=True, default="00:00:00"),
                    StateVariable("Date", "string", evented=True, default="2006-01-01"),
                    StateVariable("Alarm", "string", evented=True, default=""),
                    StateVariable("Chime", "boolean", evented=True, default="0"),
                ],
            )
        ],
    )
    device = UPnPDevice(node, calibration, description)

    def set_time(arguments, dev):
        dev.set_state("TimeService", "Time", arguments["NewTime"])
        return {}

    def get_time(_arguments, dev):
        return {"CurrentTime": dev.get_state("TimeService", "Time")}

    def set_date(arguments, dev):
        dev.set_state("TimeService", "Date", arguments["NewDate"])
        return {}

    def get_date(_arguments, dev):
        return {"CurrentDate": dev.get_state("TimeService", "Date")}

    def set_alarm(arguments, dev):
        dev.set_state("TimeService", "Alarm", arguments["AlarmTime"])
        return {}

    def cancel_alarm(_arguments, dev):
        dev.set_state("TimeService", "Alarm", "")
        return {}

    def set_chime(arguments, dev):
        dev.set_state("TimeService", "Chime", arguments["NewChime"])
        return {}

    device.on_action("TimeService", "SetChime", set_chime)
    device.on_action("TimeService", "SetTime", set_time)
    device.on_action("TimeService", "GetTime", get_time)
    device.on_action("TimeService", "SetDate", set_date)
    device.on_action("TimeService", "GetDate", get_date)
    device.on_action("TimeService", "SetAlarm", set_alarm)
    device.on_action("TimeService", "CancelAlarm", cancel_alarm)
    return device


# ---------------------------------------------------------------------------
# Air conditioner
# ---------------------------------------------------------------------------

def make_air_conditioner(
    node: Node, calibration: Calibration, friendly_name: str = "Air Conditioner"
) -> UPnPDevice:
    """An air conditioner: SetTemperature / GetTemperature, evented."""
    description = DeviceDescription(
        device_type=AIR_CONDITIONER_TYPE,
        friendly_name=friendly_name,
        udn=_udn("aircon"),
        services=[
            ServiceDescription(
                service_type="urn:schemas-upnp-org:service:Thermostat:1",
                service_id="Thermostat",
                actions=[
                    ActionDescription(
                        "SetTemperature", [_in("NewTemperature", "Temperature")]
                    ),
                    ActionDescription(
                        "GetTemperature", [_out("CurrentTemperature", "Temperature")]
                    ),
                ],
                state_variables=[
                    StateVariable("Temperature", "i4", evented=True, default="24")
                ],
            )
        ],
    )
    device = UPnPDevice(node, calibration, description)

    def set_temperature(arguments, dev):
        dev.set_state("Thermostat", "Temperature", arguments["NewTemperature"])
        return {}

    def get_temperature(_arguments, dev):
        return {"CurrentTemperature": dev.get_state("Thermostat", "Temperature")}

    device.on_action("Thermostat", "SetTemperature", set_temperature)
    device.on_action("Thermostat", "GetTemperature", get_temperature)
    return device


# ---------------------------------------------------------------------------
# MediaRenderer
# ---------------------------------------------------------------------------

def make_media_renderer(
    node: Node, calibration: Calibration, friendly_name: str = "MediaRenderer TV"
) -> UPnPDevice:
    """The MediaRenderer TV of Figure 5.

    A RenderingControl service whose ``Render`` action accepts a media item
    (URI plus inline data in our simulation); rendered items accumulate in
    ``device.rendered`` so tests and the G2 UI can observe what is on
    screen.
    """
    description = DeviceDescription(
        device_type=MEDIA_RENDERER_TYPE,
        friendly_name=friendly_name,
        udn=_udn("renderer"),
        services=[
            ServiceDescription(
                service_type="urn:schemas-upnp-org:service:RenderingControl:1",
                service_id="RenderingControl",
                actions=[
                    ActionDescription(
                        "Render",
                        [_in("Data", "CurrentItem"), _in("ContentType", "ContentType")],
                    ),
                    ActionDescription("Stop", []),
                    ActionDescription(
                        "GetCurrentItem", [_out("Item", "CurrentItem")]
                    ),
                ],
                state_variables=[
                    StateVariable("CurrentItem", "string", evented=True, default=""),
                    StateVariable("ContentType", "string", evented=False, default=""),
                ],
            )
        ],
    )
    device = UPnPDevice(node, calibration, description)
    device.rendered = []  # type: ignore[attr-defined]

    def render(arguments, dev):
        dev.rendered.append(
            {"data": arguments["Data"], "content_type": arguments.get("ContentType", "")}
        )
        dev.set_state("RenderingControl", "CurrentItem", arguments["Data"])
        return {}

    def stop(_arguments, dev):
        dev.set_state("RenderingControl", "CurrentItem", "")
        return {}

    def get_current_item(_arguments, dev):
        return {"Item": dev.get_state("RenderingControl", "CurrentItem")}

    device.on_action("RenderingControl", "Render", render)
    device.on_action("RenderingControl", "Stop", stop)
    device.on_action("RenderingControl", "GetCurrentItem", get_current_item)
    return device
