"""A simulated UPnP device: SSDP presence, description/control/event server.

The device serves three kinds of requests over its HTTP-like stream server:

- ``GET /description.xml`` -- the device description document;
- ``POST /control/<serviceId>`` -- SOAP action invocations;
- ``SUBSCRIBE /events/<serviceId>`` -- GENA subscriptions.

Action semantics come from *handlers* registered per (service, action);
handlers read and mutate the device's per-service state tables.  Setting an
evented state variable pushes GENA NOTIFYs to all subscribers.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.calibration import Calibration
from repro.platforms.upnp import soap
from repro.platforms.upnp.description import DeviceDescription
from repro.platforms.upnp.gena import (
    DEFAULT_LEASE_S,
    NOTIFY_SIZE_OVERHEAD,
    Subscription,
    new_sid,
)
from repro.platforms.upnp.ssdp import SsdpAgent, SsdpMessage, SEARCH_ALL, SEARCH_RESPONSE
from repro.simnet.addresses import Address
from repro.simnet.net import Node
from repro.simnet.sockets import ConnectionClosed, StreamListener, StreamSocket

__all__ = ["UPnPDevice", "ActionHandler"]

_port_counter = itertools.count(5001)

#: handler(args: dict, device: UPnPDevice) -> dict of out-arguments
ActionHandler = Callable[[Dict[str, str], "UPnPDevice"], Dict[str, str]]

HTTP_HEADER_OVERHEAD = 200


class UPnPDevice:
    """One native UPnP device on a network node."""

    def __init__(
        self,
        node: Node,
        calibration: Calibration,
        description: DeviceDescription,
        port: Optional[int] = None,
    ):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.description = description
        self.port = port if port is not None else next(_port_counter)
        self._handlers: Dict[Tuple[str, str], ActionHandler] = {}
        #: service_id -> {variable: value}
        self.state: Dict[str, Dict[str, str]] = {
            service.service_id: {
                var.name: var.default for var in service.state_variables
            }
            for service in description.services
        }
        self._subscriptions: List[Subscription] = []
        self._notify_streams: Dict[Tuple[Address, int], StreamSocket] = {}
        self._ssdp: Optional[SsdpAgent] = None
        self._listener: Optional[StreamListener] = None
        self.actions_served = 0
        self.online = False

    # -- configuration ----------------------------------------------------------

    def on_action(self, service_id: str, action: str, handler: ActionHandler) -> None:
        self.description.service(service_id).action(action)  # validate
        self._handlers[(service_id, action)] = handler

    @property
    def location(self) -> str:
        return f"{self.node.address}:{self.port}"

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self.online:
            return
        self.online = True
        self._listener = StreamListener(
            self.node, self.calibration.network, self.port
        )
        self.kernel.process(
            self._accept_loop(), name=f"upnp-dev:{self.description.udn}"
        )
        self._ssdp = SsdpAgent(self.node, self.calibration)
        self._ssdp.serve_searches(self._answer_search)
        self._ssdp.announce_alive(
            usn=self.description.udn,
            notification_type=self.description.device_type,
            location=self.location,
        )

    def stop(self) -> None:
        """Graceful departure: byebye then tear the servers down."""
        if not self.online:
            return
        self.online = False
        if self._ssdp is not None:
            self._ssdp.announce_byebye(
                usn=self.description.udn,
                notification_type=self.description.device_type,
            )
            self._ssdp.close()
        if self._listener is not None:
            self._listener.close()
        for stream in self._notify_streams.values():
            stream.close()
        self._notify_streams.clear()

    def vanish(self) -> None:
        """Abrupt failure: no byebye (crash/power-loss simulation)."""
        if not self.online:
            return
        self.online = False
        if self._ssdp is not None:
            self._ssdp.close()
        if self._listener is not None:
            self._listener.close()

    def _answer_search(self, target: str) -> List[SsdpMessage]:
        if target not in (SEARCH_ALL, self.description.device_type):
            return []
        return [
            SsdpMessage(
                kind=SEARCH_RESPONSE,
                usn=self.description.udn,
                notification_type=self.description.device_type,
                location=self.location,
            )
        ]

    # -- state table -------------------------------------------------------------------

    def get_state(self, service_id: str, variable: str) -> str:
        return self.state[service_id][variable]

    def set_state(self, service_id: str, variable: str, value: str) -> None:
        """Update a state variable; evented variables notify subscribers."""
        self.state[service_id][variable] = value
        service = self.description.service(service_id)
        evented = any(
            v.name == variable and v.evented for v in service.state_variables
        )
        if evented and self.online:
            self.kernel.process(
                self._notify_subscribers(service_id, variable, value),
                name=f"gena-notify:{self.description.udn}",
            )

    def _notify_subscribers(
        self, service_id: str, variable: str, value: str
    ) -> Generator:
        for subscription in list(self._subscriptions):
            if subscription.service_id != service_id:
                continue
            if subscription.expires_at < self.kernel.now:
                # Lease expired without renewal: GENA soft state.
                self._subscriptions.remove(subscription)
                continue
            yield self.kernel.timeout(self.calibration.upnp.gena_notify_s)
            stream = yield from self._notify_stream(subscription)
            if stream is None:
                continue
            subscription.sequence += 1
            notify = {
                "kind": "gena-notify",
                "sid": subscription.sid,
                "variable": variable,
                "value": str(value),
                "seq": subscription.sequence,
            }
            try:
                stream.send(notify, NOTIFY_SIZE_OVERHEAD + len(str(value)))
            except Exception:
                self._notify_streams.pop(
                    (subscription.callback_address, subscription.callback_port), None
                )

    def _notify_stream(self, subscription: Subscription) -> Generator:
        key = (subscription.callback_address, subscription.callback_port)
        stream = self._notify_streams.get(key)
        if stream is not None and not stream.closed:
            return stream
        try:
            stream = yield StreamSocket.connect(
                self.node, self.calibration.network, key[0], key[1]
            )
        except Exception:
            self._subscriptions.remove(subscription)
            return None
        self._notify_streams[key] = stream
        return stream

    # -- request serving ------------------------------------------------------------------

    def _accept_loop(self) -> Generator:
        while True:
            try:
                stream = yield self._listener.accept()
            except ConnectionClosed:
                return
            self.kernel.process(
                self._serve(stream), name=f"upnp-serve:{self.description.udn}"
            )

    def _serve(self, stream: StreamSocket) -> Generator:
        while True:
            try:
                request, _size = yield stream.recv()
            except ConnectionClosed:
                return
            if not isinstance(request, dict):
                continue
            method = request.get("method")
            path = request.get("path", "")
            if method == "GET" and path == "/description.xml":
                yield from self._serve_description(stream)
            elif method == "POST" and path.startswith("/control/"):
                yield from self._serve_control(stream, request)
            elif method == "SUBSCRIBE" and path.startswith("/events/"):
                self._serve_subscribe(stream, request)
            elif method == "UNSUBSCRIBE":
                self._serve_unsubscribe(stream, request)
            else:
                stream.send({"status": 404}, HTTP_HEADER_OVERHEAD)

    def _serve_description(self, stream: StreamSocket) -> Generator:
        # Generating the description document costs server-side time.
        yield self.kernel.timeout(self.calibration.upnp.description_generation_s)
        document = self.description.to_xml()
        stream.send(
            {"status": 200, "body": document},
            HTTP_HEADER_OVERHEAD + len(document),
        )

    def _serve_control(self, stream: StreamSocket, request: dict) -> Generator:
        service_id = request["path"][len("/control/"):]
        # Device-side action cost: parse the SOAP request, run the action,
        # build the response (Section 5.2's in-device share of the 150 ms).
        yield self.kernel.timeout(self.calibration.upnp.device_action_processing_s)
        try:
            service_type, action, arguments = soap.parse_request(request["body"])
            handler = self._handlers.get((service_id, action))
            if handler is None:
                body = soap.build_fault(401, f"Invalid Action {action!r}")
            else:
                results = handler(arguments, self) or {}
                self.actions_served += 1
                body = soap.build_response(service_type, action, results)
        except soap.SoapError as exc:
            body = soap.build_fault(402, str(exc))
        stream.send({"status": 200, "body": body}, HTTP_HEADER_OVERHEAD + len(body))

    def _serve_subscribe(self, stream: StreamSocket, request: dict) -> None:
        lease = request.get("lease", DEFAULT_LEASE_S)
        renewal_sid = request.get("sid")
        if renewal_sid is not None:
            # Renewal: refresh the existing subscription's lease.
            for subscription in self._subscriptions:
                if subscription.sid == renewal_sid:
                    subscription.expires_at = self.kernel.now + lease
                    stream.send(
                        {"status": 200, "sid": renewal_sid, "lease": lease},
                        HTTP_HEADER_OVERHEAD,
                    )
                    return
            stream.send({"status": 412}, HTTP_HEADER_OVERHEAD)  # unknown SID
            return
        service_id = request["path"][len("/events/"):]
        sid = new_sid()
        self._subscriptions.append(
            Subscription(
                sid=sid,
                callback_address=Address(request["callback_address"]),
                callback_port=request["callback_port"],
                service_id=service_id,
                expires_at=self.kernel.now + lease,
            )
        )
        stream.send(
            {"status": 200, "sid": sid, "lease": lease}, HTTP_HEADER_OVERHEAD
        )

    def _serve_unsubscribe(self, stream: StreamSocket, request: dict) -> None:
        sid = request.get("sid")
        before = len(self._subscriptions)
        self._subscriptions = [s for s in self._subscriptions if s.sid != sid]
        status = 200 if len(self._subscriptions) < before else 412
        stream.send({"status": status}, HTTP_HEADER_OVERHEAD)

    @property
    def active_subscriptions(self) -> int:
        now = self.kernel.now
        return sum(1 for s in self._subscriptions if s.expires_at >= now)
