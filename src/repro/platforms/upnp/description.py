"""UPnP device descriptions.

A UPnP device advertises an XML *device description* listing its services;
each service has actions (with named arguments) and state variables (some
evented via GENA).  Mappers fetch and parse these documents to learn what a
device can do -- the element count drives the calibrated parse cost that
dominates Figure 10's clock-translator instantiation time.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    "ArgumentDescription",
    "ActionDescription",
    "StateVariable",
    "ServiceDescription",
    "DeviceDescription",
    "parse_device_description",
    "DescriptionError",
]


class DescriptionError(Exception):
    """Malformed device description documents."""


@dataclass(frozen=True)
class ArgumentDescription:
    name: str
    direction: str = "in"          # "in" | "out"
    related_state_variable: str = ""


@dataclass(frozen=True)
class ActionDescription:
    name: str
    arguments: List[ArgumentDescription] = field(default_factory=list)

    def in_arguments(self) -> List[ArgumentDescription]:
        return [a for a in self.arguments if a.direction == "in"]


@dataclass(frozen=True)
class StateVariable:
    name: str
    data_type: str = "string"
    evented: bool = False
    default: str = ""


@dataclass(frozen=True)
class ServiceDescription:
    service_type: str
    service_id: str
    actions: List[ActionDescription] = field(default_factory=list)
    state_variables: List[StateVariable] = field(default_factory=list)

    def action(self, name: str) -> ActionDescription:
        for action in self.actions:
            if action.name == name:
                return action
        raise DescriptionError(f"service {self.service_id}: no action {name!r}")

    def evented_variables(self) -> List[StateVariable]:
        return [v for v in self.state_variables if v.evented]


@dataclass(frozen=True)
class DeviceDescription:
    device_type: str
    friendly_name: str
    udn: str                       # unique device name, "uuid:..."
    manufacturer: str = "repro"
    services: List[ServiceDescription] = field(default_factory=list)

    def service(self, service_id: str) -> ServiceDescription:
        for service in self.services:
            if service.service_id == service_id:
                return service
        raise DescriptionError(f"device {self.udn}: no service {service_id!r}")

    def element_count(self) -> int:
        """Number of description elements, for the calibrated parse cost.

        Counts the device, each service, each action (with its arguments)
        and each state variable -- roughly what a DOM pass touches.
        """
        count = 1  # the device element
        for service in self.services:
            count += 1
            for action in service.actions:
                count += 1 + len(action.arguments)
            count += len(service.state_variables)
        return count

    # -- XML ------------------------------------------------------------------

    def to_xml(self) -> str:
        root = ET.Element("root", {"xmlns": "urn:schemas-upnp-org:device-1-0"})
        device_el = ET.SubElement(root, "device")
        ET.SubElement(device_el, "deviceType").text = self.device_type
        ET.SubElement(device_el, "friendlyName").text = self.friendly_name
        ET.SubElement(device_el, "UDN").text = self.udn
        ET.SubElement(device_el, "manufacturer").text = self.manufacturer
        services_el = ET.SubElement(device_el, "serviceList")
        for service in self.services:
            service_el = ET.SubElement(services_el, "service")
            ET.SubElement(service_el, "serviceType").text = service.service_type
            ET.SubElement(service_el, "serviceId").text = service.service_id
            actions_el = ET.SubElement(service_el, "actionList")
            for action in service.actions:
                action_el = ET.SubElement(actions_el, "action")
                ET.SubElement(action_el, "name").text = action.name
                args_el = ET.SubElement(action_el, "argumentList")
                for argument in action.arguments:
                    arg_el = ET.SubElement(args_el, "argument")
                    ET.SubElement(arg_el, "name").text = argument.name
                    ET.SubElement(arg_el, "direction").text = argument.direction
                    ET.SubElement(
                        arg_el, "relatedStateVariable"
                    ).text = argument.related_state_variable
            table_el = ET.SubElement(service_el, "serviceStateTable")
            for variable in service.state_variables:
                var_el = ET.SubElement(
                    table_el,
                    "stateVariable",
                    {"sendEvents": "yes" if variable.evented else "no"},
                )
                ET.SubElement(var_el, "name").text = variable.name
                ET.SubElement(var_el, "dataType").text = variable.data_type
                ET.SubElement(var_el, "defaultValue").text = variable.default
        return ET.tostring(root, encoding="unicode")

    def document_size(self) -> int:
        return len(self.to_xml())


def _text(element: Optional[ET.Element], default: str = "") -> str:
    return element.text or default if element is not None else default


def parse_device_description(text: str) -> DeviceDescription:
    """Parse a device description document (inverse of ``to_xml``)."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DescriptionError(f"malformed description XML: {exc}") from exc
    namespace = ""
    if root.tag.startswith("{"):
        namespace = root.tag[: root.tag.index("}") + 1]

    def find(parent, tag):
        return parent.find(f"{namespace}{tag}")

    def findall(parent, tag):
        return parent.findall(f"{namespace}{tag}")

    device_el = find(root, "device")
    if device_el is None:
        raise DescriptionError("missing <device> element")
    services: List[ServiceDescription] = []
    services_el = find(device_el, "serviceList")
    for service_el in findall(services_el, "service") if services_el is not None else []:
        actions: List[ActionDescription] = []
        actions_el = find(service_el, "actionList")
        for action_el in findall(actions_el, "action") if actions_el is not None else []:
            arguments: List[ArgumentDescription] = []
            args_el = find(action_el, "argumentList")
            for arg_el in findall(args_el, "argument") if args_el is not None else []:
                arguments.append(
                    ArgumentDescription(
                        name=_text(find(arg_el, "name")),
                        direction=_text(find(arg_el, "direction"), "in"),
                        related_state_variable=_text(
                            find(arg_el, "relatedStateVariable")
                        ),
                    )
                )
            actions.append(
                ActionDescription(name=_text(find(action_el, "name")), arguments=arguments)
            )
        variables: List[StateVariable] = []
        table_el = find(service_el, "serviceStateTable")
        for var_el in findall(table_el, "stateVariable") if table_el is not None else []:
            variables.append(
                StateVariable(
                    name=_text(find(var_el, "name")),
                    data_type=_text(find(var_el, "dataType"), "string"),
                    evented=var_el.get("sendEvents") == "yes",
                    default=_text(find(var_el, "defaultValue")),
                )
            )
        services.append(
            ServiceDescription(
                service_type=_text(find(service_el, "serviceType")),
                service_id=_text(find(service_el, "serviceId")),
                actions=actions,
                state_variables=variables,
            )
        )
    return DeviceDescription(
        device_type=_text(find(device_el, "deviceType")),
        friendly_name=_text(find(device_el, "friendlyName")),
        udn=_text(find(device_el, "UDN")),
        manufacturer=_text(find(device_el, "manufacturer"), "repro"),
        services=services,
    )
