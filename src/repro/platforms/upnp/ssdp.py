"""SSDP: Simple Service Discovery Protocol.

UPnP's discovery layer: devices multicast ``NOTIFY ssdp:alive`` on arrival
(and ``ssdp:byebye`` on departure), control points multicast ``M-SEARCH``
queries and devices answer with unicast responses after a small random-ish
delay (we use the calibrated fixed delay for determinism).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List

from repro.calibration import Calibration
from repro.simnet.addresses import Address
from repro.simnet.kernel import Kernel
from repro.simnet.net import Node
from repro.simnet.sockets import ConnectionClosed, DatagramSocket

__all__ = ["SSDP_GROUP", "SSDP_PORT", "SsdpMessage", "SsdpAgent"]

SSDP_GROUP = "239.255.255.250"
SSDP_PORT = 1900

NOTIFY_ALIVE = "ssdp:alive"
NOTIFY_BYEBYE = "ssdp:byebye"
M_SEARCH = "m-search"
SEARCH_RESPONSE = "search-response"
SEARCH_ALL = "ssdp:all"


@dataclass(frozen=True)
class SsdpMessage:
    """One SSDP message (NOTIFY, M-SEARCH or a search response)."""

    kind: str
    usn: str = ""                 # unique service name (device UDN)
    notification_type: str = ""   # device type urn, or ssdp:all in searches
    location: str = ""            # "address:port" of the description server
    max_age: int = 1800

    def estimated_size(self) -> int:
        return 120 + len(self.usn) + len(self.notification_type) + len(self.location)


class SsdpAgent:
    """Both halves of SSDP: device-side announcing and CP-side searching.

    Device side::

        agent.announce_alive(udn, device_type, location)
        agent.serve_searches(lambda st: [answers...])   # starts a process

    Control-point side::

        found = yield from agent.search("ssdp:all", wait=0.3)
        agent.on_notify(callback)                       # async NOTIFY watch
    """

    def __init__(self, node: Node, calibration: Calibration):
        self.node = node
        self.calibration = calibration
        self.kernel: Kernel = node.network.kernel
        self._socket = DatagramSocket(node, calibration.network)
        self._socket.join(SSDP_GROUP, SSDP_PORT)
        #: unicast socket for search responses addressed directly to us
        self._notify_callbacks: List[Callable[[SsdpMessage, Address], None]] = []
        self._search_responders: List[Callable[[str], List[SsdpMessage]]] = []
        self._pending_searches: List[List] = []
        self.closed = False
        self.kernel.process(self._receive_loop(), name=f"ssdp:{node.name}")

    # -- device side -----------------------------------------------------------

    def announce_alive(self, usn: str, notification_type: str, location: str) -> None:
        message = SsdpMessage(
            kind=NOTIFY_ALIVE,
            usn=usn,
            notification_type=notification_type,
            location=location,
        )
        self._socket.send_multicast(
            message, message.estimated_size(), SSDP_GROUP, SSDP_PORT
        )

    def announce_byebye(self, usn: str, notification_type: str) -> None:
        message = SsdpMessage(
            kind=NOTIFY_BYEBYE, usn=usn, notification_type=notification_type
        )
        self._socket.send_multicast(
            message, message.estimated_size(), SSDP_GROUP, SSDP_PORT
        )

    def serve_searches(
        self, responder: Callable[[str], List[SsdpMessage]]
    ) -> None:
        """Register a responder answering M-SEARCH queries.

        ``responder(search_target)`` returns the response messages to send;
        responses are delayed by the calibrated SSDP response delay.
        """
        self._search_responders.append(responder)

    # -- control-point side --------------------------------------------------------

    def on_notify(self, callback: Callable[[SsdpMessage, Address], None]) -> None:
        """Watch multicast NOTIFY traffic (alive and byebye)."""
        self._notify_callbacks.append(callback)

    def search(self, target: str = SEARCH_ALL, wait: float = 0.3) -> Generator:
        """M-SEARCH and collect responses for ``wait`` seconds (generator)."""
        message = SsdpMessage(kind=M_SEARCH, notification_type=target)
        collector: List = []
        self._pending_searches.append(collector)
        self._socket.send_multicast(
            message, message.estimated_size(), SSDP_GROUP, SSDP_PORT
        )
        yield self.kernel.timeout(wait)
        self._pending_searches.remove(collector)
        return list(collector)

    # -- plumbing ----------------------------------------------------------------------

    def close(self) -> None:
        self.closed = True
        self._socket.close()

    def _receive_loop(self) -> Generator:
        while not self.closed:
            try:
                datagram = yield self._socket.recv()
            except ConnectionClosed:
                return
            message = datagram.payload
            if not isinstance(message, SsdpMessage):
                continue
            if message.kind in (NOTIFY_ALIVE, NOTIFY_BYEBYE):
                for callback in list(self._notify_callbacks):
                    callback(message, datagram.src)
            elif message.kind == M_SEARCH:
                yield from self._answer_search(message, datagram)
            elif message.kind == SEARCH_RESPONSE:
                for collector in self._pending_searches:
                    collector.append(message)

    def _answer_search(self, message: SsdpMessage, datagram) -> Generator:
        matches: List[SsdpMessage] = []
        for responder in self._search_responders:
            matches.extend(responder(message.notification_type))
        if not matches:
            return
        yield self.kernel.timeout(self.calibration.upnp.ssdp_response_delay_s)
        for response in matches:
            self._socket.sendto(
                response,
                response.estimated_size(),
                datagram.src,
                datagram.sport,
            )
