"""A minimal HTTP layer over simulated streams."""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, Tuple

from repro.calibration import Calibration
from repro.simnet.addresses import Address
from repro.simnet.net import Node
from repro.simnet.sockets import ConnectionClosed, StreamListener, StreamSocket

__all__ = ["HttpError", "HttpServer", "HttpClient", "HTTP_OVERHEAD"]

HTTP_OVERHEAD = 180


class HttpError(Exception):
    """Transport-level or status-code failures."""

    def __init__(self, status: int, message: str = ""):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class HttpServer:
    """Routes ``(method, path)`` to handlers.

    Handlers take the request dict and return ``(status, body, body_size)``;
    generator handlers are supported for work that takes simulated time.
    """

    def __init__(self, node: Node, calibration: Calibration, port: int):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.port = port
        self._routes: Dict[Tuple[str, str], Callable] = {}
        self._prefix_routes: Dict[Tuple[str, str], Callable] = {}
        self._listener = StreamListener(node, calibration.network, port)
        self.requests_served = 0
        self.kernel.process(self._accept_loop(), name=f"http:{node.name}:{port}")

    def route(self, method: str, path: str, handler: Callable) -> None:
        self._routes[(method, path)] = handler

    def route_prefix(self, method: str, prefix: str, handler: Callable) -> None:
        self._prefix_routes[(method, prefix)] = handler

    def close(self) -> None:
        self._listener.close()

    def _find_handler(self, method: str, path: str) -> Optional[Callable]:
        handler = self._routes.get((method, path))
        if handler is not None:
            return handler
        for (route_method, prefix), prefix_handler in self._prefix_routes.items():
            if route_method == method and path.startswith(prefix):
                return prefix_handler
        return None

    def _accept_loop(self) -> Generator:
        while True:
            try:
                stream = yield self._listener.accept()
            except ConnectionClosed:
                return
            self.kernel.process(self._serve(stream), name=f"http-conn:{self.port}")

    def _serve(self, stream: StreamSocket) -> Generator:
        while True:
            try:
                request, _size = yield stream.recv()
            except ConnectionClosed:
                return
            method = request.get("method", "GET")
            path = request.get("path", "/")
            handler = self._find_handler(method, path)
            if handler is None:
                stream.send({"status": 404, "body": ""}, HTTP_OVERHEAD)
                continue
            outcome = handler(request)
            if hasattr(outcome, "send") and hasattr(outcome, "throw"):
                outcome = yield from outcome
            status, body, body_size = outcome
            self.requests_served += 1
            stream.send(
                {"status": status, "body": body}, HTTP_OVERHEAD + body_size
            )


class HttpClient:
    """Issues requests, reusing one connection per server."""

    def __init__(self, node: Node, calibration: Calibration):
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self._streams: Dict[Tuple[Address, int], StreamSocket] = {}

    def request(
        self,
        address: Address,
        port: int,
        method: str,
        path: str,
        body: object = None,
        body_size: int = 0,
    ) -> Generator:
        """One request/response; returns the response body (dict['body'])."""
        key = (address, port)
        stream = self._streams.get(key)
        if stream is None or stream.closed:
            stream = yield StreamSocket.connect(
                self.node, self.calibration.network, address, port
            )
            self._streams[key] = stream
        stream.send(
            {"method": method, "path": path, "body": body},
            HTTP_OVERHEAD + body_size,
        )
        response, _size = yield stream.recv()
        status = response.get("status", 500)
        if status >= 400:
            raise HttpError(status, path)
        return response.get("body")

    def close(self) -> None:
        for stream in self._streams.values():
            stream.close()
        self._streams.clear()
