"""Web services: operations behind an XML endpoint with a description.

A :class:`WebService` publishes named operations; ``GET /describe`` serves
a WSDL-ish XML description (operation names plus input/output element
names), and ``POST /invoke/<operation>`` executes one.  The web-services
mapper reads the description to parameterize its translators.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Tuple

from repro.calibration import Calibration
from repro.platforms.webservices.http import HttpClient, HttpServer
from repro.simnet.addresses import Address
from repro.simnet.net import Node

__all__ = ["Operation", "WebService", "WebServiceClient", "parse_ws_description"]

WS_PORT_BASE = 8080

#: handler(params: dict) -> (result: dict, result_size: int)
OperationHandler = Callable[[Dict[str, Any]], Tuple[Dict[str, Any], int]]


@dataclass(frozen=True)
class Operation:
    """One operation's signature."""

    name: str
    input_elements: List[str] = field(default_factory=list)
    output_elements: List[str] = field(default_factory=list)


class WebService:
    """One web service on a node."""

    _port_counter = WS_PORT_BASE

    def __init__(
        self,
        node: Node,
        calibration: Calibration,
        name: str,
        port: int = 0,
    ):
        if port == 0:
            WebService._port_counter += 1
            port = WebService._port_counter
        self.node = node
        self.calibration = calibration
        self.kernel = node.network.kernel
        self.name = name
        self.port = port
        self.operations: Dict[str, Operation] = {}
        self._handlers: Dict[str, OperationHandler] = {}
        self.server = HttpServer(node, calibration, port)
        self.server.route("GET", "/describe", self._serve_description)
        self.server.route_prefix("POST", "/invoke/", self._serve_invoke)
        self.invocations = 0

    def add_operation(self, operation: Operation, handler: OperationHandler) -> None:
        self.operations[operation.name] = operation
        self._handlers[operation.name] = handler

    @property
    def address(self) -> Address:
        return self.node.address

    def describe_xml(self) -> str:
        root = ET.Element("service", {"name": self.name})
        for operation in self.operations.values():
            op_el = ET.SubElement(root, "operation", {"name": operation.name})
            for element in operation.input_elements:
                ET.SubElement(op_el, "input", {"name": element})
            for element in operation.output_elements:
                ET.SubElement(op_el, "output", {"name": element})
        return ET.tostring(root, encoding="unicode")

    def close(self) -> None:
        self.server.close()

    # -- handlers ---------------------------------------------------------------

    def _serve_description(self, _request: dict):
        body = self.describe_xml()
        return 200, body, len(body)

    def _serve_invoke(self, request: dict):
        operation_name = request["path"][len("/invoke/"):]
        handler = self._handlers.get(operation_name)
        if handler is None:
            return 404, "", 0
        params = request.get("body") or {}
        result, result_size = handler(params)
        self.invocations += 1
        return 200, result, result_size


def parse_ws_description(xml_text: str) -> Tuple[str, List[Operation]]:
    """Parse a service description; returns (service_name, operations)."""
    root = ET.fromstring(xml_text)
    operations = []
    for op_el in root.findall("operation"):
        operations.append(
            Operation(
                name=op_el.get("name", ""),
                input_elements=[e.get("name", "") for e in op_el.findall("input")],
                output_elements=[e.get("name", "") for e in op_el.findall("output")],
            )
        )
    return root.get("name", ""), operations


class WebServiceClient:
    """Invokes operations on a remote web service."""

    def __init__(self, node: Node, calibration: Calibration):
        self.node = node
        self.calibration = calibration
        self._http = HttpClient(node, calibration)

    def describe(self, address: Address, port: int) -> Generator:
        body = yield from self._http.request(address, port, "GET", "/describe")
        return parse_ws_description(body)

    def invoke(
        self,
        address: Address,
        port: int,
        operation: str,
        params: Dict[str, Any],
        params_size: int = 64,
    ) -> Generator:
        result = yield from self._http.request(
            address,
            port,
            "POST",
            f"/invoke/{operation}",
            body=params,
            body_size=params_size,
        )
        return result

    def close(self) -> None:
        self._http.close()
