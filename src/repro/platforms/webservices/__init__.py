"""Simple XML-over-HTTP web services.

The paper lists "various web services" among the platforms uMiddle
bridges.  This package provides a minimal request/response web-service
platform: services publish named operations behind an HTTP-like endpoint
with a WSDL-ish description document; clients invoke operations with XML
envelopes.
"""

from repro.platforms.webservices.http import HttpClient, HttpError, HttpServer
from repro.platforms.webservices.service import (
    Operation,
    WebService,
    WebServiceClient,
)

__all__ = [
    "HttpServer",
    "HttpClient",
    "HttpError",
    "Operation",
    "WebService",
    "WebServiceClient",
]
