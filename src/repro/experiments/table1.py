"""Experiment T1: Table 1, the mutual-compatibility chart."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.designspace import compatibility_chart

__all__ = ["PAPER_TABLE_1", "run_table1"]

#: Table 1 as printed in the paper: row -> columns marked 'O'.
PAPER_TABLE_1 = {
    "1-a": {"2-a", "4-a", "4-b"},
    "1-b": {"2-a", "2-b", "3-a", "3-b", "4-a", "4-b"},
    "2-a": {"1-a", "1-b", "3-a", "3-b", "4-a", "4-b"},
    "2-b": {"1-b", "3-a", "3-b", "4-a", "4-b"},
    "3-a": {"1-b", "2-a", "2-b", "4-a", "4-b"},
    "3-b": {"1-b", "2-a", "2-b", "4-a", "4-b"},
    "4-a": {"1-a", "1-b", "2-a", "2-b", "3-a", "3-b"},
    "4-b": {"1-a", "1-b", "2-a", "2-b", "3-a", "3-b"},
}


def run_table1() -> Tuple[Dict[Tuple[str, str], bool], list]:
    """Derive the chart; returns (chart, mismatches-vs-paper)."""
    chart = compatibility_chart()
    mismatches = []
    for row, expected_columns in PAPER_TABLE_1.items():
        for (chart_row, chart_column), value in chart.items():
            if chart_row != row:
                continue
            if value != (chart_column in expected_columns):
                mismatches.append((chart_row, chart_column))
    return chart, mismatches
