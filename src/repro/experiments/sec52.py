"""Experiment S52: Section 5.2, device-level bridging latencies."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bridges import BluetoothMapper, UPnPMapper
from repro.calibration import Calibration, DEFAULT
from repro.core.messages import UMessage
from repro.core.query import Query
from repro.core.translator import Translator
from repro.platforms.bluetooth import HidMouse, Piconet
from repro.platforms.bluetooth.devices import HID_REPORT_SIZE
from repro.platforms.upnp import make_binary_light
from repro.testbed import build_testbed

__all__ = [
    "LightControlResult",
    "MouseTranslationResult",
    "run_light_control",
    "run_mouse_clicks",
]


@dataclass
class LightControlResult:
    """Per-action latencies of the UPnP light control (seconds)."""

    mean_total: float
    upnp_domain: float
    umiddle_share: float
    actions_served: int


@dataclass
class MouseTranslationResult:
    """Per-click uMiddle translation overhead (seconds)."""

    umiddle_overhead: float
    delivered: int


def run_light_control(
    actions: int = 100, calibration: Calibration = DEFAULT
) -> LightControlResult:
    """100 SetPower actions through the light's translator (paper: 160 ms
    each, ~150 ms in the UPnP domain)."""
    bed = build_testbed(calibration=calibration, hosts=["upnp-host", "device-host"])
    runtime = bed.add_runtime("upnp-host")
    light = make_binary_light(bed.hosts["device-host"], bed.calibration)
    light.start()
    runtime.add_mapper(UPnPMapper(runtime))
    bed.settle(2.0)
    translator = runtime.translators[
        runtime.lookup(Query(role="light"))[0].translator_id
    ]
    port_names = ["power-on", "power-off"]
    latencies = []

    def driver(kernel):
        for index in range(actions):
            started = kernel.now
            handler = translator.input_port(port_names[index % 2]).deliver(
                UMessage("application/x-umiddle-switch", None, 8)
            )
            yield from handler
            latencies.append(kernel.now - started)

    bed.run(driver(bed.kernel))
    mean_total = sum(latencies) / len(latencies)
    umiddle_share = bed.calibration.umiddle.message_translation_s
    return LightControlResult(
        mean_total=mean_total,
        upnp_domain=mean_total - umiddle_share,
        umiddle_share=umiddle_share,
        actions_served=light.actions_served,
    )


def run_mouse_clicks(
    clicks: int = 100, calibration: Calibration = DEFAULT
) -> MouseTranslationResult:
    """100 clicks through the mouse's translator to another uMiddle device
    (paper: ~23 ms of uMiddle translation per click)."""
    bed = build_testbed(calibration=calibration, hosts=["bt-host"])
    runtime = bed.add_runtime("bt-host")
    piconet = Piconet(bed.network, bed.calibration)
    mouse = HidMouse(piconet, bed.calibration)
    runtime.add_mapper(BluetoothMapper(runtime, piconet, poll_interval=2.0))
    bed.settle(3.0)
    translator = runtime.translators[
        runtime.lookup(Query(role="pointer"))[0].translator_id
    ]

    arrivals = []
    listener = Translator("click-listener")
    listener.add_digital_input(
        "in",
        "application/x-umiddle-click",
        lambda message: arrivals.append(bed.kernel.now),
    )
    runtime.register_translator(listener)
    runtime.connect(translator.output_port("clicks"), listener.input_port("in"))

    sent_at = []

    def clicker(kernel):
        for _ in range(clicks):
            sent_at.append(kernel.now)
            mouse.click()
            yield kernel.timeout(0.1)

    bed.run(clicker(bed.kernel))
    bed.settle(2.0)

    bt = bed.calibration.bluetooth
    report_wire = (HID_REPORT_SIZE + 4 + 9) * 8 / bt.acl_bandwidth_bps
    bluetooth_share = (
        report_wire + bt.baseband_latency_s + bt.hid_report_processing_s
    )
    totals = [arrival - sent for sent, arrival in zip(sent_at, arrivals)]
    mean_total = sum(totals) / len(totals)
    return MouseTranslationResult(
        umiddle_overhead=mean_total - bluetooth_share, delivered=len(arrivals)
    )
