"""Experiment F10: Figure 10, service-level bridging performance.

"The time needed by the uMiddle mapper to dynamically generate translators
for devices after they are discovered in their native platforms."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bridges import BluetoothMapper, UPnPMapper
from repro.calibration import Calibration, DEFAULT
from repro.platforms.bluetooth import HidMouse, Piconet
from repro.platforms.upnp import make_air_conditioner, make_binary_light, make_clock
from repro.platforms.upnp.devices import (
    AIR_CONDITIONER_TYPE,
    BINARY_LIGHT_TYPE,
    CLOCK_TYPE,
)
from repro.testbed import build_testbed

__all__ = ["PAPER_RATES", "Fig10Result", "run_fig10"]

#: The paper's reported instantiation rates (instances per second).
PAPER_RATES = {
    "upnp-clock": 0.7,
    "upnp-light": 4.0,
    "upnp-air-conditioner": 4.0,
    "bt-hid-mouse": 5.0,
}


@dataclass
class Fig10Result:
    """Mapping durations per device (simulated seconds)."""

    durations: Dict[str, List[float]]

    def mean(self, device: str) -> float:
        samples = self.durations[device]
        return sum(samples) / len(samples)

    def rate(self, device: str) -> float:
        """Instantiations per second, the unit Figure 10 plots."""
        return 1.0 / self.mean(device)


def run_fig10(repeats: int = 5, calibration: Calibration = DEFAULT) -> Fig10Result:
    """Map every benchmarked device ``repeats`` times; collect durations."""
    bed = build_testbed(
        calibration=calibration, hosts=["upnp-host", "bt-host", "device-host"]
    )
    upnp_runtime = bed.add_runtime("upnp-host")
    bt_runtime = bed.add_runtime("bt-host")

    for factory in (make_clock, make_binary_light, make_air_conditioner):
        factory(bed.hosts["device-host"], bed.calibration).start()
    piconet = Piconet(bed.network, bed.calibration)
    HidMouse(piconet, bed.calibration)

    upnp_mapper = upnp_runtime.add_mapper(
        UPnPMapper(upnp_runtime, search_interval=3.0)
    )
    bt_mapper = bt_runtime.add_mapper(
        BluetoothMapper(bt_runtime, piconet, poll_interval=3.0)
    )

    for _ in range(repeats):
        bed.settle(6.0)
        for mapper in (upnp_mapper, bt_mapper):
            for translator in list(mapper.translators):
                mapper.unmap(translator)
        bt_mapper._mapped.clear()
        upnp_mapper._mapped.clear()
    bed.settle(6.0)

    return Fig10Result(
        durations={
            "upnp-clock": upnp_mapper.mapping_durations[CLOCK_TYPE],
            "upnp-light": upnp_mapper.mapping_durations[BINARY_LIGHT_TYPE],
            "upnp-air-conditioner": upnp_mapper.mapping_durations[
                AIR_CONDITIONER_TYPE
            ],
            "bt-hid-mouse": bt_mapper.mapping_durations["hid-mouse"],
        }
    )
