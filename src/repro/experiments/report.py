"""One-shot evaluation report: regenerate every table and figure.

``python -m repro.experiments`` runs Table 1, Figure 10, Section 5.2 and
Figure 11 on the simulated testbed and prints a paper-versus-measured
report.  ``build_report()`` returns the same content as a structured dict
for programmatic use (e.g. writing JSON for plots).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.designspace import format_chart
from repro.experiments.fig10 import PAPER_RATES, run_fig10
from repro.experiments.fig11 import PAPER_MBPS, run_fig11
from repro.experiments.sec52 import run_light_control, run_mouse_clicks
from repro.experiments.table1 import run_table1

__all__ = ["build_report", "render_report", "main"]


def build_report() -> Dict[str, Any]:
    """Run every experiment; returns a JSON-serializable result tree."""
    _chart, mismatches = run_table1()
    fig10 = run_fig10()
    light = run_light_control()
    mouse = run_mouse_clicks()
    fig11 = run_fig11()
    return {
        "table1": {
            "matches_paper": not mismatches,
            "mismatched_cells": mismatches,
        },
        "fig10": {
            name: {
                "mean_s": fig10.mean(name),
                "instances_per_s": fig10.rate(name),
                "paper_instances_per_s": PAPER_RATES[name],
            }
            for name in PAPER_RATES
        },
        "sec52": {
            "light_total_ms": light.mean_total * 1000,
            "light_upnp_domain_ms": light.upnp_domain * 1000,
            "light_umiddle_ms": light.umiddle_share * 1000,
            "light_paper_ms": {"total": 160, "upnp": 150, "umiddle": 10},
            "mouse_umiddle_ms": mouse.umiddle_overhead * 1000,
            "mouse_paper_ms": 23,
        },
        "fig11": {
            name: {
                "mbps": fig11[name] / 1e6,
                "paper_mbps": PAPER_MBPS[name],
            }
            for name in PAPER_MBPS
        },
    }


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`build_report`'s output."""
    lines = []
    lines.append("uMiddle reproduction -- evaluation report")
    lines.append("=" * 41)

    lines.append("")
    lines.append("Table 1 (design-approach compatibility):")
    lines.append(
        "  matches the paper cell-by-cell"
        if report["table1"]["matches_paper"]
        else f"  MISMATCHES: {report['table1']['mismatched_cells']}"
    )
    lines.append(format_chart())

    lines.append("")
    lines.append("Figure 10 (translator instantiation):")
    for name, row in report["fig10"].items():
        lines.append(
            f"  {name:<22} {row['mean_s'] * 1000:7.1f} ms  "
            f"{row['instances_per_s']:5.2f} inst/s  "
            f"(paper ~{row['paper_instances_per_s']})"
        )

    sec52 = report["sec52"]
    lines.append("")
    lines.append("Section 5.2 (device-level bridging):")
    lines.append(
        f"  UPnP light control   {sec52['light_total_ms']:6.1f} ms/action "
        f"(paper 160), UPnP domain {sec52['light_upnp_domain_ms']:.1f} ms "
        f"(paper 150), uMiddle {sec52['light_umiddle_ms']:.1f} ms (paper ~10)"
    )
    lines.append(
        f"  BT mouse translation {sec52['mouse_umiddle_ms']:6.1f} ms/click "
        f"(paper 23)"
    )

    lines.append("")
    lines.append("Figure 11 (transport-level bridging):")
    for name, row in report["fig11"].items():
        lines.append(
            f"  {name:<9} {row['mbps']:5.2f} Mbps  (paper {row['paper_mbps']})"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point: print the report (add ``--json`` for raw data)."""
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    report = build_report()
    if "--json" in argv:
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report))
    return 0
