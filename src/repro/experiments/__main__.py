"""``python -m repro.experiments`` -- regenerate the paper's evaluation."""

import sys

from repro.experiments.report import main

if __name__ == "__main__":
    sys.exit(main())
